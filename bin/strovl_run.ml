(* Command-line experiment runner: lists and executes the paper-reproduction
   experiments individually (the bench binary runs them all). *)

open Cmdliner

let run_experiments ids quick seed json =
  let unknown = ref false in
  let targets =
    match ids with
    | [] -> Strovl_expt.all
    | ids ->
      List.filter_map
        (fun id ->
          match Strovl_expt.find id with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment: %s (try `list`)\n" id;
            unknown := true;
            None)
        ids
  in
  List.iter
    (fun (e : Strovl_expt.experiment) ->
      let table = e.Strovl_expt.run ~quick ~seed () in
      if json then print_endline (Strovl_expt.Table.to_json table)
      else Strovl_expt.Table.print Format.std_formatter table)
    targets;
  (* Any unknown id is a failure even when other ids ran: callers scripting
     the runner must not mistake a typo for a clean pass. *)
  if !unknown then 1 else 0

let list_experiments () =
  Strovl_expt.print_list ();
  0

let ids =
  let doc = "Experiment ids to run (default: all). Use the list command to enumerate." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let quick =
  let doc = "Reduced packet counts and sweeps (for smoke testing)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed =
  let doc = "Deterministic seed for the simulation RNG streams." in
  Arg.(value & opt int64 7L & info [ "seed" ] ~doc)

let json =
  let doc = "Emit each result table as one JSON object per line." in
  Arg.(value & flag & info [ "json" ] ~doc)

let run_cmd =
  let doc = "run paper-reproduction experiments" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run_experiments $ ids $ quick $ seed $ json)

let list_cmd =
  let doc = "list available experiments" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

let main =
  let doc = "structured overlay network experiments (Babay et al., ICDCS 2017)" in
  Cmd.group ~default:Term.(const run_experiments $ ids $ quick $ seed $ json)
    (Cmd.info "strovl_run" ~doc)
    [ run_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
