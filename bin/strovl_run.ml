(* Command-line experiment runner: lists and executes the paper-reproduction
   experiments individually, fans them over a domain pool with [-j], and
   sweeps one experiment across a seed range. Each run executes in a fresh
   per-run observability context (Strovl_obs.Ctx), so [-j 1] and [-j N]
   produce byte-identical output. *)

open Cmdliner

let report_outcome ~what = function
  | Strovl_par.Pool.Done v -> Some v
  | Strovl_par.Pool.Failed { exn; backtrace } ->
    Printf.eprintf "%s failed: %s\n" what exn;
    if backtrace <> "" then prerr_string backtrace;
    None

let run_experiments ids quick seed json jobs =
  let unknown = ref false in
  let targets =
    (* [all] (or no ids) selects the whole catalogue in paper order. *)
    if ids = [] || List.mem "all" ids then Strovl_expt.all
    else
      List.filter_map
        (fun id ->
          match Strovl_expt.find id with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment: %s (try `list`)\n" id;
            unknown := true;
            None)
        ids
  in
  let outcomes = Strovl_expt.run_many ~jobs ~quick ~seed targets in
  let failed = ref false in
  (* Outcomes come back in input order; printing happens here, on the main
     domain only, so the catalogue renders identically for every [-j]. *)
  List.iteri
    (fun i (e : Strovl_expt.experiment) ->
      match report_outcome ~what:("experiment " ^ e.id) outcomes.(i) with
      | None -> failed := true
      | Some (table, _digest) ->
        if json then print_endline (Strovl_expt.Table.to_json table)
        else Strovl_expt.Table.print Format.std_formatter table)
    targets;
  (* Any unknown id is a failure even when other ids ran: callers scripting
     the runner must not mistake a typo for a clean pass. *)
  if !unknown || !failed then 1 else 0

(* "a..b" (inclusive), "a,b,c", or a single seed. Errors are specific —
   a descending range in particular must not be mistaken for an empty
   sweep. *)
let parse_seeds s =
  let int64 x = Int64.of_string_opt (String.trim x) in
  match String.index_opt s '.' with
  | Some i
    when i + 1 < String.length s
         && s.[i + 1] = '.'
         && (not (String.contains s ',')) -> begin
    match (int64 (String.sub s 0 i), int64 (String.sub s (i + 2) (String.length s - i - 2))) with
    | Some a, Some b when a > b ->
      Error
        (Printf.sprintf
           "descending seed range %S is empty — did you mean %Ld..%Ld?" s b a)
    | Some a, Some b ->
      let n = Int64.to_int (Int64.sub b a) + 1 in
      if n > 10_000 then
        Error (Printf.sprintf "seed range %S spans %d seeds (max 10000)" s n)
      else Ok (List.init n (fun k -> Int64.add a (Int64.of_int k)))
    | _ -> Error (Printf.sprintf "bad seed range %S (want a..b)" s)
  end
  | _ ->
    let parts = String.split_on_char ',' s in
    let seeds = List.filter_map int64 parts in
    if List.length seeds = List.length parts && seeds <> [] then Ok seeds
    else
      Error
        (Printf.sprintf "bad --seeds %S (want a..b, a,b,c or a single seed)" s)

let sweep_experiment id seeds_spec quick json jobs per_seed =
  match Strovl_expt.find id with
  | None ->
    Printf.eprintf "unknown experiment: %s (try `list`)\n" id;
    1
  | Some e -> begin
    match parse_seeds seeds_spec with
    | Error e ->
      Printf.eprintf "%s\n" e;
      1
    | Ok seeds ->
      let outcomes = Strovl_expt.sweep ~jobs ~quick e ~seeds in
      let tables = ref [] in
      let failed = ref false in
      List.iteri
        (fun i seed ->
          match
            report_outcome
              ~what:(Printf.sprintf "experiment %s (seed %Ld)" id seed)
              outcomes.(i)
          with
          | None -> failed := true
          | Some t -> tables := t :: !tables)
        seeds;
      let tables = List.rev !tables in
      if !failed || tables = [] then 1
      else begin
        let print t =
          if json then print_endline (Strovl_expt.Table.to_json t)
          else Strovl_expt.Table.print Format.std_formatter t
        in
        if per_seed then List.iter print tables;
        let agg = Strovl_expt.Table.aggregate tables in
        print
          {
            agg with
            Strovl_expt.Table.notes =
              agg.Strovl_expt.Table.notes
              @ [ Printf.sprintf "seeds: %s" seeds_spec ];
          };
        0
      end
  end

let list_experiments () =
  Strovl_expt.print_list ();
  0

let ids =
  let doc =
    "Experiment ids to run (default: all; the pseudo-id $(b,all) also \
     selects every experiment). Use the list command to enumerate."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let quick =
  let doc = "Reduced packet counts and sweeps (for smoke testing)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed =
  let doc = "Deterministic seed for the simulation RNG streams." in
  Arg.(value & opt int64 7L & info [ "seed" ] ~doc)

let json =
  let doc = "Emit each result table as one JSON object per line." in
  Arg.(value & flag & info [ "json" ] ~doc)

let jobs =
  let doc =
    "Run up to $(docv) experiments concurrently on separate domains. Each \
     run gets a fresh observability context, so output is byte-identical \
     for every value of $(docv)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let run_cmd =
  let doc = "run paper-reproduction experiments" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run_experiments $ ids $ quick $ seed $ json $ jobs)

let sweep_id =
  let doc = "Experiment id to sweep." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)

let seeds_spec =
  let doc = "Seeds to sweep: $(b,a..b) (inclusive), $(b,a,b,c) or one seed." in
  Arg.(value & opt string "1..8" & info [ "seeds" ] ~docv:"SPEC" ~doc)

let per_seed =
  let doc = "Also print each per-seed table before the aggregate." in
  Arg.(value & flag & info [ "per-seed" ] ~doc)

let sweep_cmd =
  let doc =
    "run one experiment across a seed range and aggregate the tables \
     (per-row mean/min/max)"
  in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      const sweep_experiment $ sweep_id $ seeds_spec $ quick $ json $ jobs
      $ per_seed)

let list_cmd =
  let doc = "list available experiments" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

let main =
  let doc = "structured overlay network experiments (Babay et al., ICDCS 2017)" in
  Cmd.group
    ~default:Term.(const run_experiments $ ids $ quick $ seed $ json $ jobs)
    (Cmd.info "strovl_run" ~doc)
    [ run_cmd; sweep_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
