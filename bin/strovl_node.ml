(* The overlay daemon: one overlay node of a real deployment. Loads the
   shared topology file, binds this node's UDP address, and speaks the
   full link/probe/routing protocol to its peer daemons — the identical
   stack the simulator runs, driven by the wall clock (Strovl_rt.Runtime).
   Clients attach over the session protocol (bin/strovl_send). *)

open Cmdliner
module Time = Strovl_sim.Time

let make_config hello_ms timeout_ms probe_ms loss_aware =
  let base = Strovl.Node.default_config in
  let probe =
    match probe_ms with
    | None -> None
    | Some p ->
      Some
        {
          Strovl.Probe_link.default_config with
          Strovl.Probe_link.period = Time.ms p;
        }
  in
  {
    base with
    Strovl.Node.hello_interval = Time.ms hello_ms;
    hello_timeout = Time.ms timeout_ms;
    loss_aware_routing = loss_aware;
    probe;
    probe_routing = probe <> None;
  }

let main topo_path id hello_ms timeout_ms probe_ms loss_aware duration verbose =
  match Strovl_rt.Topofile.load topo_path with
  | Error e ->
    Printf.eprintf "strovl_node: %s\n" e;
    1
  | Ok topo when id < 0 || id >= Array.length topo.Strovl_rt.Topofile.nodes ->
    Printf.eprintf "strovl_node: no node %d in %s (%d nodes)\n" id topo_path
      (Array.length topo.Strovl_rt.Topofile.nodes);
    1
  | Ok topo -> (
    let config = make_config hello_ms timeout_ms probe_ms loss_aware in
    let rt = Strovl_rt.Runtime.create () in
    match Strovl_rt.Host.create ~config ~rt ~topo ~id () with
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "strovl_node: cannot bind %s:%d: %s\n"
        topo.Strovl_rt.Topofile.nodes.(id).Strovl_rt.Topofile.host
        topo.Strovl_rt.Topofile.nodes.(id).Strovl_rt.Topofile.port
        (Unix.error_message e);
      1
    | host ->
      let stop_now _ = Strovl_rt.Runtime.stop rt in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop_now);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_now);
      Strovl_rt.Host.start host;
      if verbose then
        Printf.eprintf "strovl_node: node %d up on port %d\n%!" id
          (Strovl_rt.Host.port host);
      (match duration with
      | Some s -> Strovl_rt.Runtime.run_for rt (Time.sec s)
      | None -> Strovl_rt.Runtime.run rt);
      print_endline (Strovl_rt.Host.stats_json host);
      Strovl_rt.Host.close host;
      0)

let topo_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "topo" ] ~docv:"FILE"
        ~doc:"Topology file shared by every daemon (see Strovl_rt.Topofile).")

let id_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "id" ] ~docv:"N" ~doc:"This daemon's overlay node id.")

let hello_arg =
  Arg.(
    value & opt int 100
    & info [ "hello-ms" ] ~docv:"MS" ~doc:"Hello interval (default 100).")

let timeout_arg =
  Arg.(
    value & opt int 350
    & info [ "hello-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Silence before an incident link is declared down (default 350) — \
           the sub-second rerouting knob.")

let probe_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "probe-ms" ] ~docv:"MS"
        ~doc:
          "Enable link health probing on this period, and advertise \
           probe-derived metrics in LSUs (off by default).")

let loss_aware_arg =
  Arg.(
    value & flag
    & info [ "loss-aware" ] ~doc:"Route on the loss-inflated metric.")

let duration_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "duration" ] ~docv:"SEC"
        ~doc:
          "Exit (printing a stats line) after this many seconds; default: \
           run until SIGINT/SIGTERM.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Startup chatter on stderr.")

let cmd =
  Cmd.v
    (Cmd.info "strovl_node" ~doc:"Run one overlay node daemon over real UDP")
    Term.(
      const main $ topo_arg $ id_arg $ hello_arg $ timeout_arg $ probe_arg
      $ loss_aware_arg $ duration_arg $ verbose_arg)

let () = exit (Cmd.eval' cmd)
