(* Session client for a live overlay daemon. Opens a virtual port on the
   daemon at --node over the Wire.Session protocol, optionally joins a
   multicast group, injects a flow, and/or waits for deliveries, reporting
   one-way latency (valid on one host: daemons stamp packets with the
   shared CLOCK_MONOTONIC epoch — see EXPERIMENTS.md on sim-vs-real
   parity). Exits non-zero if any send is refused or fewer than --expect
   packets arrive before --timeout-sec. *)

open Cmdliner
module Wire = Strovl.Wire
module Packet = Strovl.Packet
module Udp = Strovl_rt.Udp
module Clock = Strovl_rt.Clock

let ( let* ) = Result.bind

(* Waits for one session frame until [deadline] (monotonic µs). *)
let rec recv_frame sock ~deadline =
  let now = Clock.now_us () in
  if now >= deadline then None
  else
    match
      Unix.select [ Udp.fd sock ] [] [] (float_of_int (deadline - now) /. 1e6)
    with
    | [], _, _ -> None
    | _, _, _ -> (
      match Udp.recvfrom sock with
      | Some (data, _) -> (
        match Wire.decode_datagram data with
        | Ok (Wire.Dg_session f) -> Some f
        | Ok (Wire.Dg_msg _) | Error _ -> recv_frame sock ~deadline)
      | None -> recv_frame sock ~deadline)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv_frame sock ~deadline

let parse_service s =
  match String.lowercase_ascii s with
  | "best-effort" | "be" -> Ok Packet.Best_effort
  | "reliable" -> Ok Packet.Reliable
  | "realtime" ->
    Ok
      (Packet.Realtime
         {
           Packet.deadline = Strovl_sim.Time.ms 200;
           n_requests = 2;
           m_retrans = 2;
         })
  | "it-priority" -> Ok (Packet.It_priority 1)
  | "it-reliable" -> Ok Packet.It_reliable
  | "fec" -> Ok (Packet.Fec { Packet.fec_k = 8; fec_r = 2 })
  | _ ->
    Error
      (Printf.sprintf
         "unknown service %S (best-effort|reliable|realtime|it-priority|it-reliable|fec)"
         s)

let open_session sock daemon sport =
  (* The daemon may still be booting; retry the handshake briefly. *)
  let rec attempt n =
    if n = 0 then Error "no Open_ok from daemon (is strovl_node running?)"
    else begin
      ignore
        (Udp.sendto sock daemon
           (Wire.encode_datagram (Wire.Dg_session (Wire.Session.Open { sport }))));
      match recv_frame sock ~deadline:(Clock.now_us () + 200_000) with
      | Some (Wire.Session.Open_ok { node; sport = sp }) when sp = sport ->
        Ok node
      | _ -> attempt (n - 1)
    end
  in
  attempt 25

let main topo_path node_id sport dest_node group group_send anycast dport
    service_name count bytes interval_ms expect timeout_sec tag stats =
  let result =
    let* topo = Strovl_rt.Topofile.load topo_path in
    let* () =
      if node_id >= 0 && node_id < Array.length topo.Strovl_rt.Topofile.nodes
      then Ok ()
      else Error (Printf.sprintf "no node %d in %s" node_id topo_path)
    in
    let* service = parse_service service_name in
    let* dest =
      match (dest_node, group_send, anycast) with
      | Some n, None, None -> Ok (Some (Packet.To_node n))
      | None, Some g, None -> Ok (Some (Packet.To_group g))
      | None, None, Some g -> Ok (Some (Packet.Any_of_group g))
      | None, None, None -> Ok None
      | _ -> Error "--dest, --group-send and --anycast are mutually exclusive"
    in
    let daemon = Strovl_rt.Topofile.addr topo node_id in
    let sock = Udp.bind ~host:"" ~port:0 in
    Fun.protect
      ~finally:(fun () ->
        ignore
          (Udp.sendto sock daemon
             (Wire.encode_datagram
                (Wire.Dg_session (Wire.Session.Close { sport }))));
        Udp.close sock)
      (fun () ->
        let* daemon_node = open_session sock daemon sport in
        Printf.printf "opened session: daemon node %d, sport %d\n%!"
          daemon_node sport;
        (match group with
        | Some g ->
          ignore
            (Udp.sendto sock daemon
               (Wire.encode_datagram
                  (Wire.Dg_session (Wire.Session.Join { group = g; sport }))));
          Printf.printf "joined group %d\n%!" g
        | None -> ());
        let deadline = Clock.now_us () + (timeout_sec * 1_000_000) in
        let acks = ref 0 and refused = ref 0 and delivers = ref 0 in
        let lat_min = ref max_int and lat_max = ref 0 and lat_sum = ref 0 in
        let note_frame = function
          | Wire.Session.Sent { accepted; _ } ->
            incr acks;
            if not accepted then incr refused
          | Wire.Session.Deliver { pkt; _ } ->
            incr delivers;
            let lat = Clock.now_us () - pkt.Packet.sent_at in
            if lat >= 0 then begin
              lat_min := min !lat_min lat;
              lat_max := max !lat_max lat;
              lat_sum := !lat_sum + lat
            end
          | _ -> ()
        in
        (match dest with
        | Some dest ->
          for seq = 0 to count - 1 do
            ignore
              (Udp.sendto sock daemon
                 (Wire.encode_datagram
                    (Wire.Dg_session
                       (Wire.Session.Send
                          { sport; dest; dport; service; seq; bytes; tag }))));
            if interval_ms > 0 && seq < count - 1 then
              Unix.sleepf (float_of_int interval_ms /. 1e3);
            (* keep draining acks/deliveries while pacing the flow *)
            Udp.drain sock ~f:(fun data _ ->
                match Wire.decode_datagram data with
                | Ok (Wire.Dg_session f) -> note_frame f
                | _ -> ())
          done
        | None -> ());
        let want_delivers = expect in
        let rec collect () =
          if
            (!delivers < want_delivers
            || (dest <> None && !acks < count))
            && Clock.now_us () < deadline
          then (
            (match recv_frame sock ~deadline with
            | Some f -> note_frame f
            | None -> ());
            collect ())
        in
        collect ();
        if dest <> None then
          Printf.printf "sent %d: %d acknowledged, %d refused\n%!" count !acks
            !refused;
        if want_delivers > 0 || !delivers > 0 then
          if !delivers > 0 then
            Printf.printf
              "delivered %d: one-way latency ms min/mean/max = \
               %.3f/%.3f/%.3f\n\
               %!"
              !delivers
              (float_of_int !lat_min /. 1e3)
              (float_of_int !lat_sum /. float_of_int !delivers /. 1e3)
              (float_of_int !lat_max /. 1e3)
          else Printf.printf "delivered 0\n%!";
        if stats then begin
          ignore
            (Udp.sendto sock daemon
               (Wire.encode_datagram
                  (Wire.Dg_session (Wire.Session.Stats_req { what = 0 }))));
          match recv_frame sock ~deadline:(Clock.now_us () + 1_000_000) with
          | Some (Wire.Session.Stats { json }) -> print_endline json
          | _ -> prerr_endline "no stats reply"
        end;
        if !refused > 0 then Error (Printf.sprintf "%d sends refused" !refused)
        else if !delivers < want_delivers then
          Error
            (Printf.sprintf "expected %d deliveries, got %d before timeout"
               want_delivers !delivers)
        else Ok ())
  in
  match result with
  | Ok () -> 0
  | Error e ->
    Printf.eprintf "strovl_send: %s\n" e;
    1

let topo_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "topo" ] ~docv:"FILE" ~doc:"Topology file (to find the daemon).")

let node_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "node" ] ~docv:"N" ~doc:"Overlay node id of the local daemon.")

let sport_arg =
  Arg.(
    value & opt int 1
    & info [ "sport" ] ~docv:"PORT" ~doc:"Virtual source port to claim.")

let dest_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "dest" ] ~docv:"N" ~doc:"Unicast destination overlay node.")

let group_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "group" ] ~docv:"G"
        ~doc:"Join this multicast group (to receive it).")

let group_send_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "group-send" ] ~docv:"G" ~doc:"Multicast destination group.")

let anycast_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "anycast" ] ~docv:"G" ~doc:"Anycast destination group.")

let dport_arg =
  Arg.(
    value & opt int 1
    & info [ "dport" ] ~docv:"PORT" ~doc:"Destination virtual port.")

let service_arg =
  Arg.(
    value & opt string "reliable"
    & info [ "service" ] ~docv:"SVC"
        ~doc:
          "Overlay service class: best-effort, reliable, realtime, \
           it-priority, it-reliable or fec.")

let count_arg =
  Arg.(
    value & opt int 10
    & info [ "count" ] ~docv:"K" ~doc:"Packets to send (default 10).")

let bytes_arg =
  Arg.(
    value & opt int 1200
    & info [ "bytes" ] ~docv:"B" ~doc:"Payload size per packet.")

let interval_arg =
  Arg.(
    value & opt int 10
    & info [ "interval-ms" ] ~docv:"MS"
        ~doc:"Pacing between sends (default 10).")

let expect_arg =
  Arg.(
    value & opt int 0
    & info [ "expect" ] ~docv:"K"
        ~doc:
          "Wait for this many deliveries to the claimed sport; exit \
           non-zero if they don't arrive before the timeout.")

let timeout_arg =
  Arg.(
    value & opt int 10
    & info [ "timeout-sec" ] ~docv:"SEC"
        ~doc:"Overall wait budget (default 10).")

let tag_arg =
  Arg.(
    value & opt string "cli"
    & info [ "tag" ] ~docv:"TAG" ~doc:"Flow label echoed in traces.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Fetch and print the daemon's stats JSON before exiting.")

let cmd =
  Cmd.v
    (Cmd.info "strovl_send"
       ~doc:"Open a client session on a live overlay daemon: send and receive flows")
    Term.(
      const main $ topo_arg $ node_arg $ sport_arg $ dest_arg $ group_arg
      $ group_send_arg $ anycast_arg $ dport_arg $ service_arg $ count_arg
      $ bytes_arg $ interval_arg $ expect_arg $ timeout_arg $ tag_arg
      $ stats_arg)

let () = exit (Cmd.eval' cmd)
