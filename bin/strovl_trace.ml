(* Flight-recorder front end: run any experiment with tracing armed, then
   answer queries about what happened — a packet's causal path, drop
   reasons, link utilization, or the whole summary. *)

open Cmdliner
module Trace = Strovl_obs.Trace
module Export = Strovl_obs.Export

(* Run one experiment with the recorder armed; the ring and the metrics
   registry are left populated for the query that follows. *)
let traced_run id quick seed capacity =
  match Strovl_expt.find id with
  | None ->
    Printf.eprintf "unknown experiment: %s (try `strovl_run list`)\n" id;
    None
  | Some e ->
    Strovl_obs.Metrics.reset ();
    Trace.enable ~capacity ();
    let table = e.Strovl_expt.run ~quick ~seed () in
    Some table

(* "src:sport:dst:dport" (as printed by the summaries) -> flow_id. *)
let parse_flow s =
  match String.split_on_char ':' s with
  | [ a; b; c; d ] -> begin
    match
      (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
    with
    | Some fi_src, Some fi_sport, Some fi_dst, Some fi_dport ->
      Some { Trace.fi_src; fi_sport; fi_dst; fi_dport }
    | _ -> None
  end
  | _ -> None

let run_main id quick seed capacity json jsonl_path =
  match traced_run id quick seed capacity with
  | None -> 1
  | Some table ->
    (match jsonl_path with
    | Some path ->
      let oc = open_out path in
      Export.jsonl oc;
      close_out oc;
      Printf.eprintf "wrote %d trace records to %s\n" (Trace.length ()) path
    | None -> ());
    if json then begin
      print_endline (Strovl_expt.Table.to_json table);
      print_endline (Export.summary_json ())
    end
    else begin
      Strovl_expt.Table.print Format.std_formatter table;
      Export.print_summary Format.std_formatter;
      (match Export.sample_packet () with
      | Some (flow, seq) ->
        Format.printf "@.sampled packet path:@.";
        Export.print_path Format.std_formatter ~flow ~seq
      | None -> ())
    end;
    0

let path_main id quick seed capacity flow_s seq =
  (* Reject a malformed --flow before paying for the run. *)
  let explicit =
    match flow_s with
    | None -> Ok None
    | Some s -> begin
      match parse_flow s with
      | Some flow -> Ok (Some (flow, seq))
      | None ->
        Printf.eprintf "bad --flow %S (want src:sport:dst:dport)\n" s;
        Error ()
    end
  in
  match explicit with
  | Error () -> 1
  | Ok explicit -> begin
    match traced_run id quick seed capacity with
    | None -> 1
    | Some _ -> begin
      let target =
        match explicit with
        | Some t -> Some t
        | None -> Export.sample_packet ()
      in
      match target with
      | None ->
        Printf.eprintf "no packet to trace (empty flight recorder?)\n";
        1
      | Some (flow, seq) -> begin
        match Export.path_of ~flow ~seq with
        | [] ->
          Printf.eprintf
            "no events for that flow/seq in the trace window (try `summary` \
             for live flows)\n";
          1
        | _ ->
          Export.print_path Format.std_formatter ~flow ~seq;
          0
      end
    end
  end

let drops_main id quick seed capacity =
  match traced_run id quick seed capacity with
  | None -> 1
  | Some _ ->
    (match Export.drop_counts () with
    | [] -> print_endline "no drops recorded"
    | counts ->
      List.iter (fun (reason, n) -> Printf.printf "%-16s %d\n" reason n) counts);
    0

let links_main id quick seed capacity =
  match traced_run id quick seed capacity with
  | None -> 1
  | Some _ ->
    Printf.printf "%-12s %10s %12s %8s\n" "link" "packets" "bytes" "qdrops";
    List.iter
      (fun (label, pkts, bytes, drops) ->
        Printf.printf "%-12s %10d %12d %8d\n" label pkts bytes drops)
      (Export.links_table ());
    0

(* One line per experiment: the run's trace-digest determinism fingerprint.
   Runs under Ctx.isolate exactly like `strovl_run -j N` workers do, so the
   digest matches the pooled runners and is stable across invocations at a
   fixed seed — @smoke diffs this output against a committed snapshot to
   prove a refactor left the simulated fast path byte-identical. *)
let digest_main ids quick seed =
  let unknown = ref false in
  let targets =
    if ids = [] then Strovl_expt.all
    else
      List.filter_map
        (fun id ->
          match Strovl_expt.find id with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment: %s (try `strovl_trace list`)\n"
              id;
            unknown := true;
            None)
        ids
  in
  List.iter
    (fun (e : Strovl_expt.experiment) ->
      match Strovl_expt.run_isolated ~quick ~traced:true ~seed e with
      | _, Some d -> Printf.printf "%-18s %016Lx\n" e.Strovl_expt.id d
      | _, None -> Printf.printf "%-18s (no digest)\n" e.Strovl_expt.id)
    targets;
  if !unknown then 1 else 0

let summary_main id quick seed capacity json =
  match traced_run id quick seed capacity with
  | None -> 1
  | Some _ ->
    if json then print_endline (Export.summary_json ())
    else Export.print_summary Format.std_formatter;
    0

(* ------------------------- cmdliner plumbing ------------------------- *)

let id_arg =
  let doc = "Experiment id to run with tracing enabled." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)

let quick =
  let doc = "Reduced packet counts and sweeps (for smoke testing)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed =
  let doc = "Deterministic seed for the simulation RNG streams." in
  Arg.(value & opt int64 7L & info [ "seed" ] ~doc)

let capacity =
  let doc = "Flight-recorder ring capacity (events retained)." in
  Arg.(value & opt int (1 lsl 18) & info [ "capacity" ] ~doc)

let json =
  let doc = "Machine-readable JSON output." in
  Arg.(value & flag & info [ "json" ] ~doc)

let jsonl_path =
  let doc = "Also dump every retained trace record as JSONL to $(docv)." in
  Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)

let flow_arg =
  let doc = "Flow to trace, as src:sport:dst:dport (default: a sampled packet)." in
  Arg.(value & opt (some string) None & info [ "flow" ] ~doc)

let seq_arg =
  let doc = "Sequence number within --flow (-1: all of the flow)." in
  Arg.(value & opt int (-1) & info [ "seq" ] ~doc)

let run_cmd =
  let doc = "run an experiment traced; print its table, summary and a sample path" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run_main $ id_arg $ quick $ seed $ capacity $ json $ jsonl_path)

let path_cmd =
  let doc = "reconstruct one packet's causal path through the overlay" in
  Cmd.v
    (Cmd.info "path" ~doc)
    Term.(const path_main $ id_arg $ quick $ seed $ capacity $ flow_arg $ seq_arg)

let drops_cmd =
  let doc = "drop events grouped by reason" in
  Cmd.v
    (Cmd.info "drops" ~doc)
    Term.(const drops_main $ id_arg $ quick $ seed $ capacity)

let links_cmd =
  let doc = "per-link utilization from the metrics registry" in
  Cmd.v
    (Cmd.info "links" ~doc)
    Term.(const links_main $ id_arg $ quick $ seed $ capacity)

let summary_cmd =
  let doc = "trace + metrics summary (tables or --json)" in
  Cmd.v
    (Cmd.info "summary" ~doc)
    Term.(const summary_main $ id_arg $ quick $ seed $ capacity $ json)

let digest_cmd =
  let ids =
    let doc = "Experiment ids to fingerprint (default: the whole suite)." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let doc =
    "print each experiment's deterministic trace digest (one line per id)"
  in
  Cmd.v
    (Cmd.info "digest" ~doc)
    Term.(const digest_main $ ids $ quick $ seed)

let list_cmd =
  let doc = "list the experiments this tool can trace" in
  Cmd.v
    (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          Strovl_expt.print_list ();
          0)
      $ const ())

let main =
  let doc = "flight-recorder tracing for the overlay experiments" in
  Cmd.group
    (Cmd.info "strovl_trace" ~doc)
    [ run_cmd; path_cmd; drops_cmd; links_cmd; summary_cmd; digest_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
