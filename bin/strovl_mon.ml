(* Live overlay health monitor: link probing, windowed time-series, and the
   online invariant auditor, as a command-line front end.

   - [health]  runs a probing-enabled overlay and prints the per-link
     health table (EWMA RTT / jitter / loss, liveness verdict, expected
     latency).
   - [series]  runs an experiment with the windowed time-series armed and
     prints the collected channels (or dumps them as JSONL).
   - [audit]   runs experiments with the flight recorder feeding the
     invariant auditor; violations are printed with their causal path and
     the exit status is non-zero if any were found.
   - [watch]   runs an experiment with a streaming trace sink that prints
     one dashboard line per sim-time window as the run progresses.
   - [list]    shows the experiment catalogue (shared with strovl_run). *)

open Cmdliner
module Time = Strovl_sim.Time
module Trace = Strovl_obs.Trace
module Export = Strovl_obs.Export
module Series = Strovl_obs.Series
module Health = Strovl_obs.Health
module Audit = Strovl_obs.Audit

let find_expt id =
  match Strovl_expt.find id with
  | Some e -> Some e
  | None ->
    Printf.eprintf "unknown experiment: %s (try `strovl_mon list`)\n" id;
    None

(* ------------------------------- health ------------------------------- *)

(* A dedicated probing scenario rather than an experiment rerun: the suite
   experiments run with probing off (it is opt-in), so [health] builds the
   US backbone with the probe protocol armed on every link, injects the
   requested underlay loss, and lets the EWMAs converge. *)
let health_main seed loss period_ms duration_s json =
  Health.reset ();
  let probe_cfg =
    { Strovl.Probe_link.default_config with Strovl.Probe_link.period = Time.ms period_ms }
  in
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        { Strovl.Node.default_config with Strovl.Node.probe = Some probe_cfg };
    }
  in
  let sim =
    Strovl_expt.Common.build ~config ~seed (Strovl_topo.Gen.us_backbone ())
  in
  if loss > 0. then Strovl_expt.Common.bernoulli_loss sim ~p:loss;
  Strovl_expt.Common.run_for sim (Time.sec duration_s);
  let entries = Health.all () in
  if json then
    List.iter (fun h -> print_endline (Health.json h)) entries
  else begin
    Printf.printf "%-6s %-6s %9s %9s %8s %7s %7s %7s %12s\n" "link" "node"
      "rtt_ms" "jit_ms" "loss_pm" "alive" "sent" "acked" "exp_lat_ms";
    List.iter
      (fun h ->
        Printf.printf "%-6d %-6d %9.2f %9.2f %8d %7s %7d %7d %12.2f\n"
          h.Health.h_link h.Health.h_node
          (float_of_int h.Health.rtt_us /. 1000.)
          (float_of_int h.Health.jitter_us /. 1000.)
          h.Health.loss_pm
          (if h.Health.alive then "up" else "DOWN")
          h.Health.sent h.Health.acked
          (float_of_int (Health.expected_latency_us h) /. 1000.))
      entries
  end;
  if entries = [] then begin
    Printf.eprintf "no health entries (probing did not run?)\n";
    1
  end
  else 0

(* ------------------------------- series ------------------------------- *)

let series_main id quick seed window_ms buckets json filter =
  match find_expt id with
  | None -> 1
  | Some e ->
    Strovl_obs.Metrics.reset ();
    Series.reset ();
    Series.enable ~window:(window_ms * 1000) ~capacity:buckets ();
    let _table = e.Strovl_expt.run ~quick ~seed () in
    let chans =
      List.filter
        (fun ch ->
          match filter with
          | None -> true
          | Some sub ->
            let name = Series.name ch in
            let rec has i =
              i + String.length sub <= String.length name
              && (String.sub name i (String.length sub) = sub || has (i + 1))
            in
            has 0)
        (Series.channels ())
    in
    Series.disable ();
    if chans = [] then begin
      Printf.eprintf "no series points collected\n";
      1
    end
    else if json then begin
      List.iter
        (fun ch ->
          List.iter
            (fun p -> print_endline (Series.point_json ch p))
            (Series.points ch))
        chans;
      0
    end
    else begin
      List.iter
        (fun ch ->
          let pts = Series.points ch in
          let n = List.fold_left (fun a p -> a + p.Series.p_n) 0 pts in
          let sum = List.fold_left (fun a p -> a + p.Series.p_sum) 0 pts in
          let mx = List.fold_left (fun a p -> max a p.Series.p_max) min_int pts in
          Printf.printf "%s{%s}: %d buckets, n=%d mean=%.2f max=%d\n"
            (Series.name ch)
            (String.concat ","
               (List.map (fun (k, v) -> k ^ "=" ^ v) (Series.labels ch)))
            (List.length pts) n
            (if n = 0 then 0. else float_of_int sum /. float_of_int n)
            mx;
          List.iter
            (fun p ->
              Printf.printf "  t=%8.1fms n=%6d sum=%10d max=%8d mean=%10.2f\n"
                (float_of_int p.Series.p_t0 /. 1000.)
                p.Series.p_n p.Series.p_sum p.Series.p_max (Series.mean p))
            pts)
        chans;
      0
    end

(* ------------------------------- audit ------------------------------- *)

let audit_one ~quick ~seed ~capacity ~json (e : Strovl_expt.experiment) =
  Strovl_obs.Metrics.reset ();
  Trace.enable ~capacity ();
  Audit.arm ();
  let _table = e.Strovl_expt.run ~quick ~seed () in
  let violations = Audit.finish () in
  Audit.disarm ();
  if json then
    List.iter
      (fun v ->
        Printf.printf "{\"experiment\":%s,%s\n"
          (Export.json_str e.Strovl_expt.id)
          (let s = Audit.violation_json v in
           String.sub s 1 (String.length s - 1)))
      violations
  else begin
    Printf.printf "%-18s %s (%d trace events, %d violations)\n"
      e.Strovl_expt.id
      (if violations = [] then "CLEAN" else "VIOLATIONS")
      (Trace.total ()) (List.length violations);
    List.iter
      (fun v ->
        Format.printf "  %a@." Audit.pp_violation v;
        (* The causal path behind the first packet-bearing violations. *)
        if v.Audit.v_flow <> Trace.no_flow then begin
          Format.printf "  causal path:@.";
          Export.print_path Format.std_formatter ~flow:v.Audit.v_flow
            ~seq:v.Audit.v_seq
        end)
      violations
  end;
  Trace.disable ();
  List.length violations

let audit_main ids quick seed capacity json =
  let targets, bad =
    match ids with
    | [] -> (Strovl_expt.all, false)
    | ids ->
      let found = List.filter_map find_expt ids in
      (found, List.length found <> List.length ids)
  in
  let total =
    List.fold_left
      (fun acc e -> acc + audit_one ~quick ~seed ~capacity ~json e)
      0 targets
  in
  if (not json) && total = 0 && targets <> [] then
    Printf.printf "all audited experiments clean\n";
  if bad || total > 0 then 1 else 0

(* ------------------------------- watch ------------------------------- *)

(* A per-window dashboard: folds the flight-recorder ring into one row
   per sim-time window. The fold runs over the retained ring after the
   run rather than as a live sink — experiments that ride under
   [Audit.checked] own the one streaming sink slot for the duration, and
   the timeline is in simulated time either way; only the ring capacity
   bounds how far back the dashboard reaches. *)
let watch_main id quick seed capacity interval_ms =
  match find_expt id with
  | None -> 1
  | Some e ->
    let w = interval_ms * 1000 in
    let cur = ref min_int in
    let dlv = ref 0
    and fwd = ref 0
    and drp = ref 0
    and rtx = ref 0
    and rr = ref 0
    and prb = ref 0 in
    let header () =
      Printf.printf "%12s %9s %9s %7s %7s %9s %7s\n" "t_ms" "deliver"
        "forward" "drop" "retx" "reroute" "probe"
    in
    let flush () =
      if !cur > min_int then
        Printf.printf "%12.1f %9d %9d %7d %7d %9d %7d\n"
          (float_of_int !cur /. 1000.)
          !dlv !fwd !drp !rtx !rr !prb;
      dlv := 0;
      fwd := 0;
      drp := 0;
      rtx := 0;
      rr := 0;
      prb := 0
    in
    let fold (r : Trace.record) =
      let t0 = r.Trace.ts - (r.Trace.ts mod w) in
      if t0 <> !cur then begin
        flush ();
        cur := t0
      end;
      match r.Trace.ev with
      | Trace.Deliver | Trace.Deliver_replay -> incr dlv
      | Trace.Forward _ | Trace.Forward_replay _ -> incr fwd
      | Trace.Drop _ -> incr drp
      | Trace.Retransmit _ -> incr rtx
      | Trace.Reroute _ -> incr rr
      | Trace.Probe _ -> incr prb
      | _ -> ()
    in
    Strovl_obs.Metrics.reset ();
    Trace.enable ~capacity ();
    let _table = e.Strovl_expt.run ~quick ~seed () in
    header ();
    Trace.iter fold;
    flush ();
    if Trace.total () > Trace.length () then
      Printf.printf
        "(ring wrapped: first %d of %d events lost; raise --capacity)\n"
        (Trace.total () - Trace.length ())
        (Trace.total ());
    Trace.disable ();
    0

(* --------------------------- cmdliner glue --------------------------- *)

let quick =
  let doc = "Reduced packet counts and sweeps (for smoke testing)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed =
  let doc = "Deterministic seed for the simulation RNG streams." in
  Arg.(value & opt int64 7L & info [ "seed" ] ~doc)

let json =
  let doc = "Machine-readable JSON output." in
  Arg.(value & flag & info [ "json" ] ~doc)

let capacity =
  let doc = "Flight-recorder ring capacity (events retained)." in
  Arg.(value & opt int (1 lsl 18) & info [ "capacity" ] ~doc)

let id_arg =
  let doc = "Experiment id (see the list command)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)

let health_cmd =
  let loss =
    let doc = "Inject this underlay per-packet loss probability." in
    Arg.(value & opt float 0. & info [ "loss" ] ~doc)
  in
  let period_ms =
    let doc = "Probe period in milliseconds." in
    Arg.(value & opt int 50 & info [ "period-ms" ] ~doc)
  in
  let duration_s =
    let doc = "Simulated seconds to let the estimators converge." in
    Arg.(value & opt int 30 & info [ "duration" ] ~doc)
  in
  let doc = "probe every overlay link and print the health table" in
  Cmd.v
    (Cmd.info "health" ~doc)
    Term.(const health_main $ seed $ loss $ period_ms $ duration_s $ json)

let series_cmd =
  let window_ms =
    let doc = "Time-series bucket width in milliseconds." in
    Arg.(value & opt int 100 & info [ "window-ms" ] ~doc)
  in
  let buckets =
    let doc = "Buckets retained per channel (ring capacity)." in
    Arg.(value & opt int 600 & info [ "buckets" ] ~doc)
  in
  let filter =
    let doc = "Only channels whose name contains $(docv)." in
    Arg.(value & opt (some string) None & info [ "filter" ] ~docv:"SUBSTR" ~doc)
  in
  let doc = "run an experiment with windowed time-series armed" in
  Cmd.v
    (Cmd.info "series" ~doc)
    Term.(
      const series_main $ id_arg $ quick $ seed $ window_ms $ buckets $ json
      $ filter)

let audit_cmd =
  let ids =
    let doc = "Experiment ids to audit (default: the whole suite)." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let doc = "run experiments under the online invariant auditor" in
  Cmd.v
    (Cmd.info "audit" ~doc)
    Term.(const audit_main $ ids $ quick $ seed $ capacity $ json)

let watch_cmd =
  let interval_ms =
    let doc = "Dashboard window width in simulated milliseconds." in
    Arg.(value & opt int 500 & info [ "interval-ms" ] ~doc)
  in
  let doc = "stream a per-window event dashboard while an experiment runs" in
  Cmd.v
    (Cmd.info "watch" ~doc)
    Term.(const watch_main $ id_arg $ quick $ seed $ capacity $ interval_ms)

let list_cmd =
  let doc = "list the experiments the monitor can drive" in
  Cmd.v
    (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          Strovl_expt.print_list ();
          0)
      $ const ())

let main =
  let doc = "live overlay health: probing, time-series and invariant audit" in
  Cmd.group
    (Cmd.info "strovl_mon" ~doc)
    [ health_cmd; series_cmd; audit_cmd; watch_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
