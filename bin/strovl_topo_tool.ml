(* Topology inspection tool: stats, Graphviz export, and per-pair routing /
   dissemination analysis for the built-in resilient topologies (§II-A). *)

open Cmdliner
module Gen = Strovl_topo.Gen
module Graph = Strovl_topo.Graph
module Dijkstra = Strovl_topo.Dijkstra
module Disjoint = Strovl_topo.Disjoint
module Dissem = Strovl_topo.Dissem

let parse_spec name =
  match String.split_on_char ':' name with
  | [ "us" ] -> Ok (Gen.us_backbone ())
  | [ "global" ] -> Ok (Gen.global_backbone ())
  | [ "chain"; n ] ->
    Ok (Gen.chain ~n:(int_of_string n) ~hop_delay:(Strovl_sim.Time.ms 10))
  | [ "ring"; n ] ->
    Ok (Gen.ring ~n:(int_of_string n) ~hop_delay:(Strovl_sim.Time.ms 10))
  | [ "circulant"; n ] ->
    Ok
      (Gen.circulant ~n:(int_of_string n) ~jumps:[ 1; 2 ]
         ~hop_delay:(Strovl_sim.Time.ms 10))
  | _ -> Error (`Msg (name ^ ": expected us | global | chain:N | ring:N | circulant:N"))

let spec_conv = Arg.conv ((fun s -> parse_spec s), fun ppf _ -> Format.fprintf ppf "<topology>")

let weight_of spec g =
  let w = Array.make (Graph.link_count g) 0 in
  Graph.iter_links g (fun l a b ->
      w.(l) <-
        (match Gen.overlay_link_delay spec ~isp:0 a b with
        | Some d -> d
        | None -> Gen.geo_delay_us spec.Gen.sites.(a) spec.Gen.sites.(b)));
  fun l -> w.(l)

let show_info spec =
  let g = Gen.overlay_graph spec in
  let weight = weight_of spec g in
  Printf.printf "sites: %d   overlay links: %d   ISPs: %d   fiber segments: %d\n"
    (Graph.n g) (Graph.link_count g) spec.Gen.nisps
    (Array.length spec.Gen.segments);
  Printf.printf "diameter: %.1fms\n"
    (Strovl_sim.Time.to_ms_float (Dijkstra.diameter ~weight g));
  Printf.printf "%-6s %-5s %s\n" "site" "deg" "links (latency)";
  for v = 0 to Graph.n g - 1 do
    let nbrs =
      String.concat " "
        (List.map
           (fun (u, l) ->
             Printf.sprintf "%s(%.1fms)" spec.Gen.sites.(u).Gen.name
               (Strovl_sim.Time.to_ms_float (weight l)))
           (Graph.neighbors g v))
    in
    Printf.printf "%-6s %-5d %s\n" spec.Gen.sites.(v).Gen.name (Graph.degree g v) nbrs
  done;
  0

let dot spec =
  let g = Gen.overlay_graph spec in
  let weight = weight_of spec g in
  print_endline "graph overlay {";
  print_endline "  layout=neato; node [shape=circle, fontsize=10];";
  for v = 0 to Graph.n g - 1 do
    let s = spec.Gen.sites.(v) in
    Printf.printf "  %d [label=\"%s\", pos=\"%f,%f!\"];\n" v s.Gen.name
      (s.Gen.lon /. 10.) (s.Gen.lat /. 10.)
  done;
  Graph.iter_links g (fun l a b ->
      Printf.printf "  %d -- %d [label=\"%.0fms\"];\n" a b
        (Strovl_sim.Time.to_ms_float (weight l)));
  print_endline "}";
  0

let site_index spec name =
  let found = ref None in
  Array.iteri
    (fun i s -> if s.Gen.name = name then found := Some i)
    spec.Gen.sites;
  match !found with
  | Some i -> Ok i
  | None -> (
    match int_of_string_opt name with
    | Some i when i >= 0 && i < Array.length spec.Gen.sites -> Ok i
    | _ -> Error (name ^ ": unknown site"))

let paths spec src dst =
  let g = Gen.overlay_graph spec in
  let weight = weight_of spec g in
  match (site_index spec src, site_index spec dst) with
  | Error e, _ | _, Error e ->
    prerr_endline e;
    1
  | Ok s, Ok d ->
    let name v = spec.Gen.sites.(v).Gen.name in
    Printf.printf "max node-disjoint paths: %d\n" (Disjoint.max_disjoint g s d);
    List.iteri
      (fun i p ->
        let nodes = Disjoint.path_nodes g s p in
        let cost = List.fold_left (fun acc l -> acc + weight l) 0 p in
        Printf.printf "  path %d (%.1fms): %s\n" (i + 1)
          (Strovl_sim.Time.to_ms_float cost)
          (String.concat " -> " (List.map name nodes)))
      (Disjoint.paths ~weight ~k:4 g s d);
    Printf.printf "dissemination-graph costs (links):\n";
    List.iter
      (fun scheme ->
        let mask = Dissem.build ~weight g ~src:s ~dst:d scheme in
        Printf.printf "  %-12s %d\n" (Dissem.scheme_name scheme) (Dissem.cost mask))
      [
        Dissem.Single_path;
        Dissem.Two_disjoint;
        Dissem.Source_problem;
        Dissem.Robust_both;
        Dissem.Flooding;
      ];
    0

let spec_arg =
  Arg.(required & pos 0 (some spec_conv) None & info [] ~docv:"TOPOLOGY")

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"print topology statistics") Term.(const show_info $ spec_arg)

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"export Graphviz (neato)") Term.(const dot $ spec_arg)

let paths_cmd =
  let src = Arg.(required & pos 1 (some string) None & info [] ~docv:"SRC") in
  let dst = Arg.(required & pos 2 (some string) None & info [] ~docv:"DST") in
  Cmd.v
    (Cmd.info "paths" ~doc:"disjoint paths and dissemination costs between two sites")
    Term.(const paths $ spec_arg $ src $ dst)

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "strovl_topo_tool"
             ~doc:"inspect the resilient overlay topologies")
          [ info_cmd; dot_cmd; paths_cmd ]))
