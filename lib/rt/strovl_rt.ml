(** The wall-clock runtime: the same overlay stack the simulator runs,
    over CLOCK_MONOTONIC and real UDP sockets (one per overlay node).

    {!Runtime} drives the simulator's own engine with a select loop;
    {!Host} is a live daemon (node + socket + session interface);
    {!Topofile} is the deployment description both daemons and clients
    load; {!Udp} and {!Clock} are the thin OS shims. [bin/strovl_node]
    and [bin/strovl_send] are the command-line faces. *)

module Clock = Rt_clock
module Topofile = Topofile
module Udp = Udp
module Runtime = Runtime
module Host = Rt_net
