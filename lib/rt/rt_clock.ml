let now_ns () = Monotonic_clock.now ()
let now_us () = Int64.to_int (Int64.div (now_ns ()) 1000L)
