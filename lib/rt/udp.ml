type t = {
  fd : Unix.file_descr;
  buf : Bytes.t;  (** reused receive buffer — no per-datagram allocation *)
  mutable closed : bool;
}

(* Max UDP payload we ever expect: overlay headers are small (the codec
   never materializes application payload), but session Stats frames carry
   JSON. Comfortably under the 64k datagram limit. *)
let max_datagram = 16384

let bind ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  let inet =
    if host = "" then Unix.inet_addr_any else Unix.inet_addr_of_string host
  in
  (try Unix.bind fd (Unix.ADDR_INET (inet, port))
   with e ->
     Unix.close fd;
     raise e);
  { fd; buf = Bytes.create max_datagram; closed = false }

let fd t = t.fd

let port t =
  match Unix.getsockname t.fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> assert false

let sendto t addr data =
  match
    Unix.sendto t.fd (Bytes.unsafe_of_string data) 0 (String.length data) []
      addr
  with
  | _ -> true
  | exception
      Unix.Unix_error
        ( ( Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.ECONNREFUSED
          | Unix.ENOBUFS ),
          _,
          _ ) ->
    false

let recvfrom t =
  match Unix.recvfrom t.fd t.buf 0 (Bytes.length t.buf) [] with
  | n, addr -> Some (Bytes.sub_string t.buf 0 n, addr)
  | exception
      Unix.Unix_error
        ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.ECONNREFUSED), _, _) ->
    None
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> None

let rec drain t ~f =
  if not t.closed then
    match recvfrom t with
    | Some (data, addr) ->
      f data addr;
      drain t ~f
    | None -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end
