(** Wall-clock time for the real-time runtime.

    CLOCK_MONOTONIC via bechamel's C stub — immune to NTP steps and
    [settimeofday], which is what a protocol stack full of timeouts wants.
    Expressed in the engine's native unit (integer microseconds,
    {!Strovl_sim.Time.t}) so wall instants can be fed straight into
    [Engine.run ~until] and compared with packet [sent_at] stamps.

    The epoch is the kernel's (boot-ish, unspecified), not the
    simulation's zero. It is *shared by every process on one host*, which
    is why cross-daemon one-way latency measurements are meaningful on a
    loopback overlay; across real hosts they would need clock sync (see
    EXPERIMENTS.md on sim-vs-real parity). *)

val now_ns : unit -> int64
(** Raw CLOCK_MONOTONIC reading, nanoseconds. *)

val now_us : unit -> Strovl_sim.Time.t
(** [now_ns () / 1000] as an [int] — engine-compatible microseconds.
    63 bits of µs is ~292k years; no wraparound concern. *)
