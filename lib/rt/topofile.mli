(** Overlay topology files for real deployments.

    A deployment is a handful of overlay nodes (the paper's "tens of
    sites", §I) named by id, each reachable at a UDP address, joined by
    overlay links with advertised latency metrics. The same file is given
    to every daemon ([strovl_node --topo FILE --id N]) and to session
    clients ([strovl_send], which only uses it to find its daemon's
    address).

    Line-oriented format; [#] starts a comment:
    {v
    node 0 127.0.0.1:7000
    node 1 127.0.0.1:7001
    node 2 127.0.0.1:7002
    link 0 1 5        # endpoints, metric in ms (default 10)
    link 1 2 5
    link 0 2 30 1000  # optional 4th field: bandwidth in Mbit/s
    v}

    Link ids are assigned in file order starting at 0 — they are the wire
    link ids in {!Strovl.Wire.datagram}s and the bit positions of
    source-route masks, so every participant must use the same file. *)

type node = { host : string; port : int }
type link = { a : int; b : int; metric_ms : int; mbps : int }

type t = { nodes : node array; links : link array }
(** [nodes.(i)] is overlay node [i]; [links.(l)] is overlay link [l]. *)

val parse : string -> (t, string) result
(** Parses file contents. Rejects, with a line-numbered error: unknown
    directives, malformed fields, duplicate or non-contiguous node ids,
    links naming unknown nodes, self-loops, duplicate links, and
    non-positive metrics or bandwidths. *)

val load : string -> (t, string) result
(** [parse] of the file at a path. *)

val graph : t -> Strovl_topo.Graph.t
(** The overlay graph; link ids match file order. *)

val metric : t -> int -> int
(** Link latency metric in µs (the unit [Conn_graph] advertises). *)

val bandwidth_bps : t -> int -> int

val addr : t -> int -> Unix.sockaddr
(** Resolved UDP address of a node. Accepts dotted quads and hostnames.
    @raise Failure if the hostname cannot be resolved. *)
