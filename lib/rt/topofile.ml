type node = { host : string; port : int }
type link = { a : int; b : int; metric_ms : int; mbps : int }
type t = { nodes : node array; links : link array }

let ( let* ) = Result.bind

let err lineno fmt =
  Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt

let int_field lineno what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> err lineno "%s: not an integer: %S" what s

let parse_host_port lineno s =
  (* host:port, with the port after the *last* colon so bracketless IPv6
     hosts at least fail with a sensible message. *)
  match String.rindex_opt s ':' with
  | None -> err lineno "expected host:port, got %S" s
  | Some i ->
    let host = String.sub s 0 i in
    let* port =
      int_field lineno "port" (String.sub s (i + 1) (String.length s - i - 1))
    in
    if host = "" then err lineno "empty host in %S" s
    else if port < 1 || port > 0xffff then err lineno "port %d out of range" port
    else Ok { host; port }

let parse text =
  let lines = String.split_on_char '\n' text in
  let strip line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    String.trim line
  in
  let rec go lineno nodes links = function
    | [] -> Ok (List.rev nodes, List.rev links)
    | line :: rest -> (
      match String.split_on_char ' ' (strip line) |> List.filter (( <> ) "") with
      | [] -> go (lineno + 1) nodes links rest
      | "node" :: id :: addr :: [] ->
        let* id = int_field lineno "node id" id in
        let* nd = parse_host_port lineno addr in
        if List.mem_assoc id nodes then err lineno "duplicate node %d" id
        else go (lineno + 1) ((id, nd) :: nodes) links rest
      | "link" :: fields -> (
        let with_link a b metric_ms mbps =
          let* a = int_field lineno "link endpoint" a in
          let* b = int_field lineno "link endpoint" b in
          let* metric_ms = int_field lineno "metric" metric_ms in
          let* mbps = int_field lineno "bandwidth" mbps in
          if a = b then err lineno "self-loop on node %d" a
          else if metric_ms < 1 then err lineno "metric must be positive"
          else if mbps < 1 then err lineno "bandwidth must be positive"
          else go (lineno + 1) nodes ({ a; b; metric_ms; mbps } :: links) rest
        in
        match fields with
        | [ a; b ] -> with_link a b "10" "100"
        | [ a; b; m ] -> with_link a b m "100"
        | [ a; b; m; bw ] -> with_link a b m bw
        | _ -> err lineno "link takes 2-4 fields")
      | d :: _ -> err lineno "unknown directive %S" d)
  in
  let* nodes, links = go 1 [] [] lines in
  let n = List.length nodes in
  if n = 0 then Error "no nodes"
  else
    let arr = Array.make n { host = ""; port = 0 } in
    let* () =
      List.fold_left
        (fun acc (id, nd) ->
          let* () = acc in
          if id < 0 || id >= n then
            Error
              (Printf.sprintf "node ids must be 0..%d (contiguous); got %d"
                 (n - 1) id)
          else begin
            arr.(id) <- nd;
            Ok ()
          end)
        (Ok ()) nodes
    in
    let* () =
      List.fold_left
        (fun acc { a; b; _ } ->
          let* () = acc in
          if a < 0 || a >= n || b < 0 || b >= n then
            Error (Printf.sprintf "link %d-%d names an unknown node" a b)
          else Ok ())
        (Ok ()) links
    in
    let seen = Hashtbl.create 16 in
    let* () =
      List.fold_left
        (fun acc { a; b; _ } ->
          let* () = acc in
          let key = (min a b, max a b) in
          if Hashtbl.mem seen key then
            Error (Printf.sprintf "duplicate link %d-%d" a b)
          else begin
            Hashtbl.add seen key ();
            Ok ()
          end)
        (Ok ()) links
    in
    Ok { nodes = arr; links = Array.of_list links }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> (
    match parse text with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e

let graph t =
  let g = Strovl_topo.Graph.create ~n:(Array.length t.nodes) in
  Array.iter
    (fun { a; b; _ } -> ignore (Strovl_topo.Graph.add_link g a b))
    t.links;
  g

let metric t l = Strovl_sim.Time.ms t.links.(l).metric_ms
let bandwidth_bps t l = t.links.(l).mbps * 1_000_000

let addr t id =
  let { host; port } = t.nodes.(id) in
  let inet =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        failwith (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))
  in
  Unix.ADDR_INET (inet, port)
