(** One live overlay daemon: a {!Strovl.Node} wired to a real UDP socket.

    This is {!Strovl.Net}'s role under the wall-clock runtime — the glue
    between the transport seam and the wire. Each incident overlay link is
    attached through {!Strovl.Transport} with an [xmit] that frames the
    message as a [Dg_msg] datagram and sends it to the peer daemon's
    address from the shared topology file; inbound datagrams are decoded,
    checked against the topology (the named link must be incident and the
    claimed source must be its far end), and dispatched into
    [Node.receive]. Session datagrams implement the client protocol of
    {!Strovl.Wire.Session}.

    The protocol stack itself — hello, LSUs, probes, routing, the five
    link service classes, dedup, delivery — is exactly the code the
    simulator runs; nothing here reimplements any of it. *)

type t

val create :
  ?config:Strovl.Node.config ->
  rt:Runtime.t ->
  topo:Topofile.t ->
  id:int ->
  unit ->
  t
(** Binds this node's UDP address from the topology file and builds the
    node with the file's graph and metrics. Raises [Unix.Unix_error] if
    the address is taken. *)

val node : t -> Strovl.Node.t
val id : t -> int

val port : t -> int
(** Actually-bound UDP port (differs from the file only when it said 0). *)

val start : t -> unit
(** Starts the protocol stack (hello, LSU refresh, probes per config) and
    registers the socket with the runtime's select loop. *)

val close : t -> unit
(** Stops the node in place ({!Strovl.Node.stop}), detaches from the
    runtime and closes the socket. The runtime and other hosts on it keep
    running — this is how a test kills one daemon of an in-process
    overlay. Idempotent. *)

val stats_json : t -> string
(** One-line JSON snapshot: node id, engine clock, forwarding counters,
    live session count. Also what a [Stats_req] session frame returns. *)
