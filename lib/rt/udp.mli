(** Non-blocking UDP sockets for the overlay daemons.

    One socket per overlay node. Everything is tolerant of the loopback
    quirks a kill-one-daemon test exercises: sends into a dead port
    (ICMP port unreachable surfaces as [ECONNREFUSED] on Linux) and reads
    that race with readiness are swallowed, because UDP gives no delivery
    promise the protocols don't already handle — the hello protocol and
    the link services own loss. *)

type t

val bind : host:string -> port:int -> t
(** Bound, non-blocking, [SO_REUSEADDR] socket. [port = 0] asks the kernel
    for an ephemeral port (see {!port}). *)

val fd : t -> Unix.file_descr
(** For [select]/{!Runtime.watch}. *)

val port : t -> int
(** The actually-bound local port. *)

val sendto : t -> Unix.sockaddr -> string -> bool
(** One datagram. [false] when the kernel refused without prejudice
    (buffer full, or a previous send to this peer bounced) — UDP loss,
    not an error. Raises on real misuse (bad fd, message too long). *)

val recvfrom : t -> (string * Unix.sockaddr) option
(** One datagram, or [None] when nothing is ready (or a bounced-send
    [ECONNREFUSED] notification was pending instead of data). *)

val drain : t -> f:(string -> Unix.sockaddr -> unit) -> unit
(** Reads until the socket would block, passing each datagram to [f]. *)

val close : t -> unit
(** Idempotent. *)
