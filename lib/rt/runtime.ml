open Strovl_sim

type t = {
  engine : Engine.t;
  mutable watches : (Unix.file_descr * (unit -> unit)) list;
  mutable stopping : bool;
  max_sleep : Time.t;
}

let create ?(seed = 1L) ?(max_sleep = Time.ms 100) () =
  if max_sleep < 1 then invalid_arg "Runtime.create: max_sleep must be positive";
  let engine = Engine.create ~seed () in
  (* Fast-forward virtual time to the monotonic epoch: from here on,
     Engine.now is wall-clock µs. *)
  Engine.run ~until:(Rt_clock.now_us ()) engine;
  { engine; watches = []; stopping = false; max_sleep }

let engine t = t.engine
let now t = Engine.now t.engine

let unwatch t fd = t.watches <- List.filter (fun (f, _) -> f <> fd) t.watches

let watch t fd callback =
  unwatch t fd;
  t.watches <- t.watches @ [ (fd, callback) ]

let stop t = t.stopping <- true

let step t ~deadline =
  let wall = Rt_clock.now_us () in
  Engine.run ~until:(Time.min wall deadline) t.engine;
  let horizon =
    match Engine.next_event_time t.engine with
    | Some at -> Time.min at deadline
    | None -> deadline
  in
  let sleep = Time.min t.max_sleep (Time.sub horizon (Rt_clock.now_us ())) in
  if sleep > 0 || t.watches <> [] then begin
    let fds = List.map fst t.watches in
    match Unix.select fds [] [] (float_of_int (max 0 sleep) /. 1e6) with
    | readable, _, _ ->
      List.iter
        (fun fd ->
          (* Re-lookup: an earlier callback this round may have unwatched
             (e.g. a daemon closing its socket on a Close frame). *)
          match List.assoc_opt fd t.watches with
          | Some callback -> callback ()
          | None -> ())
        readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  end

let run_until t deadline =
  t.stopping <- false;
  while (not t.stopping) && Rt_clock.now_us () < deadline do
    step t ~deadline
  done;
  (* Land the engine exactly on the deadline (when it was finite and we
     weren't stopped early) so back-to-back run_for calls tile cleanly. *)
  if not t.stopping then
    Engine.run ~until:(Time.min deadline (Rt_clock.now_us ())) t.engine

let run_for t dur = run_until t (Time.add (Rt_clock.now_us ()) dur)
let run t = run_until t Time.infinity

module Sched = struct
  type nonrec t = t

  type handle = Engine.handle

  let now = now
  let schedule t ~delay f = Engine.schedule t.engine ~delay f
  let schedule_at t ~at f = Engine.schedule_at t.engine ~at f
  let cancel t h = Engine.cancel t.engine h
  let is_pending t h = Engine.is_pending t.engine h
  let pending_events t = Engine.pending_events t.engine
end
