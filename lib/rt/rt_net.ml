open Strovl
module Metrics = Strovl_obs.Metrics

type t = {
  rt : Runtime.t;
  topo : Topofile.t;
  me : int;
  node : Node.t;
  sock : Udp.t;
  peer_of_link : int option array;
      (** [peer_of_link.(l)] is the far end of link [l] iff [l] is incident
          to this node — the validity check for inbound [Dg_msg]s *)
  peer_addr : Unix.sockaddr option array;
  sessions : (int, Unix.sockaddr) Hashtbl.t;  (** sport -> client *)
  m_rx : Metrics.Counter.t;
  m_tx : Metrics.Counter.t;
  m_bad : Metrics.Counter.t;  (** undecodable datagrams *)
  m_misdirected : Metrics.Counter.t;
      (** well-formed but wrong: unknown/non-incident link, source not the
          link's far end, or a daemon-bound-only session frame *)
  mutable closed : bool;
}

let bindable_host host =
  (* Bind to the concrete IP when the file gives one; for hostnames bind
     any-address (the name is for *peers* to find us). *)
  match Unix.inet_addr_of_string host with
  | _ -> host
  | exception Failure _ -> ""

let send_session t addr frame =
  Metrics.Counter.incr t.m_tx;
  ignore (Udp.sendto t.sock addr (Wire.encode_datagram (Wire.Dg_session frame)))

let deliver t sport pkt =
  match Hashtbl.find_opt t.sessions sport with
  | Some addr ->
    send_session t addr
      (Wire.Session.Deliver { sport; at = Runtime.now t.rt; pkt })
  | None -> ()

let stats_json t =
  let c = Node.counters t.node in
  Printf.sprintf
    {|{"node":%d,"now_us":%d,"forwarded":%d,"delivered":%d,"dropped_no_route":%d,"dropped_ttl":%d,"dropped_auth":%d,"dropped_dup":%d,"dropped_backpressure":%d,"dropped_overload":%d,"lsu_floods":%d,"group_floods":%d,"rx_datagrams":%d,"tx_datagrams":%d,"bad_datagrams":%d,"misdirected":%d,"sessions":%d}|}
    t.me (Runtime.now t.rt) c.Node.forwarded c.Node.delivered
    c.Node.dropped_no_route c.Node.dropped_ttl c.Node.dropped_auth
    c.Node.dropped_dup c.Node.dropped_backpressure c.Node.dropped_overload
    c.Node.lsu_floods c.Node.group_floods
    (Metrics.Counter.value t.m_rx)
    (Metrics.Counter.value t.m_tx)
    (Metrics.Counter.value t.m_bad)
    (Metrics.Counter.value t.m_misdirected)
    (Hashtbl.length t.sessions)

let handle_session t frame from =
  match frame with
  | Wire.Session.Open { sport } ->
    if not (Hashtbl.mem t.sessions sport) then
      Node.register_session t.node ~port:sport ~deliver:(deliver t sport);
    Hashtbl.replace t.sessions sport from;
    send_session t from (Wire.Session.Open_ok { node = t.me; sport })
  | Join { group; sport } -> Node.join_group t.node ~group ~port:sport
  | Leave { group; sport } -> Node.leave_group t.node ~group ~port:sport
  | Send { sport; dest; dport; service; seq; bytes; tag } ->
    let flow =
      { Packet.f_src = t.me; f_sport = sport; f_dest = dest; f_dport = dport }
    in
    let pkt =
      Packet.make ~flow ~routing:Packet.Link_state ~service ~seq
        ~sent_at:(Runtime.now t.rt) ~bytes ~tag ()
    in
    let accepted = Node.originate t.node pkt in
    send_session t from (Wire.Session.Sent { sport; seq; accepted })
  | Stats_req _ -> send_session t from (Wire.Session.Stats { json = stats_json t })
  | Close { sport } ->
    if Hashtbl.mem t.sessions sport then begin
      Hashtbl.remove t.sessions sport;
      Node.unregister_session t.node ~port:sport
    end
  | Open_ok _ | Sent _ | Deliver _ | Stats _ ->
    (* client-bound frames have no business arriving at a daemon *)
    Metrics.Counter.incr t.m_misdirected

let handle_datagram t data from =
  Metrics.Counter.incr t.m_rx;
  match Wire.decode_datagram data with
  | Error _ -> Metrics.Counter.incr t.m_bad
  | Ok (Wire.Dg_msg { src; link; msg }) -> (
    match
      if link >= 0 && link < Array.length t.peer_of_link then
        t.peer_of_link.(link)
      else None
    with
    | Some peer when peer = src -> Node.receive t.node ~link msg
    | _ -> Metrics.Counter.incr t.m_misdirected)
  | Ok (Wire.Dg_session frame) -> handle_session t frame from

let create ?config ~rt ~topo ~id () =
  let graph = Topofile.graph topo in
  let node =
    Node.create ?config ~engine:(Runtime.engine rt) ~graph ~id
      ~metric:(Topofile.metric topo) ()
  in
  let { Topofile.host; port } = topo.Topofile.nodes.(id) in
  let sock = Udp.bind ~host:(bindable_host host) ~port in
  let nlinks = Array.length topo.Topofile.links in
  let labels = [ ("node", string_of_int id) ] in
  let t =
    {
      rt;
      topo;
      me = id;
      node;
      sock;
      peer_of_link = Array.make nlinks None;
      peer_addr = Array.make nlinks None;
      sessions = Hashtbl.create 8;
      m_rx = Metrics.counter ~labels "strovl_rt_rx_datagrams_total";
      m_tx = Metrics.counter ~labels "strovl_rt_tx_datagrams_total";
      m_bad = Metrics.counter ~labels "strovl_rt_bad_datagrams_total";
      m_misdirected = Metrics.counter ~labels "strovl_rt_misdirected_total";
      closed = false;
    }
  in
  List.iter
    (fun link ->
      let peer = Strovl_topo.Graph.other_end graph link id in
      t.peer_of_link.(link) <- Some peer;
      t.peer_addr.(link) <- Some (Topofile.addr topo peer);
      Transport.attach node
        {
          Transport.ep_link = link;
          ep_peer = peer;
          ep_bandwidth_bps = Topofile.bandwidth_bps topo link;
          ep_xmit =
            (fun msg ->
              if not t.closed then begin
                Metrics.Counter.incr t.m_tx;
                let addr =
                  match t.peer_addr.(link) with
                  | Some a -> a
                  | None -> assert false
                in
                ignore
                  (Udp.sendto t.sock addr
                     (Wire.encode_datagram
                        (Wire.Dg_msg { src = id; link; msg })))
              end);
        })
    (Strovl_topo.Graph.incident graph id);
  t

let node t = t.node
let id t = t.me
let port t = Udp.port t.sock

let start t =
  Node.start t.node;
  Runtime.watch t.rt (Udp.fd t.sock) (fun () ->
      Udp.drain t.sock ~f:(handle_datagram t))

let close t =
  if not t.closed then begin
    t.closed <- true;
    Node.stop t.node;
    Runtime.unwatch t.rt (Udp.fd t.sock);
    Udp.close t.sock
  end
