(** The wall-clock event runtime.

    Runs the identical protocol stack the simulator runs — same
    {!Strovl_sim.Engine} event queue, same scheduling interface
    ({!Strovl_sim.Engine_intf.S}), same handles — but driven by
    CLOCK_MONOTONIC and a [select] loop over non-blocking UDP sockets
    instead of by virtual-time leaps. The trick is that [Engine.run
    ~until] advances the clock to [until] even when no event falls in the
    window: the driver repeatedly catches the engine up to
    [Rt_clock.now_us ()], then sleeps in [select] until the earliest
    pending timer ({!Strovl_sim.Engine.next_event_time}) or a readable
    socket, whichever comes first. Protocol code cannot tell the
    difference; there is no second implementation of timers to drift from
    the simulated one.

    At creation the engine clock is fast-forwarded to the monotonic epoch,
    so [Engine.now] readings (and packet [sent_at] stamps) are monotonic
    microseconds comparable across every process on the host.

    Single-threaded by design, like the simulator: socket callbacks and
    timer events interleave on one domain, so protocol code keeps its
    no-locks discipline. *)

type t

val create : ?seed:int64 -> ?max_sleep:Strovl_sim.Time.t -> unit -> t
(** [max_sleep] (default 100 ms) bounds one [select] sleep so stop
    requests and signal-driven shutdown stay responsive even when the
    engine is idle. *)

val engine : t -> Strovl_sim.Engine.t
(** The underlying engine — what protocol components are wired to. *)

val now : t -> Strovl_sim.Time.t
(** [Engine.now]: monotonic µs, advanced on every loop iteration. *)

val watch : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Registers a readiness callback: whenever the descriptor selects
    readable, the callback runs (it should drain the socket — level
    triggered). One callback per descriptor; re-registering replaces. *)

val unwatch : t -> Unix.file_descr -> unit

val step : t -> deadline:Strovl_sim.Time.t -> unit
(** One driver iteration: catch the engine up to the wall clock, then
    sleep in [select] (bounded by the next engine timer, [deadline], and
    [max_sleep]) and fire readable callbacks. *)

val run_for : t -> Strovl_sim.Time.t -> unit
(** Drives the loop for a wall-clock duration (or until {!stop}). *)

val run : t -> unit
(** Drives the loop until {!stop} is called — from a socket callback, an
    engine event, or a signal handler. *)

val stop : t -> unit
(** Makes the innermost [run]/[run_for] return after the current
    iteration. Safe to call from a signal handler. *)

(** The scheduling interface, satisfied by delegation to the engine —
    the compile-time witness that simulator components and real daemons
    program against the same contract. *)
module Sched : Strovl_sim.Engine_intf.S with type t = t
