(* Per-run observability context control.

   Every observability registry (Metrics, Trace, Series, Health, Audit) is
   domain-local, so two runs on two domains are isolated by construction.
   Two runs scheduled one after the other on the SAME pool domain are not:
   the second would inherit the first's metric handles, health EWMAs and
   trace arming. [fresh] restores this domain's observability state to
   what a newly spawned domain sees, so a run produces byte-identical
   tables and trace digests no matter which domain executes it or what ran
   there before — the determinism contract behind `-j N`. *)

let fresh () =
  Audit.reset ();
  Trace.disable ();
  Series.reset ();
  Health.reset ();
  Metrics.purge ()

let isolate f =
  fresh ();
  Fun.protect ~finally:fresh f
