(** Export and analysis of the flight recorder and the metrics registry:
    JSONL dumps for mechanical diffing, and pretty-table summaries (top
    drop reasons, per-link utilization, per-flow hop-latency breakdown)
    for humans. *)

val json_str : string -> string
(** Escapes and double-quotes a string for inclusion in hand-rolled JSON
    (shared with {!Series}; the container has no JSON library). *)

val record_json : Trace.record -> string
(** One trace record as a single-line JSON object. *)

val jsonl : out_channel -> unit
(** Every retained trace record, one JSON object per line, chronological. *)

val drop_counts : unit -> (string * int) list
(** Drop events in the trace grouped by reason, most frequent first. *)

val retransmit_count : unit -> int
(** Retransmit events retained in the trace. *)

val path_of : flow:Trace.flow_id -> seq:int -> Trace.record list
(** The causal path of one packet: every retained event for (flow, seq) in
    chronological order, plus the flow's flow-level drops. *)

val sample_packet : unit -> (Trace.flow_id * int) option
(** A (flow, seq) worth looking at: prefers a packet that was both
    retransmitted and delivered, then any delivered packet, then any packet
    event at all. [None] on an empty trace. *)

val flow_summaries :
  unit -> (Trace.flow_id * (int * int * int * int * float)) list
(** Per flow: (enqueued, forwards, delivered, retransmits, mean hop latency
    in µs derived from consecutive per-packet forward timestamps). *)

val links_table : unit -> (string * int * int * int) list
(** Per overlay link (from [strovl_link_*] metrics): (label, packets,
    bytes, queue drops), sorted by bytes descending. *)

val summary_json : unit -> string
(** Metrics dump + drop reasons as one JSON object. *)

val print_summary : Format.formatter -> unit
(** Human summary: trace occupancy, top drop reasons, retransmits,
    per-link utilization, per-flow table. *)

val print_path : Format.formatter -> flow:Trace.flow_id -> seq:int -> unit
(** Pretty-prints [path_of] with one record per line. *)
