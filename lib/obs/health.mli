(** Per-(node, link) link-health estimates: EWMA-smoothed RTT, jitter and
    per-direction loss, plus a liveness verdict, maintained by the probe
    link protocol ([Strovl.Probe_link]) and read by monitoring tools and —
    behind an off-by-default flag — by connectivity-graph cost
    advertisement. The registry is domain-local, like {!Metrics}. *)

type t = {
  h_node : int;  (** observing endpoint *)
  h_link : int;  (** overlay link id *)
  mutable rtt_us : int;  (** EWMA round-trip time (gain 1/8); 0 = no sample *)
  mutable jitter_us : int;  (** EWMA of |RTT deviation| (gain 1/4) *)
  mutable loss_pm : int;  (** per-direction loss estimate, permille *)
  mutable alive : bool;  (** k-missed-probes liveness verdict *)
  mutable sent : int;  (** probes sent *)
  mutable acked : int;  (** probe acks received *)
  mutable rtt_samples : int;
  mutable loss_folds : int;
  s_rtt : Series.ch;  (** [strovl_health_rtt_us{link,node}] *)
  s_loss : Series.ch;  (** [strovl_health_loss_pm{link,node}] *)
}

val get : node:int -> link:int -> t
(** Finds or creates the entry for one side of one overlay link. *)

val fresh : node:int -> link:int -> t
(** Like [get] but discards any stale entry first — probe protocol
    instances use this so a new run does not inherit a previous run's
    EWMAs (the registry outlives individual runs on its domain). *)

val find : node:int -> link:int -> t option
val all : unit -> t list
(** Every entry, sorted by (link, node). *)

val reset : unit -> unit
(** Forgets every entry (between runs / for test isolation). *)

val note_sent : t -> unit
val note_acked : t -> unit

val observe_rtt : t -> int -> unit
(** Folds one round-trip sample (µs) into the RTT/jitter EWMAs and the
    [strovl_health_rtt_us] series. *)

val fold_loss : t -> sent:int -> acked:int -> unit
(** Folds one probe window: [acked]/[sent] estimates round-trip survival
    (1-p)², so the per-direction sample is 1 - sqrt(acked/sent), smoothed
    with gain 1/2 into [loss_pm]. *)

val set_alive : t -> bool -> unit

val expected_latency_us : t -> int
(** One-way latency × retry expansion 1/(1-p)² (§IV): the routing cost a
    probe-driven connectivity graph would advertise for this link. *)

val json : t -> string
(** The entry as one flat JSON object. *)
