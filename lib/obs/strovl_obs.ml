(** Observability for the overlay: {!Metrics} (cheap always-available
    labelled counters/gauges/bounded histograms), {!Trace} (an on-demand
    bounded flight recorder of typed per-packet events), and {!Export}
    (JSONL dumps and pretty summaries). Sits below every other library so
    the simulation substrate, the underlay, and the protocol stack can all
    report into one place.

    Every registry is domain-local, so simulations running concurrently on
    separate domains observe into fully separate state; {!Ctx} resets a
    domain's state between successive runs that share it. *)

module Metrics = Metrics
module Trace = Trace
module Export = Export
module Series = Series
module Health = Health
module Audit = Audit
module Ctx = Ctx
