(* Per-(node, link) link-health estimates fed by the probe protocol in
   lib/core. Smoothing mirrors the hello protocol's: RTT is an EWMA with
   gain 1/8, jitter an EWMA (gain 1/4) of the absolute deviation from the
   smoothed RTT (RFC 6298 style), and loss folds windowed probe/ack counts
   into a permille EWMA with gain 1/2. Probes measure a round trip, so an
   ack ratio r estimates (1-p)^2 for per-direction loss p; the fold takes
   the square root before smoothing. *)

type t = {
  h_node : int;
  h_link : int;
  mutable rtt_us : int;
  mutable jitter_us : int;
  mutable loss_pm : int;  (* per-direction, permille *)
  mutable alive : bool;
  mutable sent : int;
  mutable acked : int;
  mutable rtt_samples : int;
  mutable loss_folds : int;
  s_rtt : Series.ch;
  s_loss : Series.ch;
}

(* The registry is domain-local, like every observability registry: each
   parallel run's probe protocol instances feed their own tables. *)
let dls : (int * int, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get dls

let get ~node ~link =
  let registry = registry () in
  match Hashtbl.find_opt registry (node, link) with
  | Some h -> h
  | None ->
    let labels =
      [ ("link", string_of_int link); ("node", string_of_int node) ]
    in
    let h =
      {
        h_node = node;
        h_link = link;
        rtt_us = 0;
        jitter_us = 0;
        loss_pm = 0;
        alive = true;
        sent = 0;
        acked = 0;
        rtt_samples = 0;
        loss_folds = 0;
        s_rtt = Series.channel ~labels "strovl_health_rtt_us";
        s_loss = Series.channel ~labels "strovl_health_loss_pm";
      }
    in
    Hashtbl.replace registry (node, link) h;
    h

let fresh ~node ~link =
  Hashtbl.remove (registry ()) (node, link);
  get ~node ~link

let find ~node ~link = Hashtbl.find_opt (registry ()) (node, link)

let all () =
  Hashtbl.fold (fun _ h acc -> h :: acc) (registry ()) []
  |> List.sort (fun a b -> compare (a.h_link, a.h_node) (b.h_link, b.h_node))

let reset () = Hashtbl.reset (registry ())

let note_sent h = h.sent <- h.sent + 1
let note_acked h = h.acked <- h.acked + 1

let observe_rtt h sample =
  if h.rtt_samples = 0 then h.rtt_us <- sample
  else begin
    let dev = abs (sample - h.rtt_us) in
    h.jitter_us <- ((3 * h.jitter_us) + dev) / 4;
    h.rtt_us <- ((7 * h.rtt_us) + sample) / 8
  end;
  h.rtt_samples <- h.rtt_samples + 1;
  if Series.armed () then Series.add h.s_rtt h.rtt_us

let fold_loss h ~sent ~acked =
  if sent > 0 then begin
    let acked = min acked sent in
    let ratio = float_of_int acked /. float_of_int sent in
    (* round-trip survival is (1-p)^2 for per-direction loss p *)
    let sample_pm =
      int_of_float (Float.round (1000. *. (1. -. Float.sqrt ratio)))
    in
    if h.loss_folds = 0 then h.loss_pm <- sample_pm
    else h.loss_pm <- (h.loss_pm + sample_pm) / 2;
    h.loss_folds <- h.loss_folds + 1;
    if Series.armed () then Series.add h.s_loss h.loss_pm
  end

let set_alive h alive = h.alive <- alive

(* Expected latency of one hop under hop-by-hop recovery: one-way latency
   times the expected number of transmissions 1/(1-p)^2 (paper §IV) —
   same retry expansion Conn_graph.effective_metric applies to advertised
   costs. *)
let expected_latency_us h =
  let one_way = max 1 (h.rtt_us / 2) in
  let q = 1000 - min 999 (max 0 h.loss_pm) in
  one_way * 1_000_000 / (q * q)

let json h =
  Printf.sprintf
    "{\"node\":%d,\"link\":%d,\"rtt_us\":%d,\"jitter_us\":%d,\"loss_pm\":%d,\
     \"alive\":%b,\"sent\":%d,\"acked\":%d,\"expected_latency_us\":%d}"
    h.h_node h.h_link h.rtt_us h.jitter_us h.loss_pm h.alive h.sent h.acked
    (expected_latency_us h)
