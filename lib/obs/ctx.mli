(** Per-run observability context control.

    All observability state ({!Metrics}, {!Trace}, {!Series}, {!Health},
    {!Audit}) is domain-local; [Ctx] additionally isolates successive runs
    that share a domain, which is what makes a pool-scheduled run's output
    independent of scheduling. *)

val fresh : unit -> unit
(** Resets this domain's entire observability state to pristine: auditor
    disarmed and emptied, recorder disarmed, series and health registries
    forgotten, metrics registry purged (and re-enabled). *)

val isolate : (unit -> 'a) -> 'a
(** [isolate f] runs [f] between two [fresh] calls (the trailing one also
    on exceptional exit), so [f] neither sees nor leaves behind any
    observability state on this domain. *)
