(** Online invariant auditor: a streaming trace consumer (installed as the
    {!Trace} sink) that checks the overlay's legal-state predicates while
    the simulation runs, in the spirit of self-stabilizing-overlay
    detectors.

    Rules (each with its deliberate exemptions, documented in the
    implementation):

    - ["dup-deliver"] — a unicast (flow, seq) reaches a session at most
      once (post-reroute replays are exempt: the session layer dedupes
      those by design).
    - ["fwd-loop"] — no node forwards the same non-replay (flow, seq)
      twice on the same link.
    - ["recovery-budget"] — every reliable-link NACK is answered by a
      retransmission on that link within the budget. Links that ever
      flapped are exempt (rerouting, not ARQ, covers stranded gaps), and
      because NACK/retransmission pairing is not observable across sides
      (lseq numbering is per-direction, answers cross in flight), an
      expired NACK is only a violation if the link saw {e no}
      retransmission at all since it — a fully silent sender.
    - ["reroute-budget"] — after a link-down report, the origin's fresher
      LSU reaches the overlay within the budget (the sub-second-reroute
      claim as a predicate). At expiry only {e flood-active} nodes are
      required — nodes that applied some LSU after the down report; a
      node that applied nothing since then was itself unreachable. An
      origin heard by nobody is treated as partitioned (e.g. a crashed
      node still running local timers), not late.
    - ["fec-ghost"] — FEC never "recovers" a packet the node already
      processed.

    The auditor requires the recorder to be armed ([Trace.enable]); it
    sees only events emitted while it is armed. State is bounded
    ([max_tracked]) so it can ride along in soaks. A sim-time regression
    in the stream means a new scenario run started inside one audited
    span (experiments build several fresh sims); packet-identity tables
    are reset at that epoch boundary so identities cannot collide across
    runs. *)

type violation = {
  v_ts : int;  (** sim-time at which the violation was detected *)
  v_rule : string;
  v_node : int;
  v_flow : Trace.flow_id;  (** [Trace.no_flow] when no packet context *)
  v_seq : int;
  v_detail : string;
}

type config = {
  nnodes : int option;
      (** overlay population for the reroute rule; [None] infers it from
          the stream (every node that ever emitted an event) *)
  recovery_budget_us : int;  (** default 2s *)
  reroute_budget_us : int;  (** default 1s *)
  max_tracked : int;  (** per-packet table key bound; default 2^16 *)
}

val default_config : config

val arm : ?config:config -> unit -> unit
(** Resets auditor state and installs it as the trace sink. *)

val disarm : unit -> unit
(** Removes the sink; collected violations stay readable. *)

val armed : unit -> bool

val reset : unit -> unit
(** Disarms and forgets all collected state on this domain (for per-run
    isolation; see {!Ctx}). *)

val feed : Trace.record -> unit
(** The sink itself — public so tests can drive the auditor with
    hand-built (or deliberately broken) event streams. *)

val finish : unit -> violation list
(** Final sweep at the current sim-time (expiring overdue budgets), then
    every violation in detection order. Pending budgets that have not yet
    elapsed are not flagged. *)

val violations : unit -> violation list
(** Violations so far, in detection order, without sweeping. *)

val count : unit -> int
val distinct_rules : unit -> string list

val reroute_latencies : unit -> int list
(** Propagation time (µs) of each link-down LSU that did reach the whole
    overlay, in resolution order. *)

val checked : ?config:config -> label:string -> (unit -> 'a) -> 'a
(** Runs [f] with the auditor riding along: arms it (enabling tracing for
    the duration if it was off), and reports violations on stderr and in
    the [strovl_audit_violations_total] counter. If an auditor is already
    armed, [f] simply runs under the outer collection. *)

val pp_violation : Format.formatter -> violation -> unit
val violation_json : violation -> string
