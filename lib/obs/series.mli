(** Windowed time-series: bounded rings of sim-time-bucketed snapshots.

    Where {!Metrics} answers "how many, in total" and {!Trace} answers
    "what happened to this packet", [Series] answers "how did it evolve":
    each channel accumulates samples into fixed-width sim-time buckets
    (window-aligned, so all channels share bucket edges) and retains the
    most recent [capacity] closed buckets in a ring. Off by default; when
    off, [add] is one [ref] check, so instrumentation sites can stay
    armed through soaks.

    Channels and the armed flag are {e domain-local}: each parallel run
    owns its own registry, and a channel must be used on the domain that
    created it. *)

type labels = (string * string) list

type point = {
  p_t0 : int;  (** bucket start, sim-time µs (multiple of the window) *)
  p_n : int;  (** samples folded into this bucket *)
  p_sum : int;
  p_max : int;
}

type ch
(** A channel: one named, labelled series. *)

val armed : unit -> bool
(** Whether this domain's sampling is armed. Hot sites should guard with
    [if Series.armed () then ...] before computing sample values. *)

val enable : ?window:int -> ?capacity:int -> unit -> unit
(** Arms sampling and clears every channel's data. [window] is the bucket
    width in sim-µs (default 100ms); [capacity] the closed buckets
    retained per channel (default 600 — a minute of sim-time at the
    default window). *)

val disable : unit -> unit
(** Disarms sampling; retained buckets stay readable. *)

val clear : unit -> unit
(** Empties every channel's buckets but keeps sampling armed. *)

val reset : unit -> unit
(** Disarms and forgets every channel (for test isolation). *)

val channel : ?labels:labels -> string -> ch
(** Finds or creates the channel for (name, labels). Cheap; safe to call
    at construction time even when sampling is off. Labels are stored
    sorted, so order does not matter for identity. *)

val add : ch -> int -> unit
(** Folds one sample into the current bucket (O(1); no-op when off). *)

val incr : ch -> unit
(** [add ch 1]. *)

val points : ch -> point list
(** Retained buckets, oldest first, including the still-open bucket. *)

val channels : unit -> ch list
(** Every channel with at least one bucket, sorted by (name, labels). *)

val name : ch -> string
val labels : ch -> labels
val mean : point -> float

val point_json : ch -> point -> string
(** One bucket as a flat JSON object (the JSONL line format). *)

val jsonl : out_channel -> unit
(** Every retained bucket of every channel, one JSON object per line:
    [{"series":name,"labels":{...},"t0":µs,"n":count,"sum":s,"max":m,
    "mean":s/n}]. *)
