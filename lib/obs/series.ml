(* Windowed time-series: each channel owns a bounded ring of sim-time
   buckets. The hot path (add/observe) is a handful of integer ops — no
   allocation unless a bucket boundary was crossed — so channels can stay
   armed through soaks. Buckets are aligned to multiples of the window so
   channels fed at different instants still share bucket edges.

   The registry, armed flag and window geometry are all domain-local (each
   parallel run samples into its own channels); a channel embeds its
   owning domain's state so [add] never touches domain-local storage. *)

type labels = (string * string) list

type point = { p_t0 : int; p_n : int; p_sum : int; p_max : int }

type state = {
  st_on : bool ref;
  mutable st_window : int;
  mutable st_cap : int;
  st_registry : (string * labels, ch) Hashtbl.t;
}

and ch = {
  ch_name : string;
  ch_labels : labels;
  ch_st : state;
  mutable buf : point array;
  mutable head : int; (* next write slot *)
  mutable filled : int;
  (* open bucket; cur_t0 = min_int means none *)
  mutable cur_t0 : int;
  mutable cur_n : int;
  mutable cur_sum : int;
  mutable cur_max : int;
}

let dls : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { st_on = ref false; st_window = 100_000; st_cap = 600;
        st_registry = Hashtbl.create 64 })

let state () = Domain.DLS.get dls
let armed () = !((state ()).st_on)

let reset_ch ch =
  ch.buf <- [||];
  ch.head <- 0;
  ch.filled <- 0;
  ch.cur_t0 <- min_int;
  ch.cur_n <- 0;
  ch.cur_sum <- 0;
  ch.cur_max <- min_int

let enable ?(window = 100_000) ?capacity:(cap = 600) () =
  if window < 1 then invalid_arg "Series.enable: window must be positive";
  if cap < 1 then invalid_arg "Series.enable: capacity must be positive";
  let st = state () in
  st.st_window <- window;
  st.st_cap <- cap;
  Hashtbl.iter (fun _ ch -> reset_ch ch) st.st_registry;
  st.st_on := true

let disable () = (state ()).st_on := false

let clear () = Hashtbl.iter (fun _ ch -> reset_ch ch) (state ()).st_registry

let reset () =
  let st = state () in
  st.st_on := false;
  Hashtbl.reset st.st_registry

let channel ?(labels = []) name =
  let st = state () in
  let labels = List.sort compare labels in
  let key = (name, labels) in
  match Hashtbl.find_opt st.st_registry key with
  | Some ch -> ch
  | None ->
    let ch =
      {
        ch_name = name;
        ch_labels = labels;
        ch_st = st;
        buf = [||];
        head = 0;
        filled = 0;
        cur_t0 = min_int;
        cur_n = 0;
        cur_sum = 0;
        cur_max = min_int;
      }
    in
    Hashtbl.replace st.st_registry key ch;
    ch

let flush ch =
  if ch.cur_t0 > min_int && ch.cur_n > 0 then begin
    if Array.length ch.buf = 0 then
      ch.buf <-
        Array.make ch.ch_st.st_cap { p_t0 = 0; p_n = 0; p_sum = 0; p_max = 0 };
    let cap = Array.length ch.buf in
    ch.buf.(ch.head) <-
      { p_t0 = ch.cur_t0; p_n = ch.cur_n; p_sum = ch.cur_sum; p_max = ch.cur_max };
    ch.head <- (ch.head + 1) mod cap;
    if ch.filled < cap then ch.filled <- ch.filled + 1
  end;
  ch.cur_t0 <- min_int;
  ch.cur_n <- 0;
  ch.cur_sum <- 0;
  ch.cur_max <- min_int

let add ch v =
  if !(ch.ch_st.st_on) then begin
    let t = Trace.now () in
    let t0 = t - (t mod ch.ch_st.st_window) in
    if ch.cur_t0 <> t0 then begin
      flush ch;
      ch.cur_t0 <- t0
    end;
    ch.cur_n <- ch.cur_n + 1;
    ch.cur_sum <- ch.cur_sum + v;
    if v > ch.cur_max then ch.cur_max <- v
  end

let incr ch = add ch 1

let points ch =
  let cap = Array.length ch.buf in
  let closed =
    if cap = 0 then []
    else begin
      let start = (ch.head - ch.filled + cap) mod cap in
      List.init ch.filled (fun i -> ch.buf.((start + i) mod cap))
    end
  in
  if ch.cur_t0 > min_int && ch.cur_n > 0 then
    closed
    @ [ { p_t0 = ch.cur_t0; p_n = ch.cur_n; p_sum = ch.cur_sum; p_max = ch.cur_max } ]
  else closed

let channels () =
  Hashtbl.fold (fun _ ch acc -> ch :: acc) (state ()).st_registry []
  |> List.filter (fun ch -> points ch <> [])
  |> List.sort (fun a b -> compare (a.ch_name, a.ch_labels) (b.ch_name, b.ch_labels))

let name ch = ch.ch_name
let labels ch = ch.ch_labels
let mean p = if p.p_n = 0 then 0. else float_of_int p.p_sum /. float_of_int p.p_n

let point_json ch p =
  Printf.sprintf
    "{\"series\":%s,\"labels\":{%s},\"t0\":%d,\"n\":%d,\"sum\":%d,\"max\":%d,\"mean\":%.3f}"
    (Export.json_str ch.ch_name)
    (String.concat ","
       (List.map
          (fun (k, v) -> Export.json_str k ^ ":" ^ Export.json_str v)
          ch.ch_labels))
    p.p_t0 p.p_n p.p_sum p.p_max (mean p)

let jsonl oc =
  List.iter
    (fun ch ->
      List.iter
        (fun p ->
          output_string oc (point_json ch p);
          output_char oc '\n')
        (points ch))
    (channels ())
