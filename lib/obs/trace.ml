type flow_id = { fi_src : int; fi_sport : int; fi_dst : int; fi_dport : int }

let no_flow = { fi_src = -1; fi_sport = -1; fi_dst = -1; fi_dport = -1 }

type reason =
  | No_route
  | Ttl
  | Auth
  | Dup
  | Backpressure
  | Overload
  | Queue_full
  | Priority_evict
  | Wire_loss

type event =
  | Enqueue
  | Forward of int
  | Drop of reason
  | Retransmit of int
  | Nack of int * int
  | Reroute of int * bool
  | Lsu_flood
  | Deliver
  | Fec_recover of int
  | Probe of int
  | Probe_verdict of int * bool
  | Lsu_apply of int
  | Forward_replay of int
  | Deliver_replay
  | Strike of int * int

type record = { ts : int; node : int; flow : flow_id; seq : int; ev : event }

let dummy = { ts = 0; node = -1; flow = no_flow; seq = -1; ev = Lsu_flood }

type ring = {
  buf : record array;
  mutable next : int; (* next write slot *)
  mutable filled : int; (* records retained, <= Array.length buf *)
  mutable emitted : int; (* records ever emitted *)
}

(* The recorder — ring, clock hook and streaming sink — is domain-local:
   each domain (one parallel run at a time) owns an independent flight
   recorder, so concurrently executing simulations record disjoint streams
   and per-run digests match a sequential run bit for bit. *)
type state = {
  mutable st_armed : bool;
  mutable st_ring : ring option;
  mutable st_clock : unit -> int;
  mutable st_sink : (record -> unit) option;
}

let dls : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { st_armed = false; st_ring = None; st_clock = (fun () -> 0);
        st_sink = None })

let state () = Domain.DLS.get dls

let armed () = (state ()).st_armed
let set_clock f = (state ()).st_clock <- f
let now () = (state ()).st_clock ()
let set_sink f = (state ()).st_sink <- Some f
let clear_sink () = (state ()).st_sink <- None

let enable ?(capacity = 1 lsl 18) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity must be positive";
  let st = state () in
  st.st_ring <-
    Some { buf = Array.make capacity dummy; next = 0; filled = 0; emitted = 0 };
  st.st_armed <- true

let disable () =
  let st = state () in
  st.st_armed <- false;
  st.st_ring <- None

let clear () =
  match (state ()).st_ring with
  | None -> ()
  | Some r ->
    r.next <- 0;
    r.filled <- 0;
    r.emitted <- 0

let emit ?(flow = no_flow) ?(seq = -1) ~node ev =
  let st = state () in
  match st.st_ring with
  | None -> ()
  | Some r ->
    let cap = Array.length r.buf in
    let rc = { ts = st.st_clock (); node; flow; seq; ev } in
    r.buf.(r.next) <- rc;
    r.next <- (r.next + 1) mod cap;
    if r.filled < cap then r.filled <- r.filled + 1;
    r.emitted <- r.emitted + 1;
    (match st.st_sink with None -> () | Some f -> f rc)

let length () = match (state ()).st_ring with None -> 0 | Some r -> r.filled
let total () = match (state ()).st_ring with None -> 0 | Some r -> r.emitted

let iter f =
  match (state ()).st_ring with
  | None -> ()
  | Some r ->
    let cap = Array.length r.buf in
    let start = (r.next - r.filled + cap) mod cap in
    for i = 0 to r.filled - 1 do
      f r.buf.((start + i) mod cap)
    done

let records () =
  let acc = ref [] in
  iter (fun rec_ -> acc := rec_ :: !acc);
  List.rev !acc

(* ------------------------------ digest ------------------------------- *)

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let mix h x =
  Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime

let reason_code = function
  | No_route -> 0
  | Ttl -> 1
  | Auth -> 2
  | Dup -> 3
  | Backpressure -> 4
  | Overload -> 5
  | Queue_full -> 6
  | Priority_evict -> 7
  | Wire_loss -> 8

let event_codes = function
  | Enqueue -> (0, 0, 0)
  | Forward l -> (1, l, 0)
  | Drop r -> (2, reason_code r, 0)
  | Retransmit l -> (3, l, 0)
  | Nack (l, n) -> (4, l, n)
  | Reroute (l, up) -> (5, l, if up then 1 else 0)
  | Lsu_flood -> (6, 0, 0)
  | Deliver -> (7, 0, 0)
  | Fec_recover l -> (8, l, 0)
  | Probe l -> (9, l, 0)
  | Probe_verdict (l, alive) -> (10, l, if alive then 1 else 0)
  | Lsu_apply origin -> (11, origin, 0)
  | Forward_replay l -> (12, l, 0)
  | Deliver_replay -> (13, 0, 0)
  | Strike (l, n) -> (14, l, n)

let digest () =
  let h = ref (mix fnv_offset (total ())) in
  iter (fun r ->
      let a, b, c = event_codes r.ev in
      let h' =
        List.fold_left mix !h
          [ r.ts; r.node; r.flow.fi_src; r.flow.fi_sport; r.flow.fi_dst;
            r.flow.fi_dport; r.seq; a; b; c ]
      in
      h := h');
  !h

(* ----------------------------- printing ------------------------------ *)

let reason_to_string = function
  | No_route -> "no-route"
  | Ttl -> "ttl"
  | Auth -> "auth"
  | Dup -> "dup"
  | Backpressure -> "backpressure"
  | Overload -> "overload"
  | Queue_full -> "queue-full"
  | Priority_evict -> "priority-evict"
  | Wire_loss -> "wire-loss"

let event_to_string = function
  | Enqueue -> "enqueue"
  | Forward l -> Printf.sprintf "forward(link %d)" l
  | Drop r -> Printf.sprintf "drop(%s)" (reason_to_string r)
  | Retransmit l -> Printf.sprintf "retransmit(link %d)" l
  | Nack (l, n) -> Printf.sprintf "nack(link %d, lseq %d)" l n
  | Reroute (l, up) ->
    Printf.sprintf "reroute(link %d %s)" l (if up then "up" else "down")
  | Lsu_flood -> "lsu-flood"
  | Deliver -> "deliver"
  | Fec_recover l -> Printf.sprintf "fec-recover(link %d)" l
  | Probe l -> Printf.sprintf "probe(link %d)" l
  | Probe_verdict (l, alive) ->
    Printf.sprintf "probe-verdict(link %d %s)" l (if alive then "alive" else "dead")
  | Lsu_apply origin -> Printf.sprintf "lsu-apply(origin %d)" origin
  | Forward_replay l -> Printf.sprintf "forward-replay(link %d)" l
  | Deliver_replay -> "deliver-replay"
  | Strike (l, n) -> Printf.sprintf "strike(link %d, lseq %d)" l n

let pp_record ppf r =
  if r.flow == no_flow || r.flow.fi_src < 0 then
    Format.fprintf ppf "%8dus node %-3d %s" r.ts r.node (event_to_string r.ev)
  else
    Format.fprintf ppf "%8dus node %-3d flow %d:%d->%d:%d seq %-5d %s" r.ts
      r.node r.flow.fi_src r.flow.fi_sport r.flow.fi_dst r.flow.fi_dport r.seq
      (event_to_string r.ev)
