type labels = (string * string) list

(* All registry state is domain-local: each domain (and therefore each
   parallel run executing on it) owns an independent registry, so N
   simulations on N domains never contend on — or leak counts into — each
   other's metrics. Handles embed their owning domain's [enabled] ref, so
   the hot-path update cost stays one dereference and a branch, exactly as
   with the old process-global flag. *)

module Counter = struct
  type t = { mutable v : int; on : bool ref }

  let incr c = if !(c.on) then c.v <- c.v + 1
  let add c k = if !(c.on) then c.v <- c.v + k
  let value c = c.v
end

module Gauge = struct
  type t = { mutable v : int; on : bool ref }

  let set g v = if !(g.on) then g.v <- v
  let value g = g.v
end

module Histogram = struct
  (* Log2 buckets: bucket i holds samples in [2^(i-1), 2^i), bucket 0 holds
     {0}. 63 buckets cover the whole non-negative int range in O(1) memory
     per histogram regardless of soak length. *)
  let nbuckets = 63

  type t = {
    counts : int array;
    mutable n : int;
    mutable total : int;
    mutable vmin : int;
    mutable vmax : int;
    on : bool ref;
  }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let i = ref 0 and v = ref v in
      while !v > 0 do
        incr i;
        v := !v lsr 1
      done;
      min !i (nbuckets - 1)
    end

  let observe h v =
    if !(h.on) then begin
      let v = Stdlib.max 0 v in
      h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
      h.n <- h.n + 1;
      h.total <- h.total + v;
      if h.n = 1 || v < h.vmin then h.vmin <- v;
      if v > h.vmax then h.vmax <- v
    end

  let count h = h.n
  let sum h = h.total
  let min h = if h.n = 0 then 0 else h.vmin
  let max h = h.vmax

  (* Geometric midpoint of bucket i's range as the representative value. *)
  let bucket_mid i =
    if i = 0 then 0.
    else begin
      let lo = float_of_int (1 lsl (i - 1)) in
      lo *. 1.5
    end

  let quantile h q =
    if h.n = 0 then 0.
    else begin
      let target = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int h.n))) in
      let acc = ref 0 and i = ref 0 and found = ref (-1) in
      while !found < 0 && !i < nbuckets do
        acc := !acc + h.counts.(!i);
        if !acc >= target then found := !i;
        incr i
      done;
      if !found < 0 then float_of_int h.vmax else bucket_mid !found
    end

  let buckets h =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if h.counts.(i) > 0 then acc := (1 lsl i, h.counts.(i)) :: !acc
    done;
    !acc

  let clear h =
    Array.fill h.counts 0 nbuckets 0;
    h.n <- 0;
    h.total <- 0;
    h.vmin <- 0;
    h.vmax <- 0
end

type item =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type state = {
  st_on : bool ref;
  st_registry : (string * labels, item) Hashtbl.t;
}

let dls : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { st_on = ref true; st_registry = Hashtbl.create 64 })

let state () = Domain.DLS.get dls

let enabled () = !((state ()).st_on)
let set_enabled v = (state ()).st_on := v

let normalize labels = List.sort compare labels

let get_or_create ~kind ~make name labels =
  let st = state () in
  let key = (name, normalize labels) in
  match Hashtbl.find_opt st.st_registry key with
  | Some item ->
    if not (kind item) then
      invalid_arg ("Metrics: " ^ name ^ " already registered with another kind");
    item
  | None ->
    (* Same name must keep one kind across label sets, so dumps stay
       coherent. *)
    Hashtbl.iter
      (fun (n, _) item ->
        if n = name && kind item = false then
          invalid_arg ("Metrics: " ^ name ^ " already registered with another kind"))
      st.st_registry;
    let item = make st.st_on in
    Hashtbl.replace st.st_registry key item;
    item

let counter ?(labels = []) name =
  match
    get_or_create name labels
      ~kind:(function C _ -> true | _ -> false)
      ~make:(fun on -> C { Counter.v = 0; on })
  with
  | C c -> c
  | _ -> assert false

let gauge ?(labels = []) name =
  match
    get_or_create name labels
      ~kind:(function G _ -> true | _ -> false)
      ~make:(fun on -> G { Gauge.v = 0; on })
  with
  | G g -> g
  | _ -> assert false

let histogram ?(labels = []) name =
  match
    get_or_create name labels
      ~kind:(function H _ -> true | _ -> false)
      ~make:(fun on ->
        H
          {
            Histogram.counts = Array.make Histogram.nbuckets 0;
            n = 0;
            total = 0;
            vmin = 0;
            vmax = 0;
            on;
          })
  with
  | H h -> h
  | _ -> assert false

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { count : int; sum : int; p50 : float; p99 : float; max : int }

let dump () =
  let rows =
    Hashtbl.fold
      (fun (name, labels) item acc ->
        let v =
          match item with
          | C c -> Counter_v c.Counter.v
          | G g -> Gauge_v g.Gauge.v
          | H h ->
            Histogram_v
              {
                count = Histogram.count h;
                sum = Histogram.sum h;
                p50 = Histogram.quantile h 0.5;
                p99 = Histogram.quantile h 0.99;
                max = Histogram.max h;
              }
        in
        (name, labels, v) :: acc)
      (state ()).st_registry []
  in
  List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2)) rows

let find_counter ?(labels = []) name =
  match Hashtbl.find_opt (state ()).st_registry (name, normalize labels) with
  | Some (C c) -> c.Counter.v
  | _ -> 0

let reset () =
  Hashtbl.iter
    (fun _ item ->
      match item with
      | C c -> c.Counter.v <- 0
      | G g -> g.Gauge.v <- 0
      | H h -> Histogram.clear h)
    (state ()).st_registry

let purge () =
  let st = state () in
  Hashtbl.reset st.st_registry;
  st.st_on := true
