(** Flight-recorder tracing: a bounded ring buffer of typed overlay events.

    The recorder is {e domain-local} and off by default: each domain owns
    an independent ring, clock hook and sink, so parallel runs on a
    {!Strovl_par.Pool} record disjoint streams whose digests match a
    sequential run exactly. When off, the hot-path cost at an
    instrumentation site is one domain-local-storage read and a branch
    (sites guard with [if armed () then emit ...]). When on, every event
    records who
    ([node]), what ([event]), which packet ([flow], [seq]) and when
    (sim-time, read from the clock hook the simulation engine installs), so
    a packet's full causal path through the overlay — enqueue, per-hop
    forwards, drops with reasons, retransmissions, reroutes, delivery — can
    be reconstructed after the fact. The ring keeps the most recent
    [capacity] events; older ones are overwritten (it is a flight recorder,
    not a log). *)

type flow_id = { fi_src : int; fi_sport : int; fi_dst : int; fi_dport : int }
(** Library-neutral flow identity. [fi_dst] carries the destination
    encoding produced by [Packet.obs_flow] (nodes as themselves, groups
    offset into distinct ranges). *)

val no_flow : flow_id
(** Placeholder for events with no packet context (reroutes, LSU floods,
    wire-level drops): all fields [-1]. *)

type reason =
  | No_route
  | Ttl
  | Auth
  | Dup
  | Backpressure
  | Overload  (** node CPU queue overflow (§II-D) *)
  | Queue_full  (** link serialization queue tail-drop *)
  | Priority_evict  (** IT-Priority oldest-lowest eviction (§IV-B) *)
  | Wire_loss  (** lost on an underlay fiber segment or peering point *)

type event =
  | Enqueue  (** packet entered the overlay at this node *)
  | Forward of int  (** sent onward on link [l] *)
  | Drop of reason
  | Retransmit of int  (** link protocol retransmission on link [l] *)
  | Nack of int * int  (** recovery request on link [l] for lseq [n] *)
  | Reroute of int * bool  (** local view of link [l] flipped to up/down *)
  | Lsu_flood
  | Deliver  (** handed to a local session *)
  | Fec_recover of int  (** reconstructed from parity on link [l] *)
  | Probe of int  (** health probe sent on link [l] *)
  | Probe_verdict of int * bool
      (** k-missed-probes liveness verdict for link [l] flipped to
          alive/dead *)
  | Lsu_apply of int
      (** accepted a fresher link-state update originated by node
          [origin] *)
  | Forward_replay of int
      (** re-forward of a stranded packet after a reroute (link [l]);
          distinct from [Forward] so duplicate-suppression invariants can
          exempt legitimate replays *)
  | Deliver_replay  (** delivery of a replayed packet (post-reroute copy) *)
  | Strike of int * int
      (** NM-Strikes recovery request on link [l] for lseq [n]; unlike
          [Nack], a strike is semi-reliable and may legitimately go
          unanswered once its deadline budget lapses *)

type record = {
  ts : int;  (** sim-time (µs) at which the event was recorded *)
  node : int;
  flow : flow_id;
  seq : int;
  ev : event;
}

val armed : unit -> bool
(** Whether this domain's recorder is armed. Instrumentation sites must
    check this before building event arguments so the disabled path stays
    cheap. *)

val set_clock : (unit -> int) -> unit
(** Installed by the simulation engine: how [emit] reads the current
    sim-time. *)

val now : unit -> int
(** Current sim-time as the recorder sees it (whatever [set_clock]
    installed; 0 before any engine exists). Lets other observability
    layers ([Series], [Audit]) bucket by the same clock. *)

val set_sink : (record -> unit) -> unit
(** Installs a streaming consumer: every record written to the ring is
    also passed to the sink, synchronously, in emission order. One sink at
    a time (a new [set_sink] replaces the previous one). The sink only
    sees events while the recorder is armed. *)

val clear_sink : unit -> unit
(** Removes the streaming consumer. *)

val enable : ?capacity:int -> unit -> unit
(** Arms the recorder with a fresh ring (default capacity 2^18 events). *)

val disable : unit -> unit
(** Disarms and discards the ring. *)

val clear : unit -> unit
(** Empties the ring but keeps recording. *)

val emit : ?flow:flow_id -> ?seq:int -> node:int -> event -> unit
(** Records one event at the current sim-time. No-op when disarmed. *)

val length : unit -> int
(** Events currently retained. *)

val total : unit -> int
(** Events ever emitted since [enable]/[clear] (≥ [length]; the difference
    is how many the ring overwrote). *)

val records : unit -> record list
(** Retained events in chronological order. *)

val iter : (record -> unit) -> unit

val digest : unit -> int64
(** FNV-1a hash over the retained events (and [total]), for determinism
    checks: same seed, same workload ⇒ same digest. *)

val reason_to_string : reason -> string
val event_to_string : event -> string
val pp_record : Format.formatter -> record -> unit
