(** Per-domain registry of labelled counters, gauges and histograms.

    Handles are created (or looked up) once at component-construction time;
    hot-path updates are O(1) field writes guarded by the owning domain's
    [enabled] flag (embedded in each handle), so the disabled mode costs
    one dereference and a branch. Histograms are bounded log-bucket (powers
    of two) so long chaos soaks cannot grow memory, unlike
    [Strovl_sim.Stats.Series] which keeps every sample.

    The registry — like all observability state — is {e domain-local}:
    each domain owns an independent registry, so parallel runs scheduled
    on a {!Strovl_par.Pool} neither contend on nor leak counts into each
    other. Handles must be used on the domain that created them. *)

type labels = (string * string) list
(** Sorted on registration; [("link", "3-7")]-style dimensions. *)

val enabled : unit -> bool
(** This domain's armed flag. Default [true] — the counters are the cheap
    always-available layer; flip off for microbenchmarks. *)

val set_enabled : bool -> unit
(** When [false] every update on this domain is a no-op. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val value : t -> int
end

module Histogram : sig
  type t

  val observe : t -> int -> unit
  (** Records a non-negative integer sample (negative samples clamp to 0)
      into its log2 bucket. *)

  val count : t -> int
  val sum : t -> int
  val min : t -> int
  (** 0 when empty. *)

  val max : t -> int

  val quantile : t -> float -> float
  (** [quantile h 0.99]: an estimate from the bucket boundaries (geometric
      bucket midpoint); exact enough for summaries, O(buckets). *)

  val buckets : t -> (int * int) list
  (** Non-empty buckets as [(upper_bound_exclusive, count)]. *)
end

val counter : ?labels:labels -> string -> Counter.t
val gauge : ?labels:labels -> string -> Gauge.t
val histogram : ?labels:labels -> string -> Histogram.t
(** Get-or-create: the same (name, labels) always returns the same handle,
    so registration is idempotent across repeated component construction.
    Raises [Invalid_argument] if the name exists with a different kind. *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { count : int; sum : int; p50 : float; p99 : float; max : int }

val dump : unit -> (string * labels * value) list
(** Snapshot of every registered metric, sorted by (name, labels). *)

val find_counter : ?labels:labels -> string -> int
(** Current value, 0 when never registered. *)

val reset : unit -> unit
(** Zeroes every registered metric (handles stay valid). *)

val purge : unit -> unit
(** Forgets this domain's registry entirely and re-enables updates:
    existing handles keep working but are no longer reachable from
    [dump]/[find_counter]. Used by {!Ctx.fresh} to give each scheduled run
    a pristine registry. *)
