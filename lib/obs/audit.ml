(* Online invariant auditor: a streaming consumer of trace records
   (installed as the Trace sink) that checks the overlay's own legal-state
   predicates as the simulation runs.

   Rules and their deliberate exemptions:

   - dup-deliver: a unicast (flow, seq) must reach a session exactly once.
     Replayed copies (stranded packets re-injected after a reroute) carry
     the [Deliver_replay] event and are exempt — the session layer, not the
     overlay, dedupes those by design. Group destinations deliver at many
     members and are exempt.
   - fwd-loop: no node forwards the same non-replay (flow, seq) twice on
     the same link. Retransmissions are separate [Retransmit] events, and
     multicast fan-out uses distinct links, so a repeat means the packet
     revisited the node: a routing loop.
   - recovery-budget: every reliable-link [Nack] must be answered by a
     [Retransmit] on that link within the budget. Links that ever flapped
     ([Reroute] observed) are exempt: link death legitimately strands
     gaps, which rerouting — not hop-by-hop recovery — then covers.
     NM-Strikes requests are [Strike] events, not [Nack]s, and are not
     held to the budget (semi-reliable: the protocol may give up). A
     pending nack whose budget lapses is only flagged when the link saw no
     retransmission at all since the nack was issued: nack/retransmit
     pairing is not observable from the trace (link sequence numbers are
     per-direction, and a nack can cross its answer in flight), so an
     actively retransmitting sender is given the benefit of the doubt.
   - reroute-budget: after a node reports a link down ([Reroute l false]),
     every other node must accept a fresher LSU from that origin
     ([Lsu_apply]) within the budget — the paper's sub-second reroute
     claim as a checkable predicate. The node population is inferred from
     the stream (any node that ever emitted an event) unless configured.
     At budget expiry only nodes that demonstrably kept receiving floods
     (applied some LSU after the down report) are required to have heard
     this origin — a crashed or partitioned node keeps its local timers
     (and trace presence) but cannot apply anything; and an origin heard
     by nobody is treated as partitioned itself, not as a violation.
   - fec-ghost: FEC must never "recover" a (flow, seq) the node already
     processed (forwarded, delivered, or previously recovered).

   State is bounded: per-packet tables are pruned by age once they exceed
   [max_tracked] keys, so the auditor can ride along in soaks.

   All auditor state lives in one domain-local record: each parallel run
   audits its own trace stream (the Trace sink it installs is domain-local
   too), so concurrent runs neither share packet-identity tables nor each
   other's violations. *)

type violation = {
  v_ts : int;
  v_rule : string;
  v_node : int;
  v_flow : Trace.flow_id;
  v_seq : int;
  v_detail : string;
}

type config = {
  nnodes : int option;
  recovery_budget_us : int;
  reroute_budget_us : int;
  max_tracked : int;
}

let default_config =
  {
    nnodes = None;
    recovery_budget_us = 2_000_000;
    reroute_budget_us = 1_000_000;
    max_tracked = 1 lsl 16;
  }

(* ----------------------------- state --------------------------------- *)

type st = {
  mutable armed_flag : bool;
  mutable cfg : config;
  mutable viols : violation list;
  mutable nviols : int;
  (* (flow, seq) -> first delivery (ts, node); unicast only *)
  delivered : (Trace.flow_id * int, int * int) Hashtbl.t;
  (* (flow, seq, node) -> ts the node last processed the packet *)
  seen_at : (Trace.flow_id * int * int, int) Hashtbl.t;
  (* (flow, seq, node, link) -> ts of the non-replay forward *)
  fwd : (Trace.flow_id * int * int * int, int) Hashtbl.t;
  (* (node, link, lseq) -> ts of the first nack for that gap *)
  nack_pending : (int * int * int, int) Hashtbl.t;
  nack_exempt : (int, unit) Hashtbl.t;
  (* link -> ts of the most recent retransmission on it *)
  last_retx : (int, int) Hashtbl.t;
  (* node -> ts of the most recent LSU (from any origin) it applied *)
  lsu_active : (int, int) Hashtbl.t;
  (* origin -> (down ts, nodes that applied a fresher LSU since) *)
  reroute_pending : (int, int * (int, unit) Hashtbl.t) Hashtbl.t;
  seen_nodes : (int, unit) Hashtbl.t;
  mutable reroute_lat : int list;
  mutable next_sweep : int;
  mutable last_ts : int;
}

let dls : st Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        armed_flag = false;
        cfg = default_config;
        viols = [];
        nviols = 0;
        delivered = Hashtbl.create 256;
        seen_at = Hashtbl.create 256;
        fwd = Hashtbl.create 256;
        nack_pending = Hashtbl.create 64;
        nack_exempt = Hashtbl.create 16;
        last_retx = Hashtbl.create 16;
        lsu_active = Hashtbl.create 64;
        reroute_pending = Hashtbl.create 16;
        seen_nodes = Hashtbl.create 64;
        reroute_lat = [];
        next_sweep = min_int;
        last_ts = min_int;
      })

let state () = Domain.DLS.get dls

(* A sim-time regression means a new simulation run started inside one
   audited span (experiments build a fresh engine per scenario, and each
   engine's clock restarts at zero). Packet identities and budgets do not
   carry across runs, so the packet-scoped state is dropped; accumulated
   violations and reroute latencies are kept. *)
let epoch_reset st =
  Hashtbl.reset st.delivered;
  Hashtbl.reset st.seen_at;
  Hashtbl.reset st.fwd;
  Hashtbl.reset st.nack_pending;
  Hashtbl.reset st.nack_exempt;
  Hashtbl.reset st.last_retx;
  Hashtbl.reset st.lsu_active;
  Hashtbl.reset st.reroute_pending;
  Hashtbl.reset st.seen_nodes;
  st.next_sweep <- min_int

let reset_state st =
  st.viols <- [];
  st.nviols <- 0;
  epoch_reset st;
  st.reroute_lat <- [];
  st.last_ts <- min_int

let violate st ~ts ~rule ~node ?(flow = Trace.no_flow) ?(seq = -1) detail =
  st.viols <-
    { v_ts = ts; v_rule = rule; v_node = node; v_flow = flow; v_seq = seq;
      v_detail = detail }
    :: st.viols;
  st.nviols <- st.nviols + 1;
  (* Violations are rare; the registry lookup keeps the counter handle in
     this domain's registry rather than pinning one shared handle across
     domains. *)
  Metrics.Counter.incr (Metrics.counter "strovl_audit_violations_total")

(* ----------------------------- rules --------------------------------- *)

let unicast (flow : Trace.flow_id) =
  flow.Trace.fi_src >= 0 && flow.Trace.fi_dst >= 0
  && flow.Trace.fi_dst < 1_000_000

let packet_ctx (r : Trace.record) =
  r.Trace.flow.Trace.fi_src >= 0 && r.Trace.seq >= 0

let note_seen st (r : Trace.record) =
  if packet_ctx r then
    Hashtbl.replace st.seen_at (r.Trace.flow, r.Trace.seq, r.Trace.node)
      r.Trace.ts

let on_deliver st (r : Trace.record) =
  if packet_ctx r && unicast r.Trace.flow then begin
    match Hashtbl.find_opt st.delivered (r.Trace.flow, r.Trace.seq) with
    | Some (ts0, node0) ->
      violate st ~ts:r.Trace.ts ~rule:"dup-deliver" ~node:r.Trace.node
        ~flow:r.Trace.flow ~seq:r.Trace.seq
        (Printf.sprintf "delivered again at node %d; first at node %d t=%dus"
           r.Trace.node node0 ts0)
    | None ->
      Hashtbl.replace st.delivered (r.Trace.flow, r.Trace.seq)
        (r.Trace.ts, r.Trace.node)
  end;
  note_seen st r

let on_forward st (r : Trace.record) link =
  if packet_ctx r then begin
    let key = (r.Trace.flow, r.Trace.seq, r.Trace.node, link) in
    (match Hashtbl.find_opt st.fwd key with
    | Some ts0 ->
      violate st ~ts:r.Trace.ts ~rule:"fwd-loop" ~node:r.Trace.node
        ~flow:r.Trace.flow ~seq:r.Trace.seq
        (Printf.sprintf "re-forwarded on link %d (first at t=%dus)" link ts0)
    | None -> Hashtbl.replace st.fwd key r.Trace.ts)
  end;
  note_seen st r

let on_fec_recover st (r : Trace.record) link =
  if packet_ctx r then begin
    match
      Hashtbl.find_opt st.seen_at (r.Trace.flow, r.Trace.seq, r.Trace.node)
    with
    | Some ts0 ->
      violate st ~ts:r.Trace.ts ~rule:"fec-ghost" ~node:r.Trace.node
        ~flow:r.Trace.flow ~seq:r.Trace.seq
        (Printf.sprintf
           "FEC on link %d recovered a packet this node already processed \
            (t=%dus)"
           link ts0)
    | None -> note_seen st r
  end

let on_nack st (r : Trace.record) link lseq =
  if not (Hashtbl.mem st.nack_exempt link) then begin
    let key = (r.Trace.node, link, lseq) in
    if not (Hashtbl.mem st.nack_pending key) then
      Hashtbl.replace st.nack_pending key r.Trace.ts
  end

let on_retransmit st ts link =
  (* A retransmission on [link] answers the oldest outstanding nack there.
     We cannot match lseqs across sides (lseq numbering is per-direction),
     so clearing the oldest is the sound lenient choice. *)
  Hashtbl.replace st.last_retx link ts;
  let oldest = ref None in
  Hashtbl.iter
    (fun ((_, l, _) as key) ts ->
      if l = link then
        match !oldest with
        | Some (_, ts0) when ts0 <= ts -> ()
        | _ -> oldest := Some (key, ts))
    st.nack_pending;
  match !oldest with
  | Some (key, _) -> Hashtbl.remove st.nack_pending key
  | None -> ()

let on_reroute st (r : Trace.record) link up =
  Hashtbl.replace st.nack_exempt link ();
  let stranded = ref [] in
  Hashtbl.iter
    (fun ((_, l, _) as key) _ -> if l = link then stranded := key :: !stranded)
    st.nack_pending;
  List.iter (Hashtbl.remove st.nack_pending) !stranded;
  if not up then
    if not (Hashtbl.mem st.reroute_pending r.Trace.node) then
      Hashtbl.replace st.reroute_pending r.Trace.node
        (r.Trace.ts, Hashtbl.create 16)

let population_covered st ~origin heard =
  let missing = ref 0 in
  Hashtbl.iter
    (fun id () ->
      if id <> origin && not (Hashtbl.mem heard id) then incr missing)
    st.seen_nodes;
  !missing = 0

let on_lsu_apply st (r : Trace.record) origin =
  Hashtbl.replace st.lsu_active r.Trace.node r.Trace.ts;
  match Hashtbl.find_opt st.reroute_pending origin with
  | None -> ()
  | Some (ts0, heard) ->
    if r.Trace.node <> origin then Hashtbl.replace heard r.Trace.node ();
    let full_population =
      match st.cfg.nnodes with
      | Some n -> Hashtbl.length heard >= n - 1
      | None -> population_covered st ~origin heard
    in
    if full_population then begin
      Hashtbl.remove st.reroute_pending origin;
      st.reroute_lat <- (r.Trace.ts - ts0) :: st.reroute_lat
    end

(* ----------------------------- sweeping ------------------------------ *)

let prune_packet_tables st now =
  let horizon = 8 * st.cfg.recovery_budget_us in
  let cutoff = now - horizon in
  if Hashtbl.length st.seen_at > st.cfg.max_tracked then begin
    let old = ref [] in
    Hashtbl.iter (fun k ts -> if ts < cutoff then old := k :: !old) st.seen_at;
    List.iter (Hashtbl.remove st.seen_at) !old
  end;
  if Hashtbl.length st.fwd > st.cfg.max_tracked then begin
    let old = ref [] in
    Hashtbl.iter (fun k ts -> if ts < cutoff then old := k :: !old) st.fwd;
    List.iter (Hashtbl.remove st.fwd) !old
  end;
  if Hashtbl.length st.delivered > st.cfg.max_tracked then begin
    let old = ref [] in
    Hashtbl.iter
      (fun k (ts, _) -> if ts < cutoff then old := k :: !old)
      st.delivered;
    List.iter (Hashtbl.remove st.delivered) !old
  end

let sweep st now =
  let expired = ref [] in
  Hashtbl.iter
    (fun key ts ->
      if now - ts > st.cfg.recovery_budget_us then
        expired := (key, ts) :: !expired)
    st.nack_pending;
  List.iter
    (fun (((node, link, lseq) as key), ts) ->
      Hashtbl.remove st.nack_pending key;
      (* Only a fully silent sender is a violation: if the link saw any
         retransmission since the nack, the pairing was merely ambiguous
         (the answer can cross the nack, or clear a different slot). *)
      let sender_active =
        match Hashtbl.find_opt st.last_retx link with
        | Some t -> t >= ts
        | None -> false
      in
      if not sender_active then
        violate st ~ts:now ~rule:"recovery-budget" ~node ~seq:lseq
          (Printf.sprintf
             "nack on link %d (lseq %d, t=%dus) unanswered after %dus" link
             lseq ts (now - ts)))
    !expired;
  let expired = ref [] in
  Hashtbl.iter
    (fun origin (ts, heard) ->
      if now - ts > st.cfg.reroute_budget_us then
        expired := (origin, ts, heard) :: !expired)
    st.reroute_pending;
  List.iter
    (fun (origin, ts, heard) ->
      Hashtbl.remove st.reroute_pending origin;
      (* Nobody heard the origin at all: it is partitioned (e.g. a crashed
         node still running local timers), not late. Otherwise, only nodes
         that kept applying floods after the down report are required —
         a node that applied nothing since then was itself unreachable. *)
      if Hashtbl.length heard > 0 then begin
        let laggards = ref [] in
        Hashtbl.iter
          (fun id () ->
            if id <> origin && not (Hashtbl.mem heard id) then
              match Hashtbl.find_opt st.lsu_active id with
              | Some t when t > ts -> laggards := id :: !laggards
              | _ -> ())
          st.seen_nodes;
        if !laggards <> [] then
          violate st ~ts:now ~rule:"reroute-budget" ~node:origin
            (Printf.sprintf
               "link-down LSU from node %d (t=%dus) not applied overlay-wide \
                within %dus (%d nodes heard it; flood-active nodes %s did \
                not)"
               origin ts (now - ts) (Hashtbl.length heard)
               (String.concat ","
                  (List.map string_of_int (List.sort compare !laggards))))
      end)
    !expired;
  prune_packet_tables st now;
  st.next_sweep <-
    now + (min st.cfg.recovery_budget_us st.cfg.reroute_budget_us / 4)

(* ------------------------------ feed --------------------------------- *)

let feed (r : Trace.record) =
  let st = state () in
  if r.Trace.ts < st.last_ts then epoch_reset st;
  st.last_ts <- r.Trace.ts;
  if r.Trace.node >= 0 then Hashtbl.replace st.seen_nodes r.Trace.node ();
  (match r.Trace.ev with
  | Trace.Deliver -> on_deliver st r
  | Trace.Deliver_replay -> note_seen st r
  | Trace.Forward link -> on_forward st r link
  | Trace.Forward_replay _ -> note_seen st r
  | Trace.Fec_recover link -> on_fec_recover st r link
  | Trace.Nack (link, lseq) -> on_nack st r link lseq
  | Trace.Retransmit link -> on_retransmit st r.Trace.ts link
  | Trace.Reroute (link, up) -> on_reroute st r link up
  | Trace.Lsu_apply origin -> on_lsu_apply st r origin
  | Trace.Enqueue | Trace.Drop _ | Trace.Lsu_flood | Trace.Probe _
  | Trace.Probe_verdict _ | Trace.Strike _ ->
    ());
  if r.Trace.ts >= st.next_sweep then sweep st r.Trace.ts

(* ----------------------------- control ------------------------------- *)

let arm ?(config = default_config) () =
  let st = state () in
  st.cfg <- config;
  reset_state st;
  Trace.set_sink feed;
  st.armed_flag <- true

let disarm () =
  let st = state () in
  if st.armed_flag then begin
    Trace.clear_sink ();
    st.armed_flag <- false
  end

let armed () = (state ()).armed_flag

let reset () =
  disarm ();
  reset_state (state ())
let violations () = List.rev (state ()).viols
let count () = (state ()).nviols

let distinct_rules () =
  List.sort_uniq compare (List.map (fun v -> v.v_rule) (state ()).viols)

let reroute_latencies () = List.rev (state ()).reroute_lat

let finish () =
  sweep (state ()) (Trace.now ());
  violations ()

let pp_violation ppf v =
  if v.v_flow == Trace.no_flow || v.v_flow.Trace.fi_src < 0 then
    Format.fprintf ppf "%8dus [%s] node %-3d %s" v.v_ts v.v_rule v.v_node
      v.v_detail
  else
    Format.fprintf ppf "%8dus [%s] node %-3d flow %d:%d->%d:%d seq %d %s"
      v.v_ts v.v_rule v.v_node v.v_flow.Trace.fi_src v.v_flow.Trace.fi_sport
      v.v_flow.Trace.fi_dst v.v_flow.Trace.fi_dport v.v_seq v.v_detail

let violation_json v =
  let flow =
    if v.v_flow.Trace.fi_src < 0 then ""
    else
      Printf.sprintf
        ",\"flow\":{\"src\":%d,\"sport\":%d,\"dst\":%d,\"dport\":%d},\"seq\":%d"
        v.v_flow.Trace.fi_src v.v_flow.Trace.fi_sport v.v_flow.Trace.fi_dst
        v.v_flow.Trace.fi_dport v.v_seq
  in
  Printf.sprintf "{\"ts\":%d,\"rule\":%s,\"node\":%d%s,\"detail\":%s}" v.v_ts
    (Export.json_str v.v_rule) v.v_node flow
    (Export.json_str v.v_detail)

(* Run [f] with the auditor riding along. If an outer auditor is already
   armed (e.g. `strovl_mon audit`), [f] just runs — the outer collection
   sees everything. Otherwise arm (enabling tracing for the duration if it
   was off), run, and report any violations on stderr; the registry's
   [strovl_audit_violations_total] counter records the tally either way. *)
let checked ?config ~label f =
  if (state ()).armed_flag then f ()
  else begin
    let trace_was_on = Trace.armed () in
    if not trace_was_on then Trace.enable ~capacity:(1 lsl 16) ();
    arm ?config ();
    let finally () =
      let vs = finish () in
      disarm ();
      if not trace_was_on then Trace.disable ();
      if vs <> [] then begin
        Printf.eprintf "strovl audit (%s): %d invariant violation(s)\n" label
          (List.length vs);
        List.iter (fun v -> Format.eprintf "  %a@." pp_violation v) vs
      end
    in
    match f () with
    | x ->
      finally ();
      x
    | exception e ->
      finally ();
      raise e
  end
