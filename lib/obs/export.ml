(* JSON is hand-rolled: the container has no JSON library and the shapes
   here are flat. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

(* ------------------------------ records ------------------------------ *)

let event_fields ev =
  match (ev : Trace.event) with
  | Trace.Enqueue -> [ ("ev", json_str "enqueue") ]
  | Trace.Forward l -> [ ("ev", json_str "forward"); ("link", string_of_int l) ]
  | Trace.Drop r ->
    [ ("ev", json_str "drop"); ("reason", json_str (Trace.reason_to_string r)) ]
  | Trace.Retransmit l ->
    [ ("ev", json_str "retransmit"); ("link", string_of_int l) ]
  | Trace.Nack (l, n) ->
    [ ("ev", json_str "nack"); ("link", string_of_int l); ("lseq", string_of_int n) ]
  | Trace.Reroute (l, up) ->
    [
      ("ev", json_str "reroute");
      ("link", string_of_int l);
      ("up", if up then "true" else "false");
    ]
  | Trace.Lsu_flood -> [ ("ev", json_str "lsu_flood") ]
  | Trace.Deliver -> [ ("ev", json_str "deliver") ]
  | Trace.Fec_recover l ->
    [ ("ev", json_str "fec_recover"); ("link", string_of_int l) ]
  | Trace.Probe l -> [ ("ev", json_str "probe"); ("link", string_of_int l) ]
  | Trace.Probe_verdict (l, alive) ->
    [
      ("ev", json_str "probe_verdict");
      ("link", string_of_int l);
      ("alive", if alive then "true" else "false");
    ]
  | Trace.Lsu_apply origin ->
    [ ("ev", json_str "lsu_apply"); ("origin", string_of_int origin) ]
  | Trace.Forward_replay l ->
    [ ("ev", json_str "forward_replay"); ("link", string_of_int l) ]
  | Trace.Deliver_replay -> [ ("ev", json_str "deliver_replay") ]
  | Trace.Strike (l, n) ->
    [ ("ev", json_str "strike"); ("link", string_of_int l); ("lseq", string_of_int n) ]

let record_json (r : Trace.record) =
  let fields =
    [ ("ts", string_of_int r.Trace.ts); ("node", string_of_int r.Trace.node) ]
    @ (if r.Trace.flow.Trace.fi_src < 0 then []
       else
         [
           ( "flow",
             Printf.sprintf "{\"src\":%d,\"sport\":%d,\"dst\":%d,\"dport\":%d}"
               r.Trace.flow.Trace.fi_src r.Trace.flow.Trace.fi_sport
               r.Trace.flow.Trace.fi_dst r.Trace.flow.Trace.fi_dport );
           ("seq", string_of_int r.Trace.seq);
         ])
    @ event_fields r.Trace.ev
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_str k ^ ":" ^ v) fields)
  ^ "}"

let jsonl oc =
  Trace.iter (fun r ->
      output_string oc (record_json r);
      output_char oc '\n')

(* ------------------------------ analysis ----------------------------- *)

let drop_counts () =
  let tbl = Hashtbl.create 16 in
  Trace.iter (fun r ->
      match r.Trace.ev with
      | Trace.Drop reason ->
        let k = Trace.reason_to_string reason in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      | _ -> ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let retransmit_count () =
  let n = ref 0 in
  Trace.iter (fun r ->
      match r.Trace.ev with Trace.Retransmit _ -> incr n | _ -> ());
  !n

let path_of ~flow ~seq =
  let acc = ref [] in
  Trace.iter (fun r ->
      if r.Trace.flow = flow && (r.Trace.seq = seq || r.Trace.seq = -1) then
        acc := r :: !acc);
  List.rev !acc

let sample_packet () =
  (* One pass: remember per (flow, seq) whether it was delivered and/or
     retransmitted; prefer a packet whose whole story is in the window. *)
  let tbl : (Trace.flow_id * int, bool ref * bool ref * bool ref) Hashtbl.t =
    Hashtbl.create 256
  in
  Trace.iter (fun r ->
      if r.Trace.flow.Trace.fi_src >= 0 && r.Trace.seq >= 0 then begin
        let key = (r.Trace.flow, r.Trace.seq) in
        let enq, dlv, rtx =
          match Hashtbl.find_opt tbl key with
          | Some e -> e
          | None ->
            let e = (ref false, ref false, ref false) in
            Hashtbl.replace tbl key e;
            e
        in
        match r.Trace.ev with
        | Trace.Enqueue -> enq := true
        | Trace.Deliver -> dlv := true
        | Trace.Retransmit _ -> rtx := true
        | _ -> ()
      end);
  let best = ref None and best_score = ref (-1) in
  Hashtbl.iter
    (fun key (enq, dlv, rtx) ->
      let score =
        (if !rtx then 4 else 0) + (if !dlv then 2 else 0) + if !enq then 1 else 0
      in
      if score > !best_score || (score = !best_score && Some key < !best) then begin
        best_score := score;
        best := Some key
      end)
    tbl;
  !best

let flow_summaries () =
  let tbl : (Trace.flow_id, int ref * int ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Hop timestamps per (flow, seq) to derive per-hop latencies. *)
  let hops : (Trace.flow_id * int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  Trace.iter (fun r ->
      if r.Trace.flow.Trace.fi_src >= 0 then begin
        let enq, fwd, dlv, rtx =
          match Hashtbl.find_opt tbl r.Trace.flow with
          | Some e -> e
          | None ->
            let e = (ref 0, ref 0, ref 0, ref 0) in
            Hashtbl.replace tbl r.Trace.flow e;
            e
        in
        let note_hop () =
          if r.Trace.seq >= 0 then begin
            let key = (r.Trace.flow, r.Trace.seq) in
            let l =
              match Hashtbl.find_opt hops key with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.replace hops key l;
                l
            in
            l := r.Trace.ts :: !l
          end
        in
        match r.Trace.ev with
        | Trace.Enqueue ->
          incr enq;
          note_hop ()
        | Trace.Forward _ | Trace.Forward_replay _ ->
          incr fwd;
          note_hop ()
        | Trace.Deliver | Trace.Deliver_replay ->
          incr dlv;
          note_hop ()
        | Trace.Retransmit _ -> incr rtx
        | _ -> ()
      end);
  let hop_sum : (Trace.flow_id, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (flow, _) ts ->
      let sorted = List.sort compare !ts in
      let sum, n =
        match Hashtbl.find_opt hop_sum flow with
        | Some e -> e
        | None ->
          let e = (ref 0, ref 0) in
          Hashtbl.replace hop_sum flow e;
          e
      in
      let rec deltas = function
        | a :: (b :: _ as rest) ->
          sum := !sum + (b - a);
          incr n;
          deltas rest
        | _ -> ()
      in
      deltas sorted)
    hops;
  Hashtbl.fold
    (fun flow (enq, fwd, dlv, rtx) acc ->
      let mean_hop =
        match Hashtbl.find_opt hop_sum flow with
        | Some (sum, n) when !n > 0 -> float_of_int !sum /. float_of_int !n
        | _ -> 0.
      in
      (flow, (!enq, !fwd, !dlv, !rtx, mean_hop)) :: acc)
    tbl []
  |> List.sort compare

let links_table () =
  let tbl : (string, int ref * int ref * int ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (name, labels, v) ->
      match (List.assoc_opt "link" labels, v) with
      | Some lbl, Metrics.Counter_v n ->
        let pkts, bytes, drops =
          match Hashtbl.find_opt tbl lbl with
          | Some e -> e
          | None ->
            let e = (ref 0, ref 0, ref 0) in
            Hashtbl.replace tbl lbl e;
            e
        in
        if name = "strovl_link_tx_packets_total" then pkts := !pkts + n
        else if name = "strovl_link_tx_bytes_total" then bytes := !bytes + n
        else if name = "strovl_link_queue_drops_total" then drops := !drops + n
      | _ -> ())
    (Metrics.dump ());
  Hashtbl.fold (fun lbl (p, b, d) acc -> (lbl, !p, !b, !d) :: acc) tbl []
  |> List.sort (fun (_, _, b1, _) (_, _, b2, _) -> compare b2 b1)

(* ------------------------------- output ------------------------------ *)

let value_json = function
  | Metrics.Counter_v n | Metrics.Gauge_v n -> string_of_int n
  | Metrics.Histogram_v { count; sum; p50; p99; max } ->
    Printf.sprintf "{\"count\":%d,\"sum\":%d,\"p50\":%.1f,\"p99\":%.1f,\"max\":%d}"
      count sum p50 p99 max

let summary_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"trace\":";
  Buffer.add_string b
    (Printf.sprintf "{\"total\":%d,\"retained\":%d}" (Trace.total ())
       (Trace.length ()));
  Buffer.add_string b ",\"drops\":{";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun (k, v) -> json_str k ^ ":" ^ string_of_int v)
          (drop_counts ())));
  Buffer.add_string b "},\"retransmits\":";
  Buffer.add_string b (string_of_int (retransmit_count ()));
  Buffer.add_string b ",\"metrics\":[";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun (name, labels, v) ->
            Printf.sprintf "{\"name\":%s,\"labels\":{%s},\"value\":%s}"
              (json_str name)
              (String.concat ","
                 (List.map (fun (k, v) -> json_str k ^ ":" ^ json_str v) labels))
              (value_json v))
          (Metrics.dump ())))
  ;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_flow ppf (f : Trace.flow_id) =
  Format.fprintf ppf "%d:%d->%d:%d" f.Trace.fi_src f.Trace.fi_sport
    f.Trace.fi_dst f.Trace.fi_dport

let print_path ppf ~flow ~seq =
  let path = path_of ~flow ~seq in
  Format.fprintf ppf "causal path for flow %a seq %d (%d events)@." pp_flow flow
    seq (List.length path);
  List.iter (fun r -> Format.fprintf ppf "  %a@." Trace.pp_record r) path

let print_summary ppf =
  Format.fprintf ppf "== trace: %d events retained (%d emitted) ==@."
    (Trace.length ()) (Trace.total ());
  let drops = drop_counts () in
  if drops <> [] then begin
    Format.fprintf ppf "@.top drop reasons:@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-16s %d@." k v) drops
  end;
  Format.fprintf ppf "@.retransmits in window: %d@." (retransmit_count ());
  let links = links_table () in
  if links <> [] then begin
    Format.fprintf ppf "@.per-link utilization:@.";
    Format.fprintf ppf "  %-10s %10s %14s %8s@." "link" "packets" "bytes" "drops";
    List.iter
      (fun (lbl, p, b, d) -> Format.fprintf ppf "  %-10s %10d %14d %8d@." lbl p b d)
      links
  end;
  let flows = flow_summaries () in
  if flows <> [] then begin
    Format.fprintf ppf "@.per-flow (from trace window):@.";
    Format.fprintf ppf "  %-22s %8s %8s %8s %8s %12s@." "flow" "enq" "fwd"
      "deliver" "rtx" "mean-hop-us";
    List.iter
      (fun (flow, (enq, fwd, dlv, rtx, mean_hop)) ->
        Format.fprintf ppf "  %-22s %8d %8d %8d %8d %12.1f@."
          (Format.asprintf "%a" pp_flow flow)
          enq fwd dlv rtx mean_hop)
      flows
  end
