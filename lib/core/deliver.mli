(** Destination reorder buffer.

    Intermediate overlay nodes "are permitted to forward packets out of
    order; the final destination is responsible for buffering received
    packets until they can be delivered in order" (§III-A). For real-time
    flows, "if a recovered packet arrives after later packets were already
    delivered, it is discarded" (§IV-A) and a missing packet is waited for
    only until its delivery deadline.

    One buffer instance serves one flow at its destination client. *)

type mode =
  | Unordered  (** deliver immediately (best-effort flows) *)
  | Ordered
      (** hold until contiguous; relies on a fully reliable service
          upstream *)
  | Deadline of Strovl_sim.Time.t
      (** in-order, but give a missing packet up when the deadline since its
          successor's origin timestamp expires; deliver late stragglers
          never *)

type t

val create :
  Strovl_sim.Engine.t -> mode -> deliver:(Packet.t -> unit) -> t
(** [deliver] is invoked exactly once per distinct in-window sequence
    number, in order for [Ordered]/[Deadline] modes. *)

val push : t -> Packet.t -> unit
(** Hand a packet (possibly duplicate, possibly out of order) to the
    buffer. *)

val delivered : t -> int
val discarded_late : t -> int
(** Packets that arrived after their slot had been given up (Deadline
    mode). *)

val skipped : t -> int
(** Sequence slots abandoned by deadline expiry. *)

val pending : t -> int
(** Packets currently buffered awaiting a gap fill. *)
