(** Best Effort link protocol (Figure 2): transmit once, no recovery.

    The overlay still improves on the raw Internet for best-effort flows via
    routing (sub-second reroute, multicast trees); this protocol just adds
    no per-link reliability. It is also the baseline the recovery protocols
    are measured against. *)

type t

val create : Lproto.ctx -> t
val send : t -> Packet.t -> unit
val recv : t -> Msg.t -> unit
val sent : t -> int
val received : t -> int
