(** Link health probing: tiny timestamped round trips on a configurable
    period, per overlay-link endpoint, feeding [Strovl_obs.Health] with
    EWMA-smoothed RTT, jitter and loss plus a k-missed-probes liveness
    verdict.

    Unlike the hello protocol (which the connectivity graph depends on for
    liveness), probing is purely observational by default: results live in
    the Health registry and the trace. The node can opt in to routing on
    them ([Node.config.probe_routing]) by bridging [on_update] /
    [on_verdict] into connectivity-graph advertisement. The responder side
    is stateless ([Msg.Probe] is echoed as [Msg.Probe_ack] by the node's
    receive dispatch), so a probing node can measure a peer that does not
    itself probe. *)

type config = {
  period : Strovl_sim.Time.t;  (** probe interval (default 50ms) *)
  k_missed : int;
      (** consecutive ack-less periods before the link is judged dead
          (default 3) *)
  loss_window : int;
      (** probes per loss-estimate fold into the EWMA (default 50) *)
}

val default_config : config

type t

val create : ?config:config -> Lproto.ctx -> t
(** One prober for the endpoint described by the context. Replaces any
    stale [Health] entry for (node, link) from a previous run. *)

val start : t -> unit
(** Begins the periodic probe loop (idempotent). *)

val stop : t -> unit
(** Ends the probe loop: the pending tick fires as a no-op and nothing is
    rescheduled. Used by the real-time runtime when a daemon shuts an
    endpoint down; a stopped prober can be restarted. *)

val handle_ack : t -> pseq:int -> echo:Strovl_sim.Time.t -> unit
(** Feeds a received [Msg.Probe_ack]: RTT sample from [echo], liveness,
    loss accounting. *)

val health : t -> Strovl_obs.Health.t

val set_on_update : t -> (Strovl_obs.Health.t -> unit) -> unit
(** Called after every RTT sample and loss fold. *)

val set_on_verdict : t -> (alive:bool -> unit) -> unit
(** Called when the k-missed-probes liveness verdict flips. *)
