(** Reliable Data Link: hop-by-hop ARQ recovery (Figure 2, §III-A, [4]).

    The resilient architecture replaces one high-latency end-to-end path
    with a series of short overlay links; adding ARQ *per link* localizes
    loss recovery: a retransmission costs one short-link round trip instead
    of an end-to-end round trip (Figure 3: 70 ms vs 150 ms on a 50 ms
    path). Received packets are forwarded upward immediately — out of
    order — and only the final destination reorders (§III-A), which is what
    smooths delivery.

    Mechanics: per-(link, class) sequence numbers; the receiver detects gaps
    when later packets arrive and sends NACKs immediately (repeating every
    ~RTT until filled); cumulative ACKs let the sender garbage-collect its
    retransmission store; a sender-side RTO covers tail losses with no
    following packet. The retransmission store is unbounded, leveraging the
    overlay node's "ample memory" (§II-B). *)

type t

type config = {
  ack_every : int;  (** cumulative ack frequency in packets *)
  ack_delay : Strovl_sim.Time.t;  (** max delay before a pending ack is sent *)
  nack_repeat : Strovl_sim.Time.t option;
      (** override for the NACK repeat interval (default 2×RTT hint) *)
  rto : Strovl_sim.Time.t option;
      (** override for the sender retransmission timeout (default 3×RTT) *)
  in_order_forwarding : bool;
      (** ablation knob, default [false]: hold received packets at each hop
          until contiguous before forwarding — the behaviour §III-A's
          out-of-order forwarding deliberately avoids. Quantifies the
          latency/jitter benefit of the paper's design choice. *)
  max_nack_repeats : int;
      (** give a gap up after this many unanswered NACKs (default 50): when
          the peer rerouted the packets away from a dead link, the slot will
          never fill here *)
}

val default_config : config

val create : ?config:config -> Lproto.ctx -> t
val send : t -> Packet.t -> unit
val recv : t -> Msg.t -> unit

val drain_store : t -> Packet.t list
(** Removes and returns every unacknowledged packet, oldest first, and
    cancels the retransmission timer. Called by the node when the overlay
    link is declared down: reliability is preserved *across the reroute* by
    re-injecting these packets into the routing level — the overlay-level
    behaviour that makes the Reliable Data Link survive sub-second
    rerouting (§III-A + §II-A). Some of the packets may already have
    reached the peer (ack in flight); destinations de-duplicate. *)

val sent : t -> int
(** First transmissions (not counting retransmissions). *)

val retransmissions : t -> int
val store_size : t -> int
(** Packets currently held for possible retransmission. *)

val delivered_up : t -> int
