open Strovl_sim
module Link = Strovl_net.Link

type service =
  | Best_effort
  | Reliable of Reliable_link.config
  | Realtime of Realtime_link.config
  | Fec of Fec_link.config

type side =
  | S_rel of Reliable_link.t
  | S_rt of Realtime_link.t
  | S_fec of Fec_link.t
  | S_best

type t = {
  engine : Engine.t;
  link : Link.t;
  mutable sender : side;
  mutable receiver : side;
  buffer : Deliver.t;
  mutable seq : int;
  mutable n_delivered : int;
  service : service;
}

let side_recv side msg =
  match side with
  | S_rel p -> Reliable_link.recv p msg
  | S_rt p -> Realtime_link.recv p msg
  | S_fec p -> Fec_link.recv p msg
  | S_best -> ()

let create engine link ~service ~deliver =
  let path_latency = Option.value ~default:(Time.ms 50) (Link.probe_delay link) in
  let mode =
    match service with
    | Best_effort -> Deliver.Unordered
    | Reliable _ -> Deliver.Ordered
    | Realtime cfg ->
      Deliver.Deadline (Time.add cfg.Realtime_link.budget path_latency)
    | Fec _ -> Deliver.Unordered
  in
  let t =
    {
      engine;
      link;
      sender = S_best;
      receiver = S_best;
      buffer = Deliver.create engine mode ~deliver;
      seq = 0;
      n_delivered = 0;
      service;
    }
  in
  let xmit_from src msg =
    let to_side () = if src = Link.a link then t.receiver else t.sender in
    Link.send link ~src ~bytes:(Msg.bytes msg) ~deliver:(fun () ->
        match to_side () with
        | S_best -> begin
          match msg with
          | Msg.Data { pkt; _ } ->
            t.n_delivered <- t.n_delivered + 1;
            Deliver.push t.buffer pkt
          | _ -> ()
        end
        | side -> side_recv side msg)
  in
  let rtt_hint = 2 * path_latency in
  let sender_ctx =
    {
      Lproto.engine;
      node = Link.a link;
      link = -1;
      xmit = xmit_from (Link.a link);
      up = ignore;
      try_up = (fun _ -> true);
      bandwidth_bps = 1_000_000_000;
      rtt_hint;
    }
  in
  let receiver_ctx =
    {
      Lproto.engine;
      node = Link.b link;
      link = -1;
      xmit = xmit_from (Link.b link);
      up =
        (fun pkt ->
          t.n_delivered <- t.n_delivered + 1;
          Deliver.push t.buffer pkt);
      try_up = (fun _ -> true);
      bandwidth_bps = 1_000_000_000;
      rtt_hint;
    }
  in
  (match service with
  | Best_effort -> ()
  | Reliable cfg ->
    t.sender <- S_rel (Reliable_link.create ~config:cfg sender_ctx);
    t.receiver <- S_rel (Reliable_link.create ~config:cfg receiver_ctx)
  | Realtime cfg ->
    t.sender <- S_rt (Realtime_link.create ~config:cfg sender_ctx);
    t.receiver <- S_rt (Realtime_link.create ~config:cfg receiver_ctx)
  | Fec cfg ->
    t.sender <- S_fec (Fec_link.create ~config:cfg sender_ctx);
    t.receiver <- S_fec (Fec_link.create ~config:cfg receiver_ctx));
  t

let make_packet t ~bytes ~tag =
  let flow =
    {
      Packet.f_src = Link.a t.link;
      f_sport = 0;
      f_dest = Packet.To_node (Link.b t.link);
      f_dport = 0;
    }
  in
  Packet.make ~flow ~routing:Packet.Link_state
    ~service:
      (match t.service with
      | Best_effort -> Packet.Best_effort
      | Reliable _ -> Packet.Reliable
      | Realtime cfg ->
        Packet.Realtime
          {
            deadline = cfg.Realtime_link.budget;
            n_requests = cfg.Realtime_link.n_requests;
            m_retrans = cfg.Realtime_link.m_retrans;
          }
      | Fec cfg ->
        Packet.Fec { fec_k = cfg.Fec_link.k; fec_r = cfg.Fec_link.r })
    ~seq:t.seq ~sent_at:(Engine.now t.engine) ~bytes ~tag ()

let send t ?(bytes = 1200) ?(tag = "") () =
  let pkt = make_packet t ~bytes ~tag in
  t.seq <- t.seq + 1;
  match t.sender with
  | S_rel p -> Reliable_link.send p pkt
  | S_rt p -> Realtime_link.send p pkt
  | S_fec p -> Fec_link.send p pkt
  | S_best ->
    let msg = Msg.Data { cls = 0; lseq = t.seq; pkt; auth = None } in
    Link.send t.link ~src:(Link.a t.link) ~bytes:(Msg.bytes msg)
      ~deliver:(fun () ->
        t.n_delivered <- t.n_delivered + 1;
        Deliver.push t.buffer pkt)

let sent t = t.seq
let delivered t = t.n_delivered

let retransmissions t =
  match t.sender with
  | S_rel p -> Reliable_link.retransmissions p
  | S_rt p -> Realtime_link.retransmissions p
  | S_fec p -> Fec_link.parity_sent p
  | S_best -> 0
