(** Group State maintenance (§II-B, Figure 2).

    Multicast and anycast are implemented as shared state: every overlay
    node knows, for each group, *which overlay nodes* have locally connected
    clients in the group — and nothing about the other nodes' individual
    clients. This two-level hierarchy is what makes global group state
    practical (§II-B). Only receivers join; any client may send to a group
    (§III-B).

    Membership changes are advertised with sequence-numbered group updates,
    flooded like LSUs. *)

type t

val create : self:int -> nnodes:int -> t

val self : t -> int
val version : t -> int
(** Increments whenever remote or local membership changes (multicast trees
    must be recomputed). *)

val join_local : t -> group:int -> port:int -> Msg.t option
(** A locally connected client (at the virtual port) joins. Returns a group
    update to flood when this makes the node a member it wasn't before. *)

val leave_local : t -> group:int -> port:int -> Msg.t option
(** Returns an update to flood when the node ceases to be a member. *)

val member_nodes : t -> group:int -> int list
(** Overlay nodes with members, ascending (includes self if applicable). *)

val has_local : t -> group:int -> bool
val local_ports : t -> group:int -> int list

val apply_update : t -> origin:int -> gseq:int -> (int * bool) list -> bool
(** Integrates a flooded membership update; [true] when new (forward it). *)

val groups : t -> int list
(** All groups with at least one member node, ascending. *)
