type t = { ctx : Lproto.ctx; mutable lseq : int; mutable n_sent : int; mutable n_recv : int }

let create ctx = { ctx; lseq = 0; n_sent = 0; n_recv = 0 }

let send t pkt =
  t.lseq <- t.lseq + 1;
  t.n_sent <- t.n_sent + 1;
  t.ctx.Lproto.xmit
    (Msg.Data { cls = Packet.service_class pkt.Packet.service; lseq = t.lseq; pkt; auth = None })

let recv t = function
  | Msg.Data { pkt; _ } ->
    t.n_recv <- t.n_recv + 1;
    t.ctx.Lproto.up pkt
  | _ -> ()

let sent t = t.n_sent
let received t = t.n_recv
