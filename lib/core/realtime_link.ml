open Strovl_sim

type config = {
  n_requests : int;
  m_retrans : int;
  budget : Time.t;
  history : int;
  request_spacing : Time.t option;
  retrans_spacing : Time.t option;
}

let default_config =
  {
    n_requests = 3;
    m_retrans = 3;
    budget = Time.ms 160;
    history = 4096;
    request_spacing = None;
    retrans_spacing = None;
  }

type t = {
  ctx : Lproto.ctx;
  cfg : config;
  cls : int;
  request_spacing : Time.t;
  retrans_spacing : Time.t;
  (* sender *)
  mutable next_lseq : int;
  ring : (int * Packet.t) option array; (* recent packets by lseq mod history *)
  requested : (int, unit) Hashtbl.t; (* lseqs already being retransmitted *)
  mutable n_sent : int;
  mutable n_retrans : int;
  (* receiver *)
  mutable recv_high : int;
  mutable cum_floor : int; (* lseqs <= floor considered handled (dup filter base) *)
  seen : (int, unit) Hashtbl.t;
  pending : (int, Engine.handle list ref) Hashtbl.t; (* missing lseq -> request timers *)
  mutable n_requests_sent : int;
  mutable n_up : int;
  (* [mh_] prefix: the config field [m_retrans] already takes the name. *)
  mh_retrans : Strovl_obs.Metrics.Counter.t;
  mh_requests : Strovl_obs.Metrics.Counter.t;
}

let create ?(config = default_config) ctx =
  if config.n_requests < 1 || config.m_retrans < 1 then
    invalid_arg "Realtime_link: N and M must be >= 1";
  (* Spread the attempts over what remains of the budget after one request
     round trip and a detection allowance, so "even the Mth (final)
     response to the Nth request will still reach the destination on time"
     (SIV-A): detection + (N-1)·Sq + rtt + (M-1)·Sr <= budget, with
     Sr = Sq/(M+1). *)
  let request_spacing =
    match config.request_spacing with
    | Some s -> s
    | None ->
      let detection_allowance = config.budget / 8 in
      let avail =
        max (Time.ms 2) (config.budget - ctx.Lproto.rtt_hint - detection_allowance)
      in
      if config.n_requests = 1 then avail
      else begin
        let denom =
          float_of_int (config.n_requests - 1)
          +. (float_of_int (config.m_retrans - 1)
             /. float_of_int (config.m_retrans + 1))
        in
        max (Time.ms 1) (int_of_float (float_of_int avail /. denom))
      end
  in
  let retrans_spacing =
    match config.retrans_spacing with
    | Some s -> s
    | None -> request_spacing / (config.m_retrans + 1)
  in
  {
    ctx;
    cfg = config;
    cls = Packet.service_class (Packet.Realtime { deadline = config.budget; n_requests = config.n_requests; m_retrans = config.m_retrans });
    request_spacing;
    retrans_spacing;
    next_lseq = 0;
    ring = Array.make config.history None;
    requested = Hashtbl.create 32;
    n_sent = 0;
    n_retrans = 0;
    recv_high = 0;
    cum_floor = 0;
    seen = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    n_requests_sent = 0;
    n_up = 0;
    mh_retrans =
      Strovl_obs.Metrics.counter
        ~labels:[ ("proto", "realtime") ]
        "strovl_link_retransmits_total";
    mh_requests =
      Strovl_obs.Metrics.counter
        ~labels:[ ("proto", "realtime") ]
        "strovl_link_nacks_total";
  }

(* ---------------- sender ---------------- *)

let xmit_data t lseq pkt =
  t.ctx.Lproto.xmit (Msg.Data { cls = t.cls; lseq; pkt; auth = None })

let send t pkt =
  t.next_lseq <- t.next_lseq + 1;
  let lseq = t.next_lseq in
  t.ring.(lseq mod t.cfg.history) <- Some (lseq, pkt);
  Hashtbl.remove t.requested lseq;
  t.n_sent <- t.n_sent + 1;
  xmit_data t lseq pkt

let handle_request t lseq =
  (* Schedule M spaced retransmissions on the first request only; later
     requests for the same packet are the receiver's insurance against
     request loss and must not multiply the responses. *)
  if not (Hashtbl.mem t.requested lseq) then begin
    match t.ring.(lseq mod t.cfg.history) with
    | Some (l, pkt) when l = lseq ->
      Hashtbl.replace t.requested lseq ();
      for j = 0 to t.cfg.m_retrans - 1 do
        ignore
          (Engine.schedule t.ctx.Lproto.engine ~delay:(j * t.retrans_spacing)
             (fun () ->
               t.n_retrans <- t.n_retrans + 1;
               Strovl_obs.Metrics.Counter.incr t.mh_retrans;
               Lproto.trace_pkt t.ctx pkt (Strovl_obs.Trace.Retransmit t.ctx.Lproto.link);
               xmit_data t lseq pkt))
      done
    | _ -> () (* too old: fell out of the history ring *)
  end

(* ---------------- receiver ---------------- *)

let cancel_pending t lseq =
  match Hashtbl.find_opt t.pending lseq with
  | Some timers ->
    List.iter (Engine.cancel t.ctx.Lproto.engine) !timers;
    Hashtbl.remove t.pending lseq
  | None -> ()

let request_missing t lseq =
  if not (Hashtbl.mem t.pending lseq) then begin
    let timers = ref [] in
    Hashtbl.replace t.pending lseq timers;
    for i = 0 to t.cfg.n_requests - 1 do
      let h =
        Engine.schedule t.ctx.Lproto.engine ~delay:(i * t.request_spacing)
          (fun () ->
            t.n_requests_sent <- t.n_requests_sent + 1;
            Strovl_obs.Metrics.Counter.incr t.mh_requests;
            Lproto.trace t.ctx (Strovl_obs.Trace.Strike (t.ctx.Lproto.link, lseq));
            t.ctx.Lproto.xmit (Msg.Rt_request { lseq }))
      in
      timers := h :: !timers
    done;
    (* Stop tracking the slot once the budget is exhausted (bounds timer
       state). A copy that still arrives afterwards is delivered normally —
       judging it against the application deadline is the destination
       buffer's job, not the link's. *)
    let give_up =
      Engine.schedule t.ctx.Lproto.engine ~delay:(2 * t.cfg.budget) (fun () ->
          Hashtbl.remove t.pending lseq)
    in
    timers := give_up :: !timers
  end

let is_dup t lseq = lseq <= t.cum_floor || Hashtbl.mem t.seen lseq

(* Keep the seen set bounded: slide the floor so it covers the history
   window behind recv_high. *)
let compact t =
  let new_floor = t.recv_high - t.cfg.history in
  if new_floor > t.cum_floor then begin
    for l = t.cum_floor + 1 to new_floor do
      Hashtbl.remove t.seen l;
      cancel_pending t l
    done;
    t.cum_floor <- new_floor
  end

let handle_data t lseq pkt =
  if not (is_dup t lseq) then begin
    cancel_pending t lseq;
    if lseq > t.recv_high then begin
      for g = t.recv_high + 1 to lseq - 1 do
        if not (is_dup t g) then request_missing t g
      done;
      t.recv_high <- lseq
    end;
    Hashtbl.replace t.seen lseq ();
    compact t;
    t.n_up <- t.n_up + 1;
    t.ctx.Lproto.up pkt
  end

let recv t = function
  | Msg.Data { lseq; pkt; _ } -> handle_data t lseq pkt
  | Msg.Rt_request { lseq } -> handle_request t lseq
  | Msg.Link_ack _ | Msg.Link_nack _ | Msg.It_ack _ | Msg.Fec_parity _
  | Msg.Hello _ | Msg.Hello_ack _ | Msg.Probe _ | Msg.Probe_ack _
  | Msg.Lsu _ | Msg.Group_update _ ->
    ()

let sent t = t.n_sent
let retransmissions t = t.n_retrans
let requests_sent t = t.n_requests_sent
let delivered_up t = t.n_up

let wire_overhead t =
  if t.n_sent = 0 then 1.0
  else float_of_int (t.n_sent + t.n_retrans) /. float_of_int t.n_sent
