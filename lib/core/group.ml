module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type t = {
  self : int;
  nnodes : int;
  mutable members : IntSet.t IntMap.t; (* group -> overlay nodes with members *)
  mutable local : IntSet.t IntMap.t; (* group -> local client ports *)
  seqs : int array; (* highest update seq per origin *)
  mutable my_seq : int;
  mutable version : int;
}

let create ~self ~nnodes =
  {
    self;
    nnodes;
    members = IntMap.empty;
    local = IntMap.empty;
    seqs = Array.make nnodes (-1);
    my_seq = 0;
    version = 0;
  }

let self t = t.self
let version t = t.version

let node_set t group =
  match IntMap.find_opt group t.members with
  | Some s -> s
  | None -> IntSet.empty

let local_set t group =
  match IntMap.find_opt group t.local with Some s -> s | None -> IntSet.empty

let my_membership t =
  (* (group, member?) entries describing this node's current local state;
     we advertise all groups we are in. *)
  IntMap.fold (fun g ports acc -> if IntSet.is_empty ports then acc else (g, true) :: acc) t.local []

let make_update t changed_group member =
  t.my_seq <- t.my_seq + 1;
  let memb = (changed_group, member) :: List.remove_assoc changed_group (my_membership t) in
  Msg.Group_update { origin = t.self; gseq = t.my_seq; memb; auth = None }

let join_local t ~group ~port =
  let ports = local_set t group in
  let was_member = not (IntSet.is_empty ports) in
  t.local <- IntMap.add group (IntSet.add port ports) t.local;
  if was_member then None
  else begin
    t.members <- IntMap.add group (IntSet.add t.self (node_set t group)) t.members;
    t.version <- t.version + 1;
    Some (make_update t group true)
  end

let leave_local t ~group ~port =
  let ports = IntSet.remove port (local_set t group) in
  t.local <- IntMap.add group ports t.local;
  if not (IntSet.is_empty ports) then None
  else if IntSet.mem t.self (node_set t group) then begin
    t.members <- IntMap.add group (IntSet.remove t.self (node_set t group)) t.members;
    t.version <- t.version + 1;
    Some (make_update t group false)
  end
  else None

let member_nodes t ~group = IntSet.elements (node_set t group)
let has_local t ~group = not (IntSet.is_empty (local_set t group))
let local_ports t ~group = IntSet.elements (local_set t group)

let apply_update t ~origin ~gseq memb =
  if origin < 0 || origin >= t.nnodes || origin = t.self then false
  else if gseq <= t.seqs.(origin) then false
  else begin
    t.seqs.(origin) <- gseq;
    let changed = ref false in
    let update g m =
      let s = node_set t g in
      let s' = if m then IntSet.add origin s else IntSet.remove origin s in
      if not (IntSet.equal s s') then begin
        t.members <- IntMap.add g s' t.members;
        changed := true
      end
    in
    List.iter (fun (g, m) -> update g m) memb;
    (* The update is a complete membership snapshot for [origin]: any group
       we believed it was in but that is absent from the snapshot is stale
       (protects against earlier lost floods). *)
    IntMap.iter
      (fun g s ->
        if IntSet.mem origin s && not (List.mem_assoc g memb) then update g false)
      t.members;
    if !changed then t.version <- t.version + 1;
    true
  end

let groups t =
  IntMap.fold
    (fun g s acc -> if IntSet.is_empty s then acc else g :: acc)
    t.members []
  |> List.rev
