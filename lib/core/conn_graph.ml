module Graph = Strovl_topo.Graph

type side = { mutable up : bool; mutable metric : int; mutable loss : int }

type t = {
  self : int;
  g : Graph.t;
  (* Per link: the state advertised by each endpoint (side 0 = the endpoint
     listed first by Graph.endpoints). *)
  sides : side array array;
  seqs : int array; (* highest LSU seq per origin *)
  mutable my_seq : int;
  mutable version : int;
  mutable effective : bool; (* weight = loss-inflated metric *)
  (* Domain-local metric handles, bound at [create] time (Strovl_obs.Ctx). *)
  m_link_changes : Strovl_obs.Metrics.Counter.t;
  m_lsu_applied : Strovl_obs.Metrics.Counter.t;
}

let side_index g link node =
  let a, b = Graph.endpoints g link in
  if node = a then 0
  else if node = b then 1
  else invalid_arg "Conn_graph: node not an endpoint of link"

let create ~self g ~metric =
  {
    self;
    g;
    sides =
      Array.init (Graph.link_count g) (fun l ->
          [|
            { up = true; metric = metric l; loss = 0 };
            { up = true; metric = metric l; loss = 0 };
          |]);
    seqs = Array.make (Graph.n g) (-1);
    my_seq = 0;
    version = 0;
    effective = false;
    m_link_changes =
      Strovl_obs.Metrics.counter "strovl_link_state_changes_total";
    m_lsu_applied = Strovl_obs.Metrics.counter "strovl_lsu_applied_total";
  }

let self t = t.self
let graph t = t.g
let version t = t.version

let usable t l = t.sides.(l).(0).up && t.sides.(l).(1).up
let metric t l = max t.sides.(l).(0).metric t.sides.(l).(1).metric
let loss t l = max t.sides.(l).(0).loss t.sides.(l).(1).loss

let effective_metric t l =
  let p = loss t l in
  if p >= 800 then max_int / 4
  else begin
    let keep = 1000 - p in
    (* metric / (1-p)^2, in integer permille arithmetic *)
    metric t l * 1000 / keep * 1000 / keep
  end

let use_effective_metric t b =
  if t.effective <> b then begin
    t.effective <- b;
    t.version <- t.version + 1
  end

let weight t l = if t.effective then effective_metric t l else metric t l

let local_view t l = t.sides.(l).(side_index t.g l t.self).up

let my_links_info t =
  List.map
    (fun l ->
      let s = t.sides.(l).(side_index t.g l t.self) in
      (l, { Msg.li_up = s.up; li_metric = s.metric; li_loss = s.loss }))
    (Graph.incident t.g t.self)

let make_lsu t =
  t.my_seq <- t.my_seq + 1;
  Msg.Lsu { origin = t.self; lsu_seq = t.my_seq; links = my_links_info t; auth = None }

let set_local t ~link ~up =
  let s = t.sides.(link).(side_index t.g link t.self) in
  if s.up = up then None
  else begin
    s.up <- up;
    t.version <- t.version + 1;
    Strovl_obs.Metrics.Counter.incr t.m_link_changes;
    if Strovl_obs.Trace.armed () then
      Strovl_obs.Trace.emit ~node:t.self (Strovl_obs.Trace.Reroute (link, up));
    Some (make_lsu t)
  end

let set_local_metric t ~link ~metric =
  let s = t.sides.(link).(side_index t.g link t.self) in
  let significant =
    let old = float_of_int s.metric and nw = float_of_int metric in
    Float.abs (nw -. old) > 0.1 *. Float.max old 1.
  in
  if not significant then begin
    s.metric <- metric;
    None
  end
  else begin
    s.metric <- metric;
    t.version <- t.version + 1;
    Some (make_lsu t)
  end

let set_local_loss t ~link ~loss =
  let loss = max 0 (min 1000 loss) in
  let s = t.sides.(link).(side_index t.g link t.self) in
  let significant = abs (loss - s.loss) > 20 in
  if not significant then begin
    s.loss <- loss;
    None
  end
  else begin
    s.loss <- loss;
    t.version <- t.version + 1;
    Some (make_lsu t)
  end

let refresh_lsu t = make_lsu t

let apply_lsu t ~origin ~lsu_seq links =
  if origin < 0 || origin >= Graph.n t.g then false
  else if origin = t.self then false (* our own flood echoed back *)
  else if lsu_seq <= t.seqs.(origin) then false
  else begin
    t.seqs.(origin) <- lsu_seq;
    let changed = ref false in
    List.iter
      (fun (l, info) ->
        if l >= 0 && l < Graph.link_count t.g then begin
          let a, b = Graph.endpoints t.g l in
          (* Accept only claims about the origin's own incident links: a
             compromised node cannot take down a remote link by lying. *)
          if a = origin || b = origin then begin
            let s = t.sides.(l).(side_index t.g l origin) in
            if
              s.up <> info.Msg.li_up
              || s.metric <> info.Msg.li_metric
              || s.loss <> info.Msg.li_loss
            then begin
              s.up <- info.Msg.li_up;
              s.metric <- info.Msg.li_metric;
              s.loss <- info.Msg.li_loss;
              changed := true
            end
          end
        end)
      links;
    if !changed then begin
      t.version <- t.version + 1;
      Strovl_obs.Metrics.Counter.incr t.m_lsu_applied
    end;
    (* A fresher LSU was accepted (seq advanced), whether or not any side
       changed: the auditor uses this to bound reroute propagation. *)
    if Strovl_obs.Trace.armed () then
      Strovl_obs.Trace.emit ~node:t.self (Strovl_obs.Trace.Lsu_apply origin);
    true
  end

let highest_seq t origin = t.seqs.(origin)
