(** The session interface (Figure 2, top level): how applications use the
    overlay.

    "To receive service from the overlay, a client simply connects to an
    overlay node"; it is addressed by that node plus a virtual port, and
    selects routing + link services per flow (§II-B, §II-C). A client can
    join multicast groups (receivers only — any client may send to a
    group, §III-B) and open any number of sender handles with different
    service combinations.

    On the receive side the client runs the final-destination reorder
    buffer per incoming flow ({!Deliver}), with the mode implied by the
    flow's service: Reliable → strict in-order; Realtime → in-order with
    deadline give-up; others → immediate. *)

type t

val attach : Node.t -> port:int -> t
(** Connects a client at a virtual port of an overlay node. *)

val detach : t -> unit
val node_id : t -> int
val port : t -> int

val join : t -> group:int -> unit
val leave : t -> group:int -> unit

val set_receiver : t -> ?reorder:bool -> (Packet.t -> unit) -> unit
(** Registers the application delivery callback. With [reorder] (default
    true), packets pass through the per-flow destination buffer first. *)

val received : t -> int
(** Packets handed to the application callback. *)

(** A sender handle fixes a flow (destination, ports, service, routing
    preference) and stamps sequence numbers. *)
type sender

type route_pref =
  | Table  (** link-state routing — the overlay's default *)
  | Scheme of Strovl_topo.Dissem.scheme
      (** source-based: stamp each packet with a dissemination mask built
          from the node's current view (§II-B) *)

val sender :
  t ->
  ?service:Packet.service ->
  ?route:route_pref ->
  dest:Packet.dest ->
  dport:int ->
  unit ->
  sender

val send : sender -> ?bytes:int -> ?tag:string -> unit -> bool
(** Sends the next packet of the flow ([bytes] defaults to 1200). Returns
    [false] only when an IT-Reliable flow is refused by backpressure (the
    sequence number is not consumed, so a later retry keeps the stream
    dense). *)

val sent : sender -> int
val flow_of : sender -> Packet.flow
