type node = int
type port = int
type group = int

type dest = To_node of node | To_group of group | Any_of_group of group

type routing = Link_state | Source_mask of Strovl_topo.Bitmask.t

type rt_params = {
  deadline : Strovl_sim.Time.t;
  n_requests : int;
  m_retrans : int;
}

type fec_params = { fec_k : int; fec_r : int }

type service =
  | Best_effort
  | Reliable
  | Realtime of rt_params
  | It_priority of int
  | It_reliable
  | Fec of fec_params

type flow = { f_src : node; f_sport : port; f_dest : dest; f_dport : port }

type t = {
  flow : flow;
  routing : routing;
  service : service;
  seq : int;
  sent_at : Strovl_sim.Time.t;
  bytes : int;
  tag : string;
  auth : int64 option;
  hops : int;
  ingress : node;
  replay : bool;
}

let make ~flow ~routing ~service ~seq ~sent_at ~bytes ?(tag = "") ?auth () =
  if bytes < 0 then invalid_arg "Packet.make: negative size";
  {
    flow;
    routing;
    service;
    seq;
    sent_at;
    bytes;
    tag;
    auth;
    hops = 0;
    ingress = -1;
    replay = false;
  }

let next_hop_copy t = { t with hops = t.hops + 1 }

let with_ingress t node = { t with ingress = node }

let as_replay t = { t with replay = true }

let max_hops = 64

let signable t =
  Printf.sprintf "pkt/%d/%d/%d/%d/%d" t.flow.f_src t.flow.f_sport t.flow.f_dport
    t.seq t.bytes

let service_class = function
  | Best_effort -> 0
  | Reliable -> 1
  | Realtime _ -> 2
  | It_priority _ -> 3
  | It_reliable -> 4
  | Fec _ -> 5

let class_count = 6

let header_bytes t =
  (* src/dst addressing (8) + ports (4) + seq (4) + timestamp (8) + service
     and flags (4) + source-route mask when present. *)
  let base = 28 in
  match t.routing with
  | Link_state -> base
  | Source_mask m -> base + Strovl_topo.Bitmask.byte_size m

(* Destination ranges are disjoint so distinct flows stay distinct in the
   flight recorder: nodes as themselves, groups offset. *)
let obs_flow f =
  let dst =
    match f.f_dest with
    | To_node n -> n
    | To_group g -> 1_000_000 + g
    | Any_of_group g -> 2_000_000 + g
  in
  {
    Strovl_obs.Trace.fi_src = f.f_src;
    fi_sport = f.f_sport;
    fi_dst = dst;
    fi_dport = f.f_dport;
  }

let dest_compare a b =
  let rank = function To_node _ -> 0 | To_group _ -> 1 | Any_of_group _ -> 2 in
  match (a, b) with
  | To_node x, To_node y | To_group x, To_group y | Any_of_group x, Any_of_group y
    ->
    compare x y
  | _ -> compare (rank a) (rank b)

let flow_compare a b =
  let c = compare a.f_src b.f_src in
  if c <> 0 then c
  else begin
    let c = compare a.f_sport b.f_sport in
    if c <> 0 then c
    else begin
      let c = dest_compare a.f_dest b.f_dest in
      if c <> 0 then c else compare a.f_dport b.f_dport
    end
  end

let pp_dest ppf = function
  | To_node n -> Format.fprintf ppf "node:%d" n
  | To_group g -> Format.fprintf ppf "group:%d" g
  | Any_of_group g -> Format.fprintf ppf "any:%d" g

let pp_flow ppf f =
  Format.fprintf ppf "%d:%d->%a:%d" f.f_src f.f_sport pp_dest f.f_dest f.f_dport

let service_name = function
  | Best_effort -> "best-effort"
  | Reliable -> "reliable"
  | Realtime _ -> "realtime"
  | It_priority _ -> "it-priority"
  | It_reliable -> "it-reliable"
  | Fec _ -> "fec"

let pp ppf t =
  Format.fprintf ppf "[%a #%d %s %dB]" pp_flow t.flow t.seq
    (service_name t.service) t.bytes
