(** The transport seam at the [Node]/network boundary.

    An overlay node never touches the medium its links run over: each
    incident link is wired with an {!endpoint} — a description of the link
    plus an opaque [xmit] closure — and incoming wire messages are pushed
    into [Node.receive]. Everything above this seam (link protocols,
    probing, routing, dedup, delivery) is medium-agnostic.

    Two transports exist:

    - the simulated network ([Net]): [xmit] charges the modeled
      bandwidth/latency/loss of the underlay and delivers in virtual time;
    - the real-time runtime ([Strovl_rt.Peer_link]): [xmit] frames the
      message with the {!Wire} codec and writes a UDP datagram to the peer
      daemon's socket.

    The companion clock seam is [Strovl_sim.Engine_intf]: the node reads
    time and schedules timers only through its engine, whose clock is
    virtual under simulation and monotonic wall-clock under the runtime. *)

type endpoint = {
  ep_link : int;  (** overlay link id (global, from the shared topology) *)
  ep_peer : int;  (** overlay node at the other end *)
  ep_bandwidth_bps : int;  (** access bandwidth, for link self-pacing *)
  ep_xmit : Msg.t -> unit;  (** carry one wire message to the peer *)
}

val attach : Node.t -> endpoint -> unit
(** Wires the endpoint into the node's link level. Must precede
    [Node.start]; the transport must route messages arriving from the peer
    into [Node.receive node ~link:ep_link]. *)
