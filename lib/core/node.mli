(** The overlay node daemon (Figure 2).

    Runs the three-level software architecture on one overlay node: the
    *session interface* (client attach, per-flow service selection), the
    *routing level* (link-state and source-based forwarding, connectivity
    graph maintenance, group state), and the *link level* (one protocol
    state machine per service class on each incident overlay link).

    The node is transport-agnostic: {!attach_link} wires each incident
    overlay link with an [xmit] closure (provided by {!Net}), and the
    network calls {!receive} when a wire message arrives. Per-packet
    forwarding charges a configurable CPU cost (§II-D: "less than 1 ms
    additional latency per intermediate overlay node"). *)

type t

type config = {
  hello_interval : Strovl_sim.Time.t;  (** default 100 ms *)
  hello_timeout : Strovl_sim.Time.t;
      (** link declared down after this silence; default 350 ms — the knob
          behind "sub-second rerouting" (§II-A) *)
  lsu_refresh : Strovl_sim.Time.t;  (** periodic re-flood; default 10 s *)
  proc_delay : Strovl_sim.Time.t;
      (** CPU time to process one packet; default 50 µs *)
  proc_rate_pps : int option;
      (** finite processing capacity (§II-D): with [Some r], the node is a
          serial CPU server handling [r × cluster_size] packets/s; packets
          queue for the CPU and are dropped beyond [cpu_queue] of backlog.
          [None] (default) models a node comfortably at line speed. *)
  cluster_size : int;
      (** computers in this node's data-center cluster (§II-D: "additional
          processing resources can be deployed as clusters"); multiplies
          [proc_rate_pps]; default 1 *)
  cpu_queue : Strovl_sim.Time.t;
      (** max CPU backlog before overload drops; default 20 ms *)
  reliable : Reliable_link.config;
  realtime : Realtime_link.config;
  it_priority : It_priority.config;
  it_reliable : It_reliable.config;
  fec : Fec_link.config;
  authenticate : bool;
      (** sign and verify flooded state updates and IT data (§IV-B) *)
  loss_aware_routing : bool;
      (** route on the loss-inflated metric (§II-B: the connectivity graph
          shares "loss and latency characteristics") so lossy-but-alive
          links are avoided when a clean detour exists; default off *)
  probe : Probe_link.config option;
      (** run the health probe protocol on every incident link, feeding
          [Strovl_obs.Health] (RTT/jitter/loss EWMAs + k-missed liveness
          verdict); default [None] (off — and with it off the forward path
          carries no probing cost at all) *)
  probe_routing : bool;
      (** advertise probe-derived latency/loss in LSUs instead of the
          hello protocol's estimates (the hello protocol keeps its
          liveness-timeout role), and let a dead probe verdict take the
          link down; combine with [loss_aware_routing] to route on the
          probe-derived expected latency (latency × 1/(1-p)², §IV).
          Requires [probe]; default off *)
}

val default_config : config

type counters = {
  mutable forwarded : int;  (** data packets sent onward *)
  mutable delivered : int;  (** data packets handed to local sessions *)
  mutable dropped_no_route : int;
  mutable dropped_ttl : int;
  mutable dropped_auth : int;  (** failed origin-signature verification *)
  mutable dropped_dup : int;  (** redundant copies suppressed (de-dup) *)
  mutable dropped_backpressure : int;  (** IT-Reliable refusals *)
  mutable dropped_overload : int;  (** CPU queue overflow (§II-D) *)
  mutable lsu_floods : int;
  mutable group_floods : int;
}

val create :
  ?config:config ->
  ?registry:Strovl_crypto.Auth.registry ->
  engine:Strovl_sim.Engine.t ->
  graph:Strovl_topo.Graph.t ->
  id:int ->
  metric:(int -> int) ->
  unit ->
  t

val id : t -> int
val config : t -> config
val conn : t -> Conn_graph.t
val group : t -> Group.t
val route : t -> Route.t
val counters : t -> counters
val engine : t -> Strovl_sim.Engine.t

val attach_link :
  t ->
  link:int ->
  neighbor:int ->
  bandwidth_bps:int ->
  xmit:(Msg.t -> unit) ->
  unit
(** Wires an incident overlay link. [xmit] must carry the message to the
    neighbor's {!receive}. Must be called before {!start}. *)

val set_link_suspect_hook : t -> (int -> unit) -> unit
(** Called when the hello protocol declares an incident link down — the
    network layer uses it to rotate the link to a different ISP
    (multihoming, §II-A). *)

val start : t -> unit
(** Begins the hello protocol and periodic LSU refresh on every attached
    link. *)

val stop : t -> unit
(** Shuts the node down in place: hello/LSU loops stop rescheduling, link
    probing is cancelled, and subsequent {!receive} calls are dropped.
    For hosts whose engine outlives the node — the wall-clock runtime
    closing a daemon, or tests killing one node of an in-process overlay.
    Irreversible. *)

val receive : t -> link:int -> Msg.t -> unit
(** Entry point for wire messages from the attached links. *)

val register_session : t -> port:int -> deliver:(Packet.t -> unit) -> unit
(** Attaches a client session at a virtual port (§II-B addressing). *)

val unregister_session : t -> port:int -> unit

val join_group : t -> group:int -> port:int -> unit
val leave_group : t -> group:int -> port:int -> unit

val originate : t -> Packet.t -> bool
(** Injects a locally originated packet into the routing level. Returns
    [false] only for [It_reliable] packets refused by backpressure; all
    other services always accept (they may drop later per their
    semantics). Signs the packet when authentication is on. *)

val link_up_view : t -> link:int -> bool
(** This node's current hello-protocol verdict on an incident link. *)

val rtt_estimate : t -> link:int -> Strovl_sim.Time.t
