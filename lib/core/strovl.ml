(** Structured overlay networks — the core library.

    An OCaml realization of the structured overlay framework of Babay et
    al., "Structured Overlay Networks for a New Generation of Internet
    Services" (ICDCS 2017): a small set of well-provisioned overlay nodes in
    data centers, connected by short multihomed overlay links, running a
    three-level software architecture (session interface / routing level /
    link level) with global shared state and flow-based processing.

    Typical use: build a topology spec ({!Strovl_topo.Gen}), instantiate the
    overlay with {!Net.create}, {!Net.start} and {!Net.settle}, then attach
    {!Client}s and open sender handles with the per-flow services of
    Figure 2 — best effort, hop-by-hop reliable, NM-Strikes real-time, or
    the intrusion-tolerant priority/reliable classes, over link-state or
    source-based (disjoint paths / dissemination graphs / constrained
    flooding) routing. *)

module Packet = Packet
module Msg = Msg
module Wire = Wire
module Dedup = Dedup
module Deliver = Deliver
module Conn_graph = Conn_graph
module Group = Group
module Route = Route
module Lproto = Lproto
module Best_effort = Best_effort
module Reliable_link = Reliable_link
module Realtime_link = Realtime_link
module Probe_link = Probe_link
module It_priority = It_priority
module It_reliable = It_reliable
module Fec_link = Fec_link
module Node = Node
module Transport = Transport
module Net = Net
module Client = Client
module E2e = E2e
