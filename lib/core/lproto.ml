(** Shared plumbing for link-level protocols (Figure 2, bottom layer).

    Each overlay link endpoint instantiates one protocol state machine per
    service class in use; flows of the same class are aggregated on the link
    (§II-C). The node wires each instance to the link with this context. *)

type ctx = {
  engine : Strovl_sim.Engine.t;
  node : int;
      (** id of the overlay node this endpoint lives on ([-1] for the
          direct-path e2e baselines) — flight-recorder identity *)
  link : int;
      (** id of the overlay link this endpoint serves ([-1] off-overlay) *)
  xmit : Msg.t -> unit;
      (** transmit a wire message to the peer endpoint of this link *)
  up : Packet.t -> unit;
      (** hand a received data packet up to the node's routing level *)
  try_up : Packet.t -> bool;
      (** like [up] but refusable — IT-Reliable uses the refusal to create
          hop-by-hop backpressure (§IV-B); returns acceptance *)
  bandwidth_bps : int;  (** the link's access bandwidth, for self-pacing *)
  rtt_hint : Strovl_sim.Time.t;
      (** the link's round-trip estimate, for retransmission timers *)
}

(** Flight-recorder helpers: guard first so the disabled path costs one
    dereference and no allocation. *)
let trace_pkt ctx pkt ev =
  if Strovl_obs.Trace.armed () then
    Strovl_obs.Trace.emit
      ~flow:(Packet.obs_flow pkt.Packet.flow)
      ~seq:pkt.Packet.seq ~node:ctx.node ev

let trace ctx ev =
  if Strovl_obs.Trace.armed () then Strovl_obs.Trace.emit ~node:ctx.node ev

(** Serialization time of [bytes] at the context's bandwidth (µs, ≥1). *)
let tx_time ctx bytes =
  max 1
    (int_of_float
       (Float.round (float_of_int (bytes * 8) *. 1e6 /. float_of_int ctx.bandwidth_bps)))
