(** End-to-end transport baselines over a direct Internet path.

    The comparison targets of Figure 3 (§III-A): the same ARQ machinery the
    overlay runs per 10 ms link, run once across the whole 50 ms path, so a
    recovery costs a full end-to-end round trip (≥150 ms total) instead of
    one short-link round trip. Internally this reuses {!Reliable_link} /
    {!Realtime_link} verbatim — the protocols are identical; only the span
    differs, which is precisely the paper's point.

    The "path" is a {!Strovl_net.Link} between the two sites, i.e. the ISP's
    multi-hop routed Internet path with access queueing. *)

type service =
  | Best_effort
  | Reliable of Reliable_link.config
  | Realtime of Realtime_link.config
  | Fec of Fec_link.config

type t

val create :
  Strovl_sim.Engine.t ->
  Strovl_net.Link.t ->
  service:service ->
  deliver:(Packet.t -> unit) ->
  t
(** Sender lives at the link's [a] endpoint, receiver at [b]. [deliver]
    fires in order at the receiver: strictly in-order for [Reliable],
    deadline-bounded in-order for [Realtime] (using the protocol's budget
    plus the path latency), immediate for [Best_effort]. *)

val send : t -> ?bytes:int -> ?tag:string -> unit -> unit
(** Sends the next packet of the end-to-end stream. *)

val sent : t -> int
val delivered : t -> int
val retransmissions : t -> int
