(** NM-Strikes real-time link protocol (Figure 4, §IV-A, patent [5]).

    Guarantees complete *timeliness* rather than complete reliability: a
    packet is useful only within its deadline (≈200 ms one-way for live TV),
    so recovery must both finish in time and survive *correlated* loss
    bursts. The protocol:

    - the receiver, detecting a missing sequence number, schedules [N]
      retransmission requests spread over the recovery budget, so that not
      all requests fall inside one loss burst;
    - the sender, on the *first* request received for a packet, schedules
      [M] retransmissions, also spread out;
    - receiving the packet cancels the receiver's remaining requests;
      requests for packets the sender no longer buffers are ignored.

    Expected overhead is [1 + M·p] per packet at loss rate [p] (§IV-A),
    since a request triggers all M retransmissions.

    Spacing: the recovery budget [B] (deadline minus path latency) is
    divided so the M-th response to the N-th request can still arrive:
    request i at [i·B/(N+1)] after detection, retransmission j at
    [j·(B/(N+1))/(M+1)] after the request. *)

type t

type config = {
  n_requests : int;
  m_retrans : int;
  budget : Strovl_sim.Time.t;
      (** per-link recovery budget, e.g. 160 ms = 200 ms deadline − 40 ms
          continental propagation (§IV-A) *)
  history : int;
      (** packets the sender keeps for retransmission (ring) *)
  request_spacing : Strovl_sim.Time.t option;
      (** ablation override; default spreads requests over the budget —
          §IV-A: "the requests should be spaced out as much as possible" to
          dodge correlated loss. Set small to model naive back-to-back
          requests. *)
  retrans_spacing : Strovl_sim.Time.t option;
}

val default_config : config
(** N=3, M=3, budget 160 ms, history 4096 — the live-TV setting. *)

val create : ?config:config -> Lproto.ctx -> t
val send : t -> Packet.t -> unit
val recv : t -> Msg.t -> unit

val sent : t -> int
val retransmissions : t -> int
val requests_sent : t -> int
val delivered_up : t -> int

val wire_overhead : t -> float
(** Measured (first transmissions + retransmissions) / first transmissions,
    the paper's [1 + Mp] cost. Requests are excluded (they are tiny). *)
