module FlowMap = Map.Make (struct
  type t = Packet.flow

  let compare = Packet.flow_compare
end)

type window = {
  bits : Bytes.t; (* ring of seen flags indexed by seq mod window *)
  mutable high : int; (* highest seq recorded, -1 initially *)
}

type t = {
  window : int;
  mutable map : window FlowMap.t;
  (* Last flow touched: packets arrive in per-flow bursts, so one memo slot
     skips the map descent (and its option allocation) almost always. *)
  mutable last : (Packet.flow * window) option;
}

let create ?(window = 4096) () =
  if window <= 0 then invalid_arg "Dedup.create";
  { window; map = FlowMap.empty; last = None }

let get_window t flow =
  match t.last with
  | Some (f, w) when f == flow || Packet.flow_compare f flow = 0 -> w
  | _ ->
    let w =
      match FlowMap.find_opt flow t.map with
      | Some w -> w
      | None ->
        let w = { bits = Bytes.make t.window '\000'; high = -1 } in
        t.map <- FlowMap.add flow w t.map;
        w
    in
    t.last <- Some (flow, w);
    w

let idx t seq = seq mod t.window

let lookup t w seq =
  if seq < 0 then invalid_arg "Dedup: negative seq";
  if w.high >= 0 && seq <= w.high - t.window then `Old
  else if seq <= w.high then
    if Bytes.get w.bits (idx t seq) = '\001' then `Seen else `Fresh
  else `Ahead

let record t w seq =
  if seq > w.high then begin
    (* Slide the window forward, clearing slots for sequence numbers that
       now fall inside it but were never recorded. *)
    let from = max (w.high + 1) (seq - t.window + 1) in
    for s = from to seq - 1 do
      Bytes.set w.bits (idx t s) '\000'
    done;
    w.high <- seq
  end;
  Bytes.set w.bits (idx t seq) '\001'

let seen t flow seq =
  let w = get_window t flow in
  match lookup t w seq with
  | `Old -> true
  | `Seen -> true
  | `Fresh | `Ahead ->
    record t w seq;
    false

let peek t flow seq =
  match t.last with
  | Some (f, w) when f == flow || Packet.flow_compare f flow = 0 -> (
    match lookup t w seq with `Old | `Seen -> true | `Fresh | `Ahead -> false)
  | _ -> (
    match FlowMap.find_opt flow t.map with
    | None -> false
    | Some w -> (
      match lookup t w seq with `Old | `Seen -> true | `Fresh | `Ahead -> false))

let flows t = FlowMap.cardinal t.map
