(** The routing level (§II-B, Figure 2): forwarding decisions computed from
    the shared connectivity graph and group state.

    Each node owns one [Route.t]. Tables are cached and recomputed lazily
    whenever {!Conn_graph.version} or {!Group.version} changes — a version
    bump caused by a flooded LSU is exactly the paper's sub-second reroute.
    Because every node computes over the same (eventually consistent)
    global state, the source-rooted multicast trees computed independently
    at each node agree. *)

type t

val create : Conn_graph.t -> Group.t -> t

val next_hop : t -> dst:int -> (int * int) option
(** [(neighbor, link)] for the first hop of the current min-latency path to
    [dst]; [None] if unreachable or [dst] is self. *)

val distance : t -> dst:int -> int option
(** Current shortest-path latency (µs) to the destination. *)

val path : t -> dst:int -> int list option
(** Current min-latency path as link ids. *)

val mcast_out_links : t -> source:int -> group:int -> int list
(** Tree links on which *this node* must forward a multicast packet of the
    given source-rooted group tree (empty when this node is a leaf or not on
    the tree). *)

val mcast_tree_links : t -> source:int -> group:int -> int list
(** All links of the source-rooted group tree (for accounting). *)

val anycast_target : t -> group:int -> int option
(** The nearest overlay node with members in the group — "the best target
    for a given anycast message" (§II-B). Self counts with distance 0. *)

val reachable : t -> dst:int -> bool

val usable_mask : t -> Strovl_topo.Bitmask.t
(** Bitmask of currently usable links — constrained flooding over the live
    topology. *)

val dissem_mask :
  t -> dst:int -> Strovl_topo.Dissem.scheme -> Strovl_topo.Bitmask.t
(** Builds a dissemination mask for (self → dst) over the *currently
    usable* topology, for source-routed sends. *)
