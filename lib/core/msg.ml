type node = int

type link_info = { li_up : bool; li_metric : int; li_loss : int }

type t =
  | Data of { cls : int; lseq : int; pkt : Packet.t; auth : int64 option }
  | Link_ack of { cls : int; cum : int }
  | Link_nack of { cls : int; missing : int list }
  | Rt_request of { lseq : int }
  | It_ack of { lseq : int }
  | Fec_parity of {
      block : int;
      idx : int;
      k : int;
      bytes : int;
      blk_pkts : Packet.t list;
    }
  | Hello of { hseq : int; sent_at : Strovl_sim.Time.t }
  | Hello_ack of { hseq : int; echo : Strovl_sim.Time.t }
  | Probe of { pseq : int; sent_at : Strovl_sim.Time.t }
  | Probe_ack of { pseq : int; echo : Strovl_sim.Time.t }
  | Lsu of {
      origin : node;
      lsu_seq : int;
      links : (int * link_info) list;
      auth : int64 option;
    }
  | Group_update of {
      origin : node;
      gseq : int;
      memb : (int * bool) list;
      auth : int64 option;
    }

let auth_bytes = function Some _ -> 8 | None -> 0

let bytes = function
  | Data { pkt; auth; _ } ->
    (* link-protocol framing: class + lseq *)
    6 + Packet.header_bytes pkt + pkt.Packet.bytes + auth_bytes auth
  | Link_ack _ -> 10
  | Link_nack { missing; _ } -> 8 + (4 * List.length missing)
  | Rt_request _ -> 8
  | It_ack _ -> 8
  | Fec_parity { bytes; _ } -> 16 + bytes
  | Hello _ -> 16
  | Hello_ack _ -> 16
  | Probe _ -> 16
  | Probe_ack _ -> 16
  | Lsu { links; auth; _ } -> 12 + (8 * List.length links) + auth_bytes auth
  | Group_update { memb; auth; _ } -> 12 + (5 * List.length memb) + auth_bytes auth

let signable = function
  | Lsu { origin; lsu_seq; links; _ } ->
    let b = Buffer.create 64 in
    Buffer.add_string b (Printf.sprintf "lsu/%d/%d" origin lsu_seq);
    List.iter
      (fun (l, i) ->
        Buffer.add_string b
          (Printf.sprintf "/%d:%b:%d:%d" l i.li_up i.li_metric i.li_loss))
      links;
    Buffer.contents b
  | Group_update { origin; gseq; memb; _ } ->
    let b = Buffer.create 64 in
    Buffer.add_string b (Printf.sprintf "grp/%d/%d" origin gseq);
    List.iter (fun (g, m) -> Buffer.add_string b (Printf.sprintf "/%d:%b" g m)) memb;
    Buffer.contents b
  | Data { pkt; _ } ->
    let f = pkt.Packet.flow in
    Printf.sprintf "data/%d/%d/%d/%d" f.Packet.f_src f.Packet.f_sport
      pkt.Packet.seq pkt.Packet.bytes
  | Link_ack _ | Link_nack _ | Rt_request _ | It_ack _ | Fec_parity _
  | Hello _ | Hello_ack _ | Probe _ | Probe_ack _ ->
    invalid_arg "Msg.signable: hop-local message"

let pp ppf = function
  | Data { cls; lseq; pkt; _ } ->
    Format.fprintf ppf "data(c%d,l%d,%a)" cls lseq Packet.pp pkt
  | Link_ack { cls; cum } -> Format.fprintf ppf "ack(c%d,<=%d)" cls cum
  | Link_nack { cls; missing } ->
    Format.fprintf ppf "nack(c%d,%d missing)" cls (List.length missing)
  | Rt_request { lseq } -> Format.fprintf ppf "rt-req(%d)" lseq
  | It_ack { lseq } -> Format.fprintf ppf "it-ack(%d)" lseq
  | Fec_parity { block; idx; k; _ } ->
    Format.fprintf ppf "fec-parity(b%d,#%d,k=%d)" block idx k
  | Hello { hseq; _ } -> Format.fprintf ppf "hello(%d)" hseq
  | Hello_ack { hseq; _ } -> Format.fprintf ppf "hello-ack(%d)" hseq
  | Probe { pseq; _ } -> Format.fprintf ppf "probe(%d)" pseq
  | Probe_ack { pseq; _ } -> Format.fprintf ppf "probe-ack(%d)" pseq
  | Lsu { origin; lsu_seq; links; _ } ->
    Format.fprintf ppf "lsu(from %d,#%d,%d links)" origin lsu_seq
      (List.length links)
  | Group_update { origin; gseq; memb; _ } ->
    Format.fprintf ppf "grp(from %d,#%d,%d entries)" origin gseq
      (List.length memb)
