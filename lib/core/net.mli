(** Whole-overlay construction: instantiates one {!Node} per site of a
    topology spec, realizes every designed overlay link over the simulated
    underlay ({!Strovl_net.Link}), and wires multihoming.

    This is the deployment story of §II-A: overlay nodes in data centers,
    overlay links over ISP backbones, each link switchable between
    providers. When a node's hello protocol suspects a link, the network
    rotates that link to a different ISP (rate-limited so the two endpoints
    don't fight). *)

type config = {
  node : Node.config;
  link : Strovl_net.Link.config;
  authenticate : bool;
      (** create a key registry and enable signing/verification *)
  master_secret : string;  (** key material when [authenticate] *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?underlay:Strovl_net.Underlay.t ->
  Strovl_sim.Engine.t ->
  Strovl_topo.Gen.spec ->
  t
(** Builds the overlay. With [underlay], the overlay rides an existing
    simulated Internet instead of creating its own — "multiple overlays can
    even be run in parallel (with each overlay potentially using a
    different variant of the overlay software)" (§II-B): build several
    [Net]s with different configs over one underlay. The spec must be the
    one the underlay was built from. *)

val engine : t -> Strovl_sim.Engine.t
val underlay : t -> Strovl_net.Underlay.t
val spec : t -> Strovl_topo.Gen.spec
val graph : t -> Strovl_topo.Graph.t
val nnodes : t -> int
val node : t -> int -> Node.t
val net_link : t -> int -> Strovl_net.Link.t
(** The transport carrying a given overlay link. *)

val registry : t -> Strovl_crypto.Auth.registry option

val start : t -> unit
(** Starts every node (hello protocols, LSU refresh). *)

val settle : ?duration:Strovl_sim.Time.t -> t -> unit
(** Runs the engine for [duration] (default 2 s) so hellos measure RTTs and
    initial floods propagate — call once after {!start}, before driving
    workloads. *)

val link_metric : t -> int -> int
(** Initial (design) one-way latency of an overlay link, µs. *)

(** {2 Wire taps (fault/compromise injection)}

    A compromised overlay node (§IV-B) holds valid credentials but may
    behave arbitrarily. The attack library models this by tapping the
    node's wire: every message it sends or receives passes through its tap,
    which can pass, drop, delay, or replace it. Correct protocol state
    machines keep running underneath — exactly the situation of a daemon
    whose host is owned. *)

type tamper =
  | Pass
  | Drop
  | Replace of Msg.t
  | Delay of Strovl_sim.Time.t

val set_wire_tap :
  t ->
  node:int ->
  (dir:[ `Out | `In ] -> link:int -> Msg.t -> tamper) ->
  unit

val clear_wire_tap : t -> node:int -> unit

val inject : t -> node:int -> link:int -> Msg.t -> unit
(** Sends a raw wire message from the node on one of its incident links, as
    a compromised daemon could. Used by the attack library to attempt
    forgeries (e.g. LSUs claiming another node's links are down), which
    authentication must defeat.
    @raise Invalid_argument if the node is not an endpoint of the link. *)
