(** De-duplication of redundantly disseminated packets.

    Flow-based processing lets overlay nodes remember what they have already
    seen and suppress duplicates "in the middle of the network" (§I, §II-B):
    with k-disjoint-path or flooding dissemination the same packet reaches a
    node over several links, but must be forwarded and delivered once.

    Per flow we keep a sliding window of recently seen sequence numbers
    (bounded memory, exploiting the general-purpose computer's "ample
    memory" within reason). Sequence numbers older than the window are
    conservatively treated as already seen. *)

type t

val create : ?window:int -> unit -> t
(** [window] defaults to 4096 sequence numbers per flow. *)

val seen : t -> Packet.flow -> int -> bool
(** [seen t flow seq] returns whether the packet was already recorded, and
    records it. The first call for a given (flow, seq) in the window returns
    [false]; subsequent calls return [true]. *)

val peek : t -> Packet.flow -> int -> bool
(** Like {!seen} but without recording. *)

val flows : t -> int
(** Number of flows currently tracked. *)
