type error = string

(* ----------------------------- encoding ------------------------------ *)

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)
let put_u16 b v = Buffer.add_uint16_be b (v land 0xffff)

let put_u32 b v =
  if v < 0 then invalid_arg "Wire: negative u32";
  Buffer.add_int32_be b (Int32.of_int v)

let put_i64 b v = Buffer.add_int64_be b (Int64.of_int v)

let put_string b s =
  let n = min (String.length s) 0xffff in
  put_u16 b n;
  Buffer.add_substring b s 0 n

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_auth b = function
  | None -> put_u8 b 0
  | Some tag ->
    put_u8 b 1;
    Buffer.add_int64_be b tag

let put_dest b = function
  | Packet.To_node n ->
    put_u8 b 0;
    put_u32 b n
  | Packet.To_group g ->
    put_u8 b 1;
    put_u32 b g
  | Packet.Any_of_group g ->
    put_u8 b 2;
    put_u32 b g

let put_routing b = function
  | Packet.Link_state -> put_u8 b 0
  | Packet.Source_mask mask ->
    put_u8 b 1;
    put_u16 b (Strovl_topo.Bitmask.nlinks mask);
    let words = Strovl_topo.Bitmask.words mask in
    put_u16 b (Array.length words);
    Array.iter (Buffer.add_int64_be b) words

let put_service b = function
  | Packet.Best_effort -> put_u8 b 0
  | Packet.Reliable -> put_u8 b 1
  | Packet.Realtime { deadline; n_requests; m_retrans } ->
    put_u8 b 2;
    put_i64 b deadline;
    put_u8 b n_requests;
    put_u8 b m_retrans
  | Packet.It_priority prio ->
    put_u8 b 3;
    put_u32 b prio
  | Packet.It_reliable -> put_u8 b 4
  | Packet.Fec { fec_k; fec_r } ->
    put_u8 b 5;
    put_u8 b fec_k;
    put_u8 b fec_r

let put_packet b (p : Packet.t) =
  put_u16 b p.Packet.flow.Packet.f_src;
  put_u32 b p.Packet.flow.Packet.f_sport;
  put_dest b p.Packet.flow.Packet.f_dest;
  put_u32 b p.Packet.flow.Packet.f_dport;
  put_routing b p.Packet.routing;
  put_service b p.Packet.service;
  put_u32 b p.Packet.seq;
  put_i64 b p.Packet.sent_at;
  put_u32 b p.Packet.bytes;
  put_string b p.Packet.tag;
  put_auth b p.Packet.auth;
  put_u16 b p.Packet.hops;
  (* ingress may be -1 (not yet stamped): shift by one. *)
  put_u16 b (p.Packet.ingress + 1);
  put_bool b p.Packet.replay

let encode msg =
  let b = Buffer.create 64 in
  (match msg with
  | Msg.Data { cls; lseq; pkt; auth } ->
    put_u8 b 1;
    put_u8 b cls;
    put_u32 b lseq;
    put_auth b auth;
    put_packet b pkt
  | Msg.Link_ack { cls; cum } ->
    put_u8 b 2;
    put_u8 b cls;
    put_u32 b cum
  | Msg.Link_nack { cls; missing } ->
    put_u8 b 3;
    put_u8 b cls;
    put_u16 b (List.length missing);
    List.iter (put_u32 b) missing
  | Msg.Rt_request { lseq } ->
    put_u8 b 4;
    put_u32 b lseq
  | Msg.It_ack { lseq } ->
    put_u8 b 5;
    put_u32 b lseq
  | Msg.Hello { hseq; sent_at } ->
    put_u8 b 6;
    put_u32 b hseq;
    put_i64 b sent_at
  | Msg.Hello_ack { hseq; echo } ->
    put_u8 b 7;
    put_u32 b hseq;
    put_i64 b echo
  | Msg.Probe { pseq; sent_at } ->
    put_u8 b 11;
    put_u32 b pseq;
    put_i64 b sent_at
  | Msg.Probe_ack { pseq; echo } ->
    put_u8 b 12;
    put_u32 b pseq;
    put_i64 b echo
  | Msg.Lsu { origin; lsu_seq; links; auth } ->
    put_u8 b 8;
    put_u16 b origin;
    put_u32 b lsu_seq;
    put_u16 b (List.length links);
    List.iter
      (fun (l, i) ->
        put_u32 b l;
        put_bool b i.Msg.li_up;
        put_u32 b i.Msg.li_metric;
        put_u16 b i.Msg.li_loss)
      links;
    put_auth b auth
  | Msg.Fec_parity { block; idx; k; bytes; blk_pkts } ->
    put_u8 b 10;
    put_u32 b block;
    put_u8 b idx;
    put_u8 b k;
    put_u32 b bytes;
    put_u8 b (List.length blk_pkts);
    List.iter (put_packet b) blk_pkts
  | Msg.Group_update { origin; gseq; memb; auth } ->
    put_u8 b 9;
    put_u16 b origin;
    put_u32 b gseq;
    put_u16 b (List.length memb);
    List.iter
      (fun (g, m) ->
        put_u32 b g;
        put_bool b m)
      memb;
    put_auth b auth);
  Buffer.contents b

(* ----------------------------- decoding ------------------------------ *)

exception Bad of string

type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then raise (Bad "truncated message")

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  need c 2;
  let v = (Char.code c.data.[c.pos] lsl 8) lor Char.code c.data.[c.pos + 1] in
  c.pos <- c.pos + 2;
  v

let get_u32 c =
  need c 4;
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code c.data.[c.pos + i]
  done;
  c.pos <- c.pos + 4;
  !v

let get_i64 c =
  need c 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.data.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let get_time c =
  let v = Int64.to_int (get_i64 c) in
  if v < 0 then raise (Bad "negative time");
  v

let get_string c =
  let n = get_u16 c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | _ -> raise (Bad "bad boolean")

let get_auth c =
  match get_u8 c with
  | 0 -> None
  | 1 -> Some (get_i64 c)
  | _ -> raise (Bad "bad auth flag")

let get_dest c =
  match get_u8 c with
  | 0 -> Packet.To_node (get_u32 c)
  | 1 -> Packet.To_group (get_u32 c)
  | 2 -> Packet.Any_of_group (get_u32 c)
  | _ -> raise (Bad "bad destination kind")

let get_routing c =
  match get_u8 c with
  | 0 -> Packet.Link_state
  | 1 ->
    let nlinks = get_u16 c in
    let nwords = get_u16 c in
    if nwords > 1024 then raise (Bad "oversized bitmask");
    if nwords <> max 1 ((nlinks + 63) / 64) then raise (Bad "bitmask size mismatch");
    let mask = Strovl_topo.Bitmask.create ~nlinks in
    (* Whole-word decode; [set_word] drops out-of-range bits exactly like
       the per-bit range check used to. *)
    for w = 0 to nwords - 1 do
      Strovl_topo.Bitmask.set_word mask w (get_i64 c)
    done;
    Packet.Source_mask mask
  | _ -> raise (Bad "bad routing kind")

let get_service c =
  match get_u8 c with
  | 0 -> Packet.Best_effort
  | 1 -> Packet.Reliable
  | 2 ->
    let deadline = get_time c in
    let n_requests = get_u8 c in
    let m_retrans = get_u8 c in
    Packet.Realtime { deadline; n_requests; m_retrans }
  | 3 -> Packet.It_priority (get_u32 c)
  | 4 -> Packet.It_reliable
  | 5 ->
    let fec_k = get_u8 c in
    let fec_r = get_u8 c in
    Packet.Fec { fec_k; fec_r }
  | _ -> raise (Bad "bad service kind")

let get_packet c =
  let f_src = get_u16 c in
  let f_sport = get_u32 c in
  let f_dest = get_dest c in
  let f_dport = get_u32 c in
  let routing = get_routing c in
  let service = get_service c in
  let seq = get_u32 c in
  let sent_at = get_time c in
  let bytes = get_u32 c in
  let tag = get_string c in
  let auth = get_auth c in
  let hops = get_u16 c in
  let ingress = get_u16 c - 1 in
  let replay = get_bool c in
  let base =
    Packet.make
      ~flow:{ Packet.f_src; f_sport; f_dest; f_dport }
      ~routing ~service ~seq ~sent_at ~bytes ~tag ?auth ()
  in
  (* Reconstruct the transit fields that [make] initializes. *)
  let base = if ingress >= 0 then Packet.with_ingress base ingress else base in
  let base = if replay then Packet.as_replay base else base in
  let rec add_hops p n = if n = 0 then p else add_hops (Packet.next_hop_copy p) (n - 1) in
  add_hops base hops

let get_list c get =
  let n = get_u16 c in
  (* Every element costs at least one byte of input, so a count beyond the
     bytes remaining after the cursor is hostile: reject it before
     allocating an n-element list. *)
  if n > String.length c.data - c.pos then raise (Bad "oversized list");
  List.init n (fun _ -> get c)

let decode_exn c =
  let msg =
    match get_u8 c with
    | 1 ->
      let cls = get_u8 c in
      let lseq = get_u32 c in
      let auth = get_auth c in
      let pkt = get_packet c in
      Msg.Data { cls; lseq; pkt; auth }
    | 2 ->
      let cls = get_u8 c in
      let cum = get_u32 c in
      Msg.Link_ack { cls; cum }
    | 3 ->
      let cls = get_u8 c in
      let missing = get_list c get_u32 in
      Msg.Link_nack { cls; missing }
    | 4 -> Msg.Rt_request { lseq = get_u32 c }
    | 5 -> Msg.It_ack { lseq = get_u32 c }
    | 6 ->
      let hseq = get_u32 c in
      let sent_at = get_time c in
      Msg.Hello { hseq; sent_at }
    | 7 ->
      let hseq = get_u32 c in
      let echo = get_time c in
      Msg.Hello_ack { hseq; echo }
    | 8 ->
      let origin = get_u16 c in
      let lsu_seq = get_u32 c in
      let links =
        get_list c (fun c ->
            let l = get_u32 c in
            let li_up = get_bool c in
            let li_metric = get_u32 c in
            let li_loss = get_u16 c in
            (l, { Msg.li_up; li_metric; li_loss }))
      in
      let auth = get_auth c in
      Msg.Lsu { origin; lsu_seq; links; auth }
    | 9 ->
      let origin = get_u16 c in
      let gseq = get_u32 c in
      let memb =
        get_list c (fun c ->
            let g = get_u32 c in
            let m = get_bool c in
            (g, m))
      in
      let auth = get_auth c in
      Msg.Group_update { origin; gseq; memb; auth }
    | 10 ->
      let block = get_u32 c in
      let idx = get_u8 c in
      let k = get_u8 c in
      let bytes = get_u32 c in
      let n = get_u8 c in
      let blk_pkts = List.init n (fun _ -> get_packet c) in
      Msg.Fec_parity { block; idx; k; bytes; blk_pkts }
    | 11 ->
      let pseq = get_u32 c in
      let sent_at = get_time c in
      Msg.Probe { pseq; sent_at }
    | 12 ->
      let pseq = get_u32 c in
      let echo = get_time c in
      Msg.Probe_ack { pseq; echo }
    | t -> raise (Bad (Printf.sprintf "unknown message tag %d" t))
  in
  if c.pos <> String.length c.data then raise (Bad "trailing bytes");
  msg

let decode data =
  try Ok (decode_exn { data; pos = 0 }) with
  | Bad e -> Error e
  | Invalid_argument e -> Error e

let payload_bytes = function
  | Msg.Data { pkt; _ } -> pkt.Packet.bytes
  | Msg.Fec_parity { bytes; _ } -> bytes
  | Msg.Link_ack _ | Msg.Link_nack _ | Msg.Rt_request _ | Msg.It_ack _
  | Msg.Hello _ | Msg.Hello_ack _ | Msg.Probe _ | Msg.Probe_ack _
  | Msg.Lsu _ | Msg.Group_update _ ->
    0

(* ------------------------------- sizing ------------------------------- *)

(* Header sizes computed arithmetically from the message, mirroring the
   encoder field by field, so the per-transmission accounting never pays
   for an encode. The qcheck suite pins [header_size msg] to
   [String.length (encode msg)]. *)

let auth_size = function None -> 1 | Some _ -> 9

let routing_size = function
  | Packet.Link_state -> 1
  | Packet.Source_mask mask -> 5 + Strovl_topo.Bitmask.byte_size mask

let service_size = function
  | Packet.Best_effort | Packet.Reliable | Packet.It_reliable -> 1
  | Packet.Realtime _ -> 11
  | Packet.It_priority _ -> 5
  | Packet.Fec _ -> 3

(* src 2 + sport 4 + dest 5 + dport 4 + seq 4 + sent_at 8 + bytes 4
   + tag length prefix 2 + hops 2 + ingress 2 + replay 1 = 38. *)
let packet_size (p : Packet.t) =
  38
  + routing_size p.Packet.routing
  + service_size p.Packet.service
  + min (String.length p.Packet.tag) 0xffff
  + auth_size p.Packet.auth

let header_size = function
  | Msg.Data { pkt; auth; _ } -> 6 + auth_size auth + packet_size pkt
  | Msg.Link_ack _ -> 6
  | Msg.Link_nack { missing; _ } -> 4 + (4 * List.length missing)
  | Msg.Rt_request _ | Msg.It_ack _ -> 5
  | Msg.Hello _ | Msg.Hello_ack _ | Msg.Probe _ | Msg.Probe_ack _ -> 13
  | Msg.Lsu { links; auth; _ } ->
    9 + (11 * List.length links) + auth_size auth
  | Msg.Group_update { memb; auth; _ } ->
    9 + (5 * List.length memb) + auth_size auth
  | Msg.Fec_parity { blk_pkts; _ } ->
    12 + List.fold_left (fun acc p -> acc + packet_size p) 0 blk_pkts

let size msg = header_size msg + payload_bytes msg

(* --------------------- session frames (client <-> daemon) -------------- *)

module Session = struct
  type frame =
    | Open of { sport : int }
    | Open_ok of { node : int; sport : int }
    | Join of { group : int; sport : int }
    | Leave of { group : int; sport : int }
    | Send of {
        sport : int;
        dest : Packet.dest;
        dport : int;
        service : Packet.service;
        seq : int;
        bytes : int;
        tag : string;
      }
    | Sent of { sport : int; seq : int; accepted : bool }
    | Deliver of { sport : int; at : int; pkt : Packet.t }
    | Stats_req of { what : int }
    | Stats of { json : string }
    | Close of { sport : int }

  let encode frame =
    let b = Buffer.create 64 in
    (match frame with
    | Open { sport } ->
      put_u8 b 1;
      put_u32 b sport
    | Open_ok { node; sport } ->
      put_u8 b 2;
      put_u16 b node;
      put_u32 b sport
    | Join { group; sport } ->
      put_u8 b 3;
      put_u32 b group;
      put_u32 b sport
    | Leave { group; sport } ->
      put_u8 b 4;
      put_u32 b group;
      put_u32 b sport
    | Send { sport; dest; dport; service; seq; bytes; tag } ->
      put_u8 b 5;
      put_u32 b sport;
      put_dest b dest;
      put_u32 b dport;
      put_service b service;
      put_u32 b seq;
      put_u32 b bytes;
      put_string b tag
    | Sent { sport; seq; accepted } ->
      put_u8 b 6;
      put_u32 b sport;
      put_u32 b seq;
      put_bool b accepted
    | Deliver { sport; at; pkt } ->
      put_u8 b 7;
      put_u32 b sport;
      put_i64 b at;
      put_packet b pkt
    | Stats_req { what } ->
      put_u8 b 8;
      put_u8 b what
    | Stats { json } ->
      put_u8 b 9;
      put_string b json
    | Close { sport } ->
      put_u8 b 10;
      put_u32 b sport);
    Buffer.contents b

  (* Decodes one frame from the cursor; the caller owns the trailing-bytes
     check so the frame can be embedded in a larger datagram. *)
  let get_frame c =
    match get_u8 c with
    | 1 -> Open { sport = get_u32 c }
    | 2 ->
      let node = get_u16 c in
      let sport = get_u32 c in
      Open_ok { node; sport }
    | 3 ->
      let group = get_u32 c in
      let sport = get_u32 c in
      Join { group; sport }
    | 4 ->
      let group = get_u32 c in
      let sport = get_u32 c in
      Leave { group; sport }
    | 5 ->
      let sport = get_u32 c in
      let dest = get_dest c in
      let dport = get_u32 c in
      let service = get_service c in
      let seq = get_u32 c in
      let bytes = get_u32 c in
      let tag = get_string c in
      Send { sport; dest; dport; service; seq; bytes; tag }
    | 6 ->
      let sport = get_u32 c in
      let seq = get_u32 c in
      let accepted = get_bool c in
      Sent { sport; seq; accepted }
    | 7 ->
      let sport = get_u32 c in
      let at = get_time c in
      let pkt = get_packet c in
      Deliver { sport; at; pkt }
    | 8 -> Stats_req { what = get_u8 c }
    | 9 -> Stats { json = get_string c }
    | 10 -> Close { sport = get_u32 c }
    | t -> raise (Bad (Printf.sprintf "unknown session frame tag %d" t))

  let decode data =
    try
      let c = { data; pos = 0 } in
      let f = get_frame c in
      if c.pos <> String.length data then raise (Bad "trailing bytes");
      Ok f
    with
    | Bad e -> Error e
    | Invalid_argument e -> Error e

  let strlen s = Stdlib.min (String.length s) 0xffff

  let size = function
    | Open _ | Close _ -> 5
    | Open_ok _ -> 7
    | Join _ | Leave _ -> 9
    | Send { service; tag; _ } -> 24 + service_size service + strlen tag
    | Sent _ -> 10
    | Deliver { pkt; _ } -> 13 + packet_size pkt
    | Stats_req _ -> 2
    | Stats { json } -> 3 + strlen json
end

(* --------------------------- UDP datagrams ---------------------------- *)

(* Framing for real sockets: a 4-byte preamble (magic, version, kind)
   distinguishing overlay traffic from session traffic, then the encoded
   message. Overlay datagrams name the sending node and the overlay link
   they travel on, so the receiving daemon can dispatch into
   [Node.receive ~link] and sanity-check the sender. As everywhere in this
   reproduction, application payload is represented by its byte count; a
   deployment would append [payload_bytes] of application data after these
   headers. *)

let magic0 = 'S'
let magic1 = 'o'
let version = 1

type datagram =
  | Dg_msg of { src : int; link : int; msg : Msg.t }
  | Dg_session of Session.frame

let encode_datagram dg =
  let b = Buffer.create 80 in
  Buffer.add_char b magic0;
  Buffer.add_char b magic1;
  put_u8 b version;
  (match dg with
  | Dg_msg { src; link; msg } ->
    put_u8 b 0;
    put_u16 b src;
    put_u16 b link;
    Buffer.add_string b (encode msg)
  | Dg_session frame ->
    put_u8 b 1;
    Buffer.add_string b (Session.encode frame));
  Buffer.contents b

let decode_datagram data =
  try
    let c = { data; pos = 0 } in
    need c 4;
    if data.[0] <> magic0 || data.[1] <> magic1 then raise (Bad "bad magic");
    c.pos <- 2;
    let v = get_u8 c in
    if v <> version then raise (Bad (Printf.sprintf "unknown version %d" v));
    match get_u8 c with
    | 0 ->
      let src = get_u16 c in
      let link = get_u16 c in
      let msg = decode_exn c in
      (* [decode_exn] enforces the trailing-bytes check for the tail. *)
      Ok (Dg_msg { src; link; msg })
    | 1 ->
      let f = Session.get_frame c in
      if c.pos <> String.length data then raise (Bad "trailing bytes");
      Ok (Dg_session f)
    | k -> raise (Bad (Printf.sprintf "unknown datagram kind %d" k))
  with
  | Bad e -> Error e
  | Invalid_argument e -> Error e

let datagram_size = function
  | Dg_msg { msg; _ } -> 8 + header_size msg
  | Dg_session frame -> 4 + Session.size frame
