(** Connectivity Graph Maintenance (§II-B, Figure 2).

    Every overlay node maintains global state about the condition of all
    overlay links; because the overlay has only a few tens of nodes, this
    state is small and can be updated in a timely manner, enabling
    "fast reactions to changes in the network, with the ability to route
    around problems at a sub-second scale" (§II-A).

    A node learns local link conditions from its hello protocol (driven by
    {!Node}) and advertises them in sequence-numbered link-state updates
    (LSUs) that are flooded to every node. A link is considered usable only
    when *both* endpoints currently advertise it up, and its metric is the
    larger of the two advertised latencies.

    [version] increments whenever the usable set or a metric changes, which
    is how the routing level ({!Route}) knows to recompute. *)

type t

val create :
  self:int -> Strovl_topo.Graph.t -> metric:(int -> int) -> t
(** [metric] gives the initial latency (µs) of each overlay link. All links
    start up. *)

val self : t -> int
val graph : t -> Strovl_topo.Graph.t
val version : t -> int

val usable : t -> int -> bool
(** Both endpoints advertise the link up. *)

val metric : t -> int -> int
(** Current latency metric of the link (µs). *)

val loss : t -> int -> int
(** Current advertised loss rate of the link, permille (max of the two
    endpoints' reports). *)

val effective_metric : t -> int -> int
(** The latency metric inflated by the loss rate: [metric / (1-p)²],
    approximating the expected cost of a link whose protocol must retry
    lost transmissions. Routing on this weight steers traffic around lossy
    (but alive) links — the §II-B motivation for sharing loss
    characteristics. Links at ≥80% loss are treated as effectively
    infinite. *)

val use_effective_metric : t -> bool -> unit
(** Selects which metric {!weight} exposes (default: plain latency). *)

val weight : t -> int -> int
(** The routing weight: {!metric} or {!effective_metric} per
    {!use_effective_metric}. *)

val local_view : t -> int -> bool
(** What this node currently advertises for one of its incident links. *)

val set_local : t -> link:int -> up:bool -> Msg.t option
(** Records the hello protocol's verdict about an incident link. Returns a
    fresh LSU to flood when the state actually changed ([None] if it was
    already so). The LSU is unauthenticated; {!Node} signs it when a key
    registry is configured. *)

val set_local_metric : t -> link:int -> metric:int -> Msg.t option
(** Updates the advertised latency of an incident link (from hello RTT
    measurements). Returns an LSU when the change is significant (>10%). *)

val set_local_loss : t -> link:int -> loss:int -> Msg.t option
(** Updates the advertised loss rate (permille) of an incident link (from
    hello delivery statistics). Returns an LSU when the change is
    significant (>20 permille). *)

val refresh_lsu : t -> Msg.t
(** A periodic re-advertisement of the node's current incident-link state
    (new sequence number), providing eventual consistency against lost
    floods. *)

val apply_lsu :
  t -> origin:int -> lsu_seq:int -> (int * Msg.link_info) list -> bool
(** Integrates a received LSU. Returns [true] when the LSU was new (higher
    sequence than any seen from that origin) and must be forwarded to the
    node's other neighbors (constrained flooding); [false] when stale. *)

val highest_seq : t -> int -> int
(** Highest LSU sequence seen from a given origin (-1 if none). *)
