open Strovl_sim
module Graph = Strovl_topo.Graph
module Bitmask = Strovl_topo.Bitmask
module Auth = Strovl_crypto.Auth

type config = {
  hello_interval : Time.t;
  hello_timeout : Time.t;
  lsu_refresh : Time.t;
  proc_delay : Time.t;
  proc_rate_pps : int option;
  cluster_size : int;
  cpu_queue : Time.t;
  reliable : Reliable_link.config;
  realtime : Realtime_link.config;
  it_priority : It_priority.config;
  it_reliable : It_reliable.config;
  fec : Fec_link.config;
  authenticate : bool;
  loss_aware_routing : bool;
  probe : Probe_link.config option;
  probe_routing : bool;
}

let default_config =
  {
    hello_interval = Time.ms 100;
    hello_timeout = Time.ms 350;
    lsu_refresh = Time.sec 10;
    proc_delay = Time.us 50;
    proc_rate_pps = None;
    cluster_size = 1;
    cpu_queue = Time.ms 20;
    reliable = Reliable_link.default_config;
    realtime = Realtime_link.default_config;
    it_priority = It_priority.default_config;
    it_reliable = It_reliable.default_config;
    fec = Fec_link.default_config;
    authenticate = false;
    loss_aware_routing = false;
    probe = None;
    probe_routing = false;
  }

(* Observability: domain-local labelled metrics (always-available twins of
   the per-node [counters]) and flight-recorder events. Handles live in the
   node record and are looked up at [create] time, so they always belong to
   the run's own registry (registries are purged between pool-scheduled
   runs; see {!Strovl_obs.Ctx}). All nodes of one run share the same
   handles via get-or-create, and hot-path updates stay O(1). *)
module Obs = Strovl_obs.Trace
module Om = Strovl_obs.Metrics

type metrics = {
  m_forwarded : Om.Counter.t;
  m_delivered : Om.Counter.t;
  m_enqueued : Om.Counter.t;
  m_lsu_floods : Om.Counter.t;
  m_group_floods : Om.Counter.t;
  m_delivery_latency : Om.Histogram.t;
  m_drop_no_route : Om.Counter.t;
  m_drop_ttl : Om.Counter.t;
  m_drop_auth : Om.Counter.t;
  m_drop_dup : Om.Counter.t;
  m_drop_backpressure : Om.Counter.t;
  m_drop_overload : Om.Counter.t;
}

let make_metrics () =
  let m_drop reason =
    Om.counter
      ~labels:[ ("reason", Obs.reason_to_string reason) ]
      "strovl_node_dropped_total"
  in
  {
    m_forwarded = Om.counter "strovl_node_forwarded_total";
    m_delivered = Om.counter "strovl_node_delivered_total";
    m_enqueued = Om.counter "strovl_node_enqueued_total";
    m_lsu_floods = Om.counter "strovl_lsu_floods_total";
    m_group_floods = Om.counter "strovl_group_floods_total";
    m_delivery_latency = Om.histogram "strovl_delivery_latency_us";
    m_drop_no_route = m_drop Obs.No_route;
    m_drop_ttl = m_drop Obs.Ttl;
    m_drop_auth = m_drop Obs.Auth;
    m_drop_dup = m_drop Obs.Dup;
    m_drop_backpressure = m_drop Obs.Backpressure;
    m_drop_overload = m_drop Obs.Overload;
  }

type counters = {
  mutable forwarded : int;
  mutable delivered : int;
  mutable dropped_no_route : int;
  mutable dropped_ttl : int;
  mutable dropped_auth : int;
  mutable dropped_dup : int;
  mutable dropped_backpressure : int;
  mutable dropped_overload : int;
  mutable lsu_floods : int;
  mutable group_floods : int;
}

type proto =
  | P_best of Best_effort.t
  | P_rel of Reliable_link.t
  | P_rt of Realtime_link.t
  | P_itp of It_priority.t
  | P_itr of It_reliable.t
  | P_fec of Fec_link.t

type endpoint = {
  ep_link : int;
  ep_neighbor : int;
  ep_bandwidth : int;
  ep_xmit : Msg.t -> unit;
  ep_protos : proto option array;
  mutable ep_last_heard : Time.t;
  mutable ep_rtt : Time.t;
  mutable ep_hello_pending : (int * Time.t) list;
  mutable ep_hello_seq : int;
  (* Loss estimation from hello round trips (window counters + EWMA). *)
  mutable ep_hello_window_sent : int;
  mutable ep_hello_window_acked : int;
  mutable ep_loss_est : int; (* permille *)
  mutable ep_last_suspect : Time.t;
  mutable ep_probe : Probe_link.t option;
}

type t = {
  id : int;
  engine : Engine.t;
  cfg : config;
  graph : Graph.t;
  conn_graph : Conn_graph.t;
  group_state : Group.t;
  routing : Route.t;
  registry : Auth.registry option;
  endpoints : (int, endpoint) Hashtbl.t; (* by link id *)
  (* Data-path twins of [endpoints]: O(1), allocation-free lookup by link
     id, plus the incident link ids as a flat array. [endpoints] keeps the
     control-plane iteration order (floods). *)
  mutable eps : endpoint option array;
  mutable incident : int array;
  mutable links_seen : int;
  (* Reusable out-links scratch buffer for the forwarding plane; the busy
     flag covers re-entrant forwarding (a deliver callback originating a
     packet synchronously), which falls back to a fresh buffer. *)
  mutable out_buf : int array;
  mutable out_busy : bool;
  sessions : (int, Packet.t -> unit) Hashtbl.t; (* by port *)
  dedup : Dedup.t;
  ctrs : counters;
  om : metrics;
  mutable suspect_hook : int -> unit;
  mutable started : bool;
  mutable stopped : bool;
  mutable cpu_busy_until : Time.t; (* finite-capacity CPU server (§II-D) *)
  (* Time-series channels (Strovl_obs.Series; off by default). *)
  s_delivered : Strovl_obs.Series.ch;
  s_dropped : Strovl_obs.Series.ch;
  s_flow_delivered : (Packet.flow, Strovl_obs.Series.ch) Hashtbl.t;
}

(* One packet-flavoured drop: metric plus (when armed) a trace event that
   names the packet so the causal path shows where and why it died. *)
let note_drop t pkt reason mctr =
  Om.Counter.incr mctr;
  if Strovl_obs.Series.armed () then Strovl_obs.Series.incr t.s_dropped;
  if Obs.armed () then
    Obs.emit
      ~flow:(Packet.obs_flow pkt.Packet.flow)
      ~seq:pkt.Packet.seq ~node:t.id (Obs.Drop reason)

let trace_pkt t pkt ev =
  if Obs.armed () then
    Obs.emit
      ~flow:(Packet.obs_flow pkt.Packet.flow)
      ~seq:pkt.Packet.seq ~node:t.id ev

let create ?(config = default_config) ?registry ~engine ~graph ~id ~metric () =
  let conn_graph = Conn_graph.create ~self:id graph ~metric in
  Conn_graph.use_effective_metric conn_graph config.loss_aware_routing;
  let group_state = Group.create ~self:id ~nnodes:(Graph.n graph) in
  {
    id;
    engine;
    cfg = config;
    graph;
    conn_graph;
    group_state;
    routing = Route.create conn_graph group_state;
    registry = (if config.authenticate then registry else None);
    endpoints = Hashtbl.create 8;
    eps = Array.make (max 1 (Graph.link_count graph)) None;
    incident = Array.of_list (Graph.incident graph id);
    links_seen = Graph.link_count graph;
    out_buf = Array.make (max 1 (List.length (Graph.incident graph id))) 0;
    out_busy = false;
    sessions = Hashtbl.create 8;
    dedup = Dedup.create ();
    om = make_metrics ();
    ctrs =
      {
        forwarded = 0;
        delivered = 0;
        dropped_no_route = 0;
        dropped_ttl = 0;
        dropped_auth = 0;
        dropped_dup = 0;
        dropped_backpressure = 0;
        dropped_overload = 0;
        lsu_floods = 0;
        group_floods = 0;
      };
    suspect_hook = (fun _ -> ());
    started = false;
    stopped = false;
    cpu_busy_until = Time.zero;
    s_delivered =
      Strovl_obs.Series.channel
        ~labels:[ ("node", string_of_int id) ]
        "strovl_node_delivered";
    s_dropped =
      Strovl_obs.Series.channel
        ~labels:[ ("node", string_of_int id) ]
        "strovl_node_dropped";
    s_flow_delivered = Hashtbl.create 8;
  }

(* Re-sync the data-path arrays with the graph/endpoint tables. Called
   when a link is attached and (defensively) when the graph gained links
   since the last sync. *)
let refresh_topology t =
  t.links_seen <- Graph.link_count t.graph;
  if Array.length t.eps < t.links_seen then begin
    let n = Array.make t.links_seen None in
    Array.blit t.eps 0 n 0 (Array.length t.eps);
    t.eps <- n
  end;
  t.incident <- Array.of_list (Graph.incident t.graph t.id);
  if Array.length t.out_buf < Array.length t.incident + 1 then
    t.out_buf <- Array.make (Array.length t.incident + 1) 0

let ep_for t link =
  if link >= 0 && link < Array.length t.eps then t.eps.(link) else None

let id t = t.id
let config t = t.cfg
let conn t = t.conn_graph
let group t = t.group_state
let route t = t.routing
let counters t = t.ctrs
let engine t = t.engine
let set_link_suspect_hook t f = t.suspect_hook <- f

(* ------------------------------------------------------------------ *)
(* Flooded shared state: signing and propagation                       *)
(* ------------------------------------------------------------------ *)

let sign_flood t msg =
  match t.registry with
  | None -> msg
  | Some reg ->
    let tag = Auth.sign reg ~node:t.id (Msg.signable msg) in
    (match msg with
    | Msg.Lsu l -> Msg.Lsu { l with auth = Some tag }
    | Msg.Group_update g -> Msg.Group_update { g with auth = Some tag }
    | other -> other)

let verify_flood t ~origin msg auth =
  match t.registry with
  | None -> true
  | Some reg -> (
    match auth with
    | None -> false
    | Some tag ->
      (* Verify against the unsigned canonical form. *)
      let unsigned =
        match msg with
        | Msg.Lsu l -> Msg.Lsu { l with auth = None }
        | Msg.Group_update g -> Msg.Group_update { g with auth = None }
        | other -> other
      in
      Auth.verify_sign reg ~node:origin (Msg.signable unsigned) tag)

let flood t ?except msg =
  Hashtbl.iter
    (fun l ep -> if Some l <> except then ep.ep_xmit msg)
    t.endpoints

let flood_local_update t msg_opt =
  match msg_opt with
  | None -> ()
  | Some msg ->
    (match msg with
    | Msg.Lsu _ ->
      t.ctrs.lsu_floods <- t.ctrs.lsu_floods + 1;
      Om.Counter.incr t.om.m_lsu_floods;
      if Obs.armed () then Obs.emit ~node:t.id Obs.Lsu_flood
    | Msg.Group_update _ ->
      t.ctrs.group_floods <- t.ctrs.group_floods + 1;
      Om.Counter.incr t.om.m_group_floods
    | _ -> ());
    flood t (sign_flood t msg)

(* ------------------------------------------------------------------ *)
(* Routing decisions                                                   *)
(* ------------------------------------------------------------------ *)

let deliver_local t pkt ~port =
  match Hashtbl.find t.sessions port with
  | exception Not_found -> ()
  | deliver ->
    t.ctrs.delivered <- t.ctrs.delivered + 1;
    Om.Counter.incr t.om.m_delivered;
    Om.Histogram.observe t.om.m_delivery_latency
      (Time.sub (Engine.now t.engine) pkt.Packet.sent_at);
    if Strovl_obs.Series.armed () then begin
      Strovl_obs.Series.incr t.s_delivered;
      let ch =
        match Hashtbl.find_opt t.s_flow_delivered pkt.Packet.flow with
        | Some ch -> ch
        | None ->
          let fi = Packet.obs_flow pkt.Packet.flow in
          let label =
            Printf.sprintf "%d:%d->%d:%d" fi.Strovl_obs.Trace.fi_src
              fi.Strovl_obs.Trace.fi_sport fi.Strovl_obs.Trace.fi_dst
              fi.Strovl_obs.Trace.fi_dport
          in
          let ch =
            Strovl_obs.Series.channel
              ~labels:[ ("flow", label) ]
              "strovl_flow_delivered"
          in
          Hashtbl.replace t.s_flow_delivered pkt.Packet.flow ch;
          ch
      in
      Strovl_obs.Series.incr ch
    end;
    trace_pkt t pkt (if pkt.Packet.replay then Obs.Deliver_replay else Obs.Deliver);
    deliver pkt

(* Local delivery for this node, fused with the former local-port listing
   so the routing level never materialises a port list per packet. *)
let deliver_locals t pkt =
  match pkt.Packet.flow.Packet.f_dest with
  | Packet.To_node n ->
    if n = t.id then deliver_local t pkt ~port:pkt.Packet.flow.Packet.f_dport
  | Packet.To_group g ->
    if Group.has_local t.group_state ~group:g then
      List.iter
        (fun port -> deliver_local t pkt ~port)
        (Group.local_ports t.group_state ~group:g)
  | Packet.Any_of_group g -> (
    match Route.anycast_target t.routing ~group:g with
    | Some target when target = t.id -> (
      match Group.local_ports t.group_state ~group:g with
      | [] -> ()
      | p :: _ -> deliver_local t pkt ~port:p)
    | _ -> ())

(* Whether [deliver_locals] would target at least one port here (the
   unicast destination counts even with no session bound, matching the old
   list semantics used by IT-Reliable acceptance). *)
let has_local_ports t pkt =
  match pkt.Packet.flow.Packet.f_dest with
  | Packet.To_node n -> n = t.id
  | Packet.To_group g ->
    Group.has_local t.group_state ~group:g
    && Group.local_ports t.group_state ~group:g <> []
  | Packet.Any_of_group g -> (
    match Route.anycast_target t.routing ~group:g with
    | Some target when target = t.id ->
      Group.local_ports t.group_state ~group:g <> []
    | _ -> false)

(* Links this node must forward the packet on (routing level, §II-B),
   written into [buf]; returns the count. Fill order matches the list the
   old code built, so traces are byte-identical. *)
let collect_outs t pkt ~from_link buf =
  if Graph.link_count t.graph <> t.links_seen then refresh_topology t;
  let unicast_hop dst =
    if dst = t.id then 0
    else begin
      match Route.next_hop t.routing ~dst with
      | Some (_, l) ->
        buf.(0) <- l;
        1
      | None ->
        t.ctrs.dropped_no_route <- t.ctrs.dropped_no_route + 1;
        note_drop t pkt Obs.No_route t.om.m_drop_no_route;
        0
    end
  in
  match pkt.Packet.routing with
  | Packet.Link_state -> begin
    match pkt.Packet.flow.Packet.f_dest with
    | Packet.To_node dst -> unicast_hop dst
    | Packet.To_group g ->
      (* Trees are rooted at the overlay ingress node: all nodes compute the
         same tree from shared state, and forwarding stays loop-free even
         for flows re-originated mid-network (compound flows, §V-C). *)
      let root =
        if pkt.Packet.ingress >= 0 then pkt.Packet.ingress
        else pkt.Packet.flow.Packet.f_src
      in
      let rec fill n = function
        | [] -> n
        | l :: rest ->
          if l <> from_link then begin
            buf.(n) <- l;
            fill (n + 1) rest
          end
          else fill n rest
      in
      fill 0 (Route.mcast_out_links t.routing ~source:root ~group:g)
    | Packet.Any_of_group g -> begin
      match Route.anycast_target t.routing ~group:g with
      | Some target when target <> t.id -> unicast_hop target
      | Some _ -> 0
      | None ->
        t.ctrs.dropped_no_route <- t.ctrs.dropped_no_route + 1;
        note_drop t pkt Obs.No_route t.om.m_drop_no_route;
        0
    end
  end
  | Packet.Source_mask mask ->
    let rec fill i n =
      if i >= Array.length t.incident then n
      else begin
        let l = t.incident.(i) in
        if
          l <> from_link
          && Bitmask.mem mask l
          && (match ep_for t l with Some _ -> true | None -> false)
        then begin
          buf.(n) <- l;
          fill (i + 1) (n + 1)
        end
        else fill (i + 1) n
      end
    in
    fill 0 0

let acquire_outs t =
  if t.out_busy then Array.make (Array.length t.incident + 1) 0
  else begin
    t.out_busy <- true;
    t.out_buf
  end

let release_outs t buf = if buf == t.out_buf then t.out_busy <- false

(* ------------------------------------------------------------------ *)
(* CPU model (§II-D)                                                   *)
(* ------------------------------------------------------------------ *)

let cpu_service_time t =
  match t.cfg.proc_rate_pps with
  | None -> None
  | Some rate -> Some (max 1 (1_000_000 / (rate * max 1 t.cfg.cluster_size)))

(* Run [work] once the node's CPU has processed the packet: either a flat
   per-packet cost (unbounded capacity) or a serial server at the cluster's
   aggregate rate, with overload drops beyond the CPU queue. *)
let charge_cpu t work =
  match cpu_service_time t with
  | None -> ignore (Engine.schedule t.engine ~delay:t.cfg.proc_delay work)
  | Some service ->
    let now = Engine.now t.engine in
    let start = Time.max now t.cpu_busy_until in
    if Time.sub start now > t.cfg.cpu_queue then begin
      t.ctrs.dropped_overload <- t.ctrs.dropped_overload + 1;
      Om.Counter.incr t.om.m_drop_overload;
      if Obs.armed () then Obs.emit ~node:t.id (Obs.Drop Obs.Overload)
    end
    else begin
      t.cpu_busy_until <- Time.add start service;
      ignore (Engine.schedule_at t.engine ~at:t.cpu_busy_until work)
    end

(* Synchronous admission for IT-Reliable acceptance: an overloaded CPU
   refuses (backpressure) instead of queueing. *)
let cpu_admit t =
  match cpu_service_time t with
  | None -> true
  | Some service ->
    let now = Engine.now t.engine in
    let start = Time.max now t.cpu_busy_until in
    if Time.sub start now > t.cfg.cpu_queue then begin
      t.ctrs.dropped_overload <- t.ctrs.dropped_overload + 1;
      Om.Counter.incr t.om.m_drop_overload;
      if Obs.armed () then Obs.emit ~node:t.id (Obs.Drop Obs.Overload);
      false
    end
    else begin
      t.cpu_busy_until <- Time.add start service;
      true
    end

(* ------------------------------------------------------------------ *)
(* Link protocol instances                                             *)
(* ------------------------------------------------------------------ *)

let rec get_proto t ep cls =
  match ep.ep_protos.(cls) with
  | Some p -> p
  | None ->
    let ctx =
      {
        Lproto.engine = t.engine;
        node = t.id;
        link = ep.ep_link;
        xmit = ep.ep_xmit;
        up =
          (fun pkt ->
            (* Per-packet CPU cost of traversing the stack (§II-D). *)
            charge_cpu t (fun () -> forward t ~from_link:ep.ep_link pkt));
        try_up = (fun pkt -> try_accept t ~from_link:ep.ep_link pkt);
        bandwidth_bps = ep.ep_bandwidth;
        rtt_hint = ep.ep_rtt;
      }
    in
    let p =
      if cls = Packet.service_class Packet.Best_effort then
        P_best (Best_effort.create ctx)
      else if cls = Packet.service_class Packet.Reliable then
        P_rel (Reliable_link.create ~config:t.cfg.reliable ctx)
      else if cls = Packet.service_class (Packet.It_priority 0) then
        P_itp (It_priority.create ~config:t.cfg.it_priority ctx)
      else if cls = Packet.service_class Packet.It_reliable then
        P_itr (It_reliable.create ~config:t.cfg.it_reliable ctx)
      else if cls = Packet.service_class (Packet.Fec { fec_k = 1; fec_r = 1 })
      then P_fec (Fec_link.create ~config:t.cfg.fec ctx)
      else P_rt (Realtime_link.create ~config:t.cfg.realtime ctx)
    in
    ep.ep_protos.(cls) <- Some p;
    p

(* Send one already-hop-bumped packet down a link's protocol instance. The
   caller makes the [next_hop_copy] once per routing decision and shares it
   across the fan-out (the packet record is immutable). *)
and send_prepped t ep pkt =
  t.ctrs.forwarded <- t.ctrs.forwarded + 1;
  Om.Counter.incr t.om.m_forwarded;
  trace_pkt t pkt
    (if pkt.Packet.replay then Obs.Forward_replay ep.ep_link
     else Obs.Forward ep.ep_link);
  match get_proto t ep (Packet.service_class pkt.Packet.service) with
  | P_best p -> Best_effort.send p pkt
  | P_rel p -> Reliable_link.send p pkt
  | P_rt p -> Realtime_link.send p pkt
  | P_itp p -> It_priority.send p pkt
  | P_itr p ->
    (* Callers check capacity first via try_accept/originate. *)
    if not (It_reliable.offer p pkt) then begin
      t.ctrs.dropped_backpressure <- t.ctrs.dropped_backpressure + 1;
      note_drop t pkt Obs.Backpressure t.om.m_drop_backpressure
    end
  | P_fec p -> Fec_link.send p pkt

(* Verification of the origin signature on intrusion-tolerant data. *)
and auth_ok t pkt =
  match pkt.Packet.service with
  | Packet.Best_effort | Packet.Reliable | Packet.Realtime _ | Packet.Fec _ ->
    true
  | Packet.It_priority _ | Packet.It_reliable -> begin
    match t.registry with
    | None -> true
    | Some reg -> begin
      match pkt.Packet.auth with
      | None -> false
      | Some tag ->
        Auth.verify_sign reg ~node:pkt.Packet.flow.Packet.f_src
          (Packet.signable pkt) tag
    end
  end

and needs_dedup pkt =
  match (pkt.Packet.routing, pkt.Packet.flow.Packet.f_dest) with
  | Packet.Source_mask _, _ -> true
  | Packet.Link_state, (Packet.To_group _ | Packet.Any_of_group _) -> true
  | Packet.Link_state, Packet.To_node _ -> false

(* The routing level: deliver locally, forward onward. *)
and forward t ~from_link pkt =
  if pkt.Packet.hops >= Packet.max_hops then begin
    t.ctrs.dropped_ttl <- t.ctrs.dropped_ttl + 1;
    note_drop t pkt Obs.Ttl t.om.m_drop_ttl
  end
  else if not (auth_ok t pkt) then begin
    t.ctrs.dropped_auth <- t.ctrs.dropped_auth + 1;
    note_drop t pkt Obs.Auth t.om.m_drop_auth
  end
  else if
    needs_dedup pkt
    && Dedup.seen t.dedup pkt.Packet.flow pkt.Packet.seq
    && not pkt.Packet.replay
  then begin
    t.ctrs.dropped_dup <- t.ctrs.dropped_dup + 1;
    note_drop t pkt Obs.Dup t.om.m_drop_dup
  end
  else begin
    deliver_locals t pkt;
    let buf = acquire_outs t in
    let n = collect_outs t pkt ~from_link buf in
    if n > 0 then begin
      let fwd = Packet.next_hop_copy pkt in
      for i = 0 to n - 1 do
        match ep_for t buf.(i) with
        | Some ep -> send_prepped t ep fwd
        | None -> ()
      done
    end;
    release_outs t buf
  end

(* IT-Reliable acceptance: the packet is taken responsibility for only if
   every onward link buffer (and local delivery) can absorb it — checked
   before any enqueue so a multi-link dissemination is all-or-nothing. *)
and try_accept t ~from_link pkt =
  if pkt.Packet.hops >= Packet.max_hops then false
  else if not (cpu_admit t) then false
  else if not (auth_ok t pkt) then begin
    t.ctrs.dropped_auth <- t.ctrs.dropped_auth + 1;
    note_drop t pkt Obs.Auth t.om.m_drop_auth;
    false
  end
  else if Dedup.peek t.dedup pkt.Packet.flow pkt.Packet.seq then begin
    (* Already accepted earlier: re-ack without reprocessing. *)
    t.ctrs.dropped_dup <- t.ctrs.dropped_dup + 1;
    Om.Counter.incr t.om.m_drop_dup;
    true
  end
  else begin
    let buf = acquire_outs t in
    let n = collect_outs t pkt ~from_link buf in
    let result =
      if n = 0 && not (has_local_ports t pkt) then begin
        (* Nowhere to take responsibility toward (e.g. destination currently
           unreachable): refuse rather than absorb — reliability must not be
           silently dropped. *)
        t.ctrs.dropped_backpressure <- t.ctrs.dropped_backpressure + 1;
        note_drop t pkt Obs.Backpressure t.om.m_drop_backpressure;
        false
      end
      else begin
        let rec room i =
          i >= n
          ||
          match ep_for t buf.(i) with
          | None -> room (i + 1)
          | Some ep -> (
            match get_proto t ep (Packet.service_class Packet.It_reliable) with
            | P_itr p ->
              It_reliable.can_accept p ~flow:pkt.Packet.flow && room (i + 1)
            | _ -> room (i + 1))
        in
        if not (room 0) then begin
          t.ctrs.dropped_backpressure <- t.ctrs.dropped_backpressure + 1;
          note_drop t pkt Obs.Backpressure t.om.m_drop_backpressure;
          false
        end
        else begin
          ignore (Dedup.seen t.dedup pkt.Packet.flow pkt.Packet.seq);
          deliver_locals t pkt;
          if n > 0 then begin
            let fwd = Packet.next_hop_copy pkt in
            for i = 0 to n - 1 do
              match ep_for t buf.(i) with
              | Some ep -> send_prepped t ep fwd
              | None -> ()
            done
          end;
          true
        end
      end
    in
    release_outs t buf;
    result
  end

(* ------------------------------------------------------------------ *)
(* Hello protocol (link liveness + RTT)                                *)
(* ------------------------------------------------------------------ *)

(* When probing is configured to drive routing, the probe protocol — not
   the hello protocol — supplies the advertised metric and loss (the hello
   protocol keeps its liveness role: timeout detection and ISP rotation). *)
let probe_drives t = t.cfg.probe_routing && t.cfg.probe <> None

let mark_alive t ep =
  ep.ep_last_heard <- Engine.now t.engine;
  if not (Conn_graph.local_view t.conn_graph ep.ep_link) then
    flood_local_update t (Conn_graph.set_local t.conn_graph ~link:ep.ep_link ~up:true)

let handle_hello t ep hseq sent_at =
  mark_alive t ep;
  ep.ep_xmit (Msg.Hello_ack { hseq; echo = sent_at })

let handle_hello_ack t ep echo =
  ep.ep_hello_window_acked <- ep.ep_hello_window_acked + 1;
  let now = Engine.now t.engine in
  let sample = Time.sub now echo in
  if sample >= 0 then begin
    (* EWMA 7/8, and advertise the one-way latency as the link metric. *)
    ep.ep_rtt <-
      if ep.ep_rtt = 0 then sample else ((7 * ep.ep_rtt) + sample) / 8;
    if not (probe_drives t) then
      flood_local_update t
        (Conn_graph.set_local_metric t.conn_graph ~link:ep.ep_link
           ~metric:(max 1 (ep.ep_rtt / 2)))
  end;
  mark_alive t ep

(* A declared-dead link strands the packets its Reliable Data Link holds
   for retransmission; reliability survives the reroute by re-injecting
   them into the routing level (bypassing de-dup — they were already
   recorded when first forwarded). Destinations de-duplicate the subset
   that had in fact crossed before the failure. *)
let reroute_stranded_reliable t ep =
  match ep.ep_protos.(Packet.service_class Packet.Reliable) with
  | Some (P_rel p) ->
    let stranded = Reliable_link.drain_store p in
    List.iter
      (fun pkt ->
        let pkt = Packet.as_replay pkt in
        let buf = acquire_outs t in
        let n = collect_outs t pkt ~from_link:ep.ep_link buf in
        if n > 0 then begin
          let fwd = Packet.next_hop_copy pkt in
          for i = 0 to n - 1 do
            match ep_for t buf.(i) with
            | Some ep' -> send_prepped t ep' fwd
            | None -> ()
          done
        end;
        release_outs t buf)
      stranded
  | Some (P_best _ | P_rt _ | P_itp _ | P_itr _ | P_fec _) | None -> ()

let hello_tick t ep () =
  let now = Engine.now t.engine in
  (* Liveness check first: silence beyond the timeout takes the link down
     (and lets the network layer try another ISP). While the link stays
     silent, keep re-suspecting periodically so multihoming can rotate
     through the remaining providers until one works (§II-A). *)
  if Time.sub now ep.ep_last_heard > t.cfg.hello_timeout then begin
    if Conn_graph.local_view t.conn_graph ep.ep_link then begin
      flood_local_update t
        (Conn_graph.set_local t.conn_graph ~link:ep.ep_link ~up:false);
      reroute_stranded_reliable t ep;
      ep.ep_last_suspect <- now;
      t.suspect_hook ep.ep_link
    end
    else if Time.sub now ep.ep_last_suspect > t.cfg.hello_timeout then begin
      ep.ep_last_suspect <- now;
      t.suspect_hook ep.ep_link
    end
  end;
  ep.ep_hello_seq <- ep.ep_hello_seq + 1;
  ep.ep_hello_pending <-
    (ep.ep_hello_seq, now) :: List.filteri (fun i _ -> i < 7) ep.ep_hello_pending;
  (* Loss estimation: every 20 hellos, fold the window's hello round-trip
     delivery ratio into an EWMA and advertise significant changes. The
     hello round trip sees ~1-(1-p)^2 for per-direction loss p, which is
     exactly the pessimism a retransmitting link protocol experiences. *)
  ep.ep_hello_window_sent <- ep.ep_hello_window_sent + 1;
  if ep.ep_hello_window_sent >= 20 then begin
    let lost = max 0 (ep.ep_hello_window_sent - ep.ep_hello_window_acked) in
    let sample = 1000 * lost / ep.ep_hello_window_sent in
    ep.ep_loss_est <- ((3 * ep.ep_loss_est) + sample) / 4;
    ep.ep_hello_window_sent <- 0;
    ep.ep_hello_window_acked <- 0;
    if not (probe_drives t) then
      flood_local_update t
        (Conn_graph.set_local_loss t.conn_graph ~link:ep.ep_link
           ~loss:ep.ep_loss_est)
  end;
  ep.ep_xmit (Msg.Hello { hseq = ep.ep_hello_seq; sent_at = now })

(* ------------------------------------------------------------------ *)
(* Wire ingress                                                        *)
(* ------------------------------------------------------------------ *)

let proto_recv t ep cls msg =
  match get_proto t ep cls with
  | P_best p -> Best_effort.recv p msg
  | P_rel p -> Reliable_link.recv p msg
  | P_rt p -> Realtime_link.recv p msg
  | P_itp p -> It_priority.recv p msg
  | P_itr p -> It_reliable.recv p msg
  | P_fec p -> Fec_link.recv p msg

let receive t ~link msg =
  match ep_for t link with
  | None -> ()
  | Some _ when t.stopped -> ()
  | Some ep -> begin
    match msg with
    | Msg.Hello { hseq; sent_at } -> handle_hello t ep hseq sent_at
    | Msg.Hello_ack { echo; _ } -> handle_hello_ack t ep echo
    | Msg.Probe { pseq; sent_at } ->
      (* Stateless responder: echo the probe's timestamp. Any probe is
         also liveness evidence, like a hello. *)
      mark_alive t ep;
      ep.ep_xmit (Msg.Probe_ack { pseq; echo = sent_at })
    | Msg.Probe_ack { pseq; echo } ->
      mark_alive t ep;
      (match ep.ep_probe with
      | Some p -> Probe_link.handle_ack p ~pseq ~echo
      | None -> ())
    | Msg.Lsu { origin; lsu_seq; links; auth } ->
      if verify_flood t ~origin msg auth then begin
        if Conn_graph.apply_lsu t.conn_graph ~origin ~lsu_seq links then
          flood t ~except:link msg
      end
      else begin
        t.ctrs.dropped_auth <- t.ctrs.dropped_auth + 1;
        Om.Counter.incr t.om.m_drop_auth
      end
    | Msg.Group_update { origin; gseq; memb; auth } ->
      if verify_flood t ~origin msg auth then begin
        if Group.apply_update t.group_state ~origin ~gseq memb then
          flood t ~except:link msg
      end
      else begin
        t.ctrs.dropped_auth <- t.ctrs.dropped_auth + 1;
        Om.Counter.incr t.om.m_drop_auth
      end
    | Msg.Data { cls; _ } -> proto_recv t ep cls msg
    | Msg.Link_ack { cls; _ } -> proto_recv t ep cls msg
    | Msg.Link_nack { cls; _ } -> proto_recv t ep cls msg
    | Msg.Rt_request _ ->
      proto_recv t ep
        (Packet.service_class
           (Packet.Realtime { deadline = 0; n_requests = 1; m_retrans = 1 }))
        msg
    | Msg.It_ack _ ->
      proto_recv t ep (Packet.service_class Packet.It_reliable) msg
    | Msg.Fec_parity _ ->
      proto_recv t ep
        (Packet.service_class (Packet.Fec { fec_k = 1; fec_r = 1 }))
        msg
  end

(* ------------------------------------------------------------------ *)
(* Setup and the session interface                                     *)
(* ------------------------------------------------------------------ *)

let attach_link t ~link ~neighbor ~bandwidth_bps ~xmit =
  if t.started then invalid_arg "Node.attach_link: already started";
  let metric = Conn_graph.metric t.conn_graph link in
  let ep =
    {
      ep_link = link;
      ep_neighbor = neighbor;
      ep_bandwidth = bandwidth_bps;
      ep_xmit = xmit;
      ep_protos = Array.make Packet.class_count None;
      ep_last_heard = Time.zero;
      ep_rtt = 2 * metric;
      ep_hello_pending = [];
      ep_hello_seq = 0;
      ep_hello_window_sent = 0;
      ep_hello_window_acked = 0;
      ep_loss_est = 0;
      ep_last_suspect = Time.zero;
      ep_probe = None;
    }
  in
  Hashtbl.replace t.endpoints link ep;
  refresh_topology t;
  t.eps.(link) <- Some ep

(* Health probing on one endpoint. Observational by default; with
   [probe_routing] the probe-derived expected-latency ingredients (one-way
   latency + loss, which the connectivity graph expands into latency ×
   1/(1-p)² when loss-aware routing is on) are what the node advertises,
   and the k-missed verdict complements the hello timeout for take-down. *)
let start_probe t ep pcfg =
  let ctx =
    {
      Lproto.engine = t.engine;
      node = t.id;
      link = ep.ep_link;
      xmit = ep.ep_xmit;
      up = (fun _ -> ());
      try_up = (fun _ -> false);
      bandwidth_bps = ep.ep_bandwidth;
      rtt_hint = ep.ep_rtt;
    }
  in
  let p = Probe_link.create ~config:pcfg ctx in
  if probe_drives t then begin
    Probe_link.set_on_update p (fun h ->
        flood_local_update t
          (Conn_graph.set_local_metric t.conn_graph ~link:ep.ep_link
             ~metric:(max 1 (h.Strovl_obs.Health.rtt_us / 2)));
        flood_local_update t
          (Conn_graph.set_local_loss t.conn_graph ~link:ep.ep_link
             ~loss:(max 0 h.Strovl_obs.Health.loss_pm)));
    Probe_link.set_on_verdict p (fun ~alive ->
        if not alive && Conn_graph.local_view t.conn_graph ep.ep_link then begin
          flood_local_update t
            (Conn_graph.set_local t.conn_graph ~link:ep.ep_link ~up:false);
          reroute_stranded_reliable t ep;
          t.suspect_hook ep.ep_link
        end
        else if alive then mark_alive t ep)
  end;
  ep.ep_probe <- Some p;
  Probe_link.start p

let start t =
  if not t.started then begin
    t.started <- true;
    Hashtbl.iter
      (fun _ ep ->
        ep.ep_last_heard <- Engine.now t.engine;
        (match t.cfg.probe with
        | Some pcfg -> start_probe t ep pcfg
        | None -> ());
        let rec tick () =
          if not t.stopped then begin
            hello_tick t ep ();
            ignore (Engine.schedule t.engine ~delay:t.cfg.hello_interval tick)
          end
        in
        tick ())
      t.endpoints;
    let rec refresh () =
      if not t.stopped then begin
        flood_local_update t (Some (Conn_graph.refresh_lsu t.conn_graph));
        ignore (Engine.schedule t.engine ~delay:t.cfg.lsu_refresh refresh)
      end
    in
    ignore (Engine.schedule t.engine ~delay:t.cfg.lsu_refresh refresh)
  end

(* Shutdown for hosts whose engine outlives the node (the wall-clock
   runtime, the in-process loopback tests): periodic loops stop
   rescheduling, probing is cancelled, and arriving wire messages are
   dropped at the door. Pending one-shot events fire as no-ops. *)
let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Hashtbl.iter
      (fun _ ep ->
        match ep.ep_probe with Some p -> Probe_link.stop p | None -> ())
      t.endpoints
  end

let register_session t ~port ~deliver = Hashtbl.replace t.sessions port deliver
let unregister_session t ~port = Hashtbl.remove t.sessions port

let join_group t ~group ~port =
  flood_local_update t (Group.join_local t.group_state ~group ~port)

let leave_group t ~group ~port =
  flood_local_update t (Group.leave_local t.group_state ~group ~port)

let sign_packet t pkt =
  match (t.registry, pkt.Packet.service) with
  | Some reg, (Packet.It_priority _ | Packet.It_reliable) ->
    let tag = Auth.sign reg ~node:t.id (Packet.signable pkt) in
    { pkt with Packet.auth = Some tag }
  | _ -> pkt

let originate t pkt =
  let pkt = Packet.with_ingress pkt t.id in
  let pkt = sign_packet t pkt in
  (* Resolve anycast at the origin for source-routed packets: the mask was
     built toward a concrete target. *)
  let pkt =
    match (pkt.Packet.routing, pkt.Packet.flow.Packet.f_dest) with
    | Packet.Source_mask _, Packet.Any_of_group g -> begin
      match Route.anycast_target t.routing ~group:g with
      | Some target ->
        {
          pkt with
          Packet.flow = { pkt.Packet.flow with Packet.f_dest = Packet.To_node target };
        }
      | None -> pkt
    end
    | _ -> pkt
  in
  Om.Counter.incr t.om.m_enqueued;
  trace_pkt t pkt Obs.Enqueue;
  match pkt.Packet.service with
  | Packet.It_reliable -> try_accept t ~from_link:(-1) pkt
  | _ ->
    forward t ~from_link:(-1) pkt;
    true

let link_up_view t ~link = Conn_graph.local_view t.conn_graph link

let rtt_estimate t ~link =
  match ep_for t link with None -> 0 | Some ep -> ep.ep_rtt
