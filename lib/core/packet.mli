(** Overlay data packets and flow identity.

    A client's flow is "a source, one or more destinations, and the overlay
    services selected for that flow" (§II-C). Clients are addressed like IP:
    the overlay node they connect to plus a virtual port (§II-B). Payloads
    are carried as sizes plus an optional short tag — the protocols under
    test never look inside application data, so simulating bytes would only
    cost memory. *)

type node = int
type port = int
type group = int

type dest =
  | To_node of node  (** unicast to (node, port) *)
  | To_group of group  (** multicast: all members *)
  | Any_of_group of group  (** anycast: exactly one member (§II-B) *)

type routing =
  | Link_state
      (** forwarded hop-by-hop from each node's routing table (§II-B) *)
  | Source_mask of Strovl_topo.Bitmask.t
      (** unified source-based routing: traverse exactly the links in the
          mask — a path, k disjoint paths, a dissemination graph, or
          constrained flooding (§II-B) *)

type rt_params = {
  deadline : Strovl_sim.Time.t;
      (** one-way delivery budget, e.g. 200 ms for live TV (§IV-A) *)
  n_requests : int;  (** N spaced retransmission requests *)
  m_retrans : int;  (** M spaced retransmissions per request *)
}

type fec_params = {
  fec_k : int;  (** data packets per block *)
  fec_r : int;  (** parity packets per block *)
}

type service =
  | Best_effort
  | Reliable  (** hop-by-hop Reliable Data Link (§III-A) *)
  | Realtime of rt_params  (** NM-Strikes real-time link (§IV-A) *)
  | It_priority of int
      (** intrusion-tolerant priority messaging; the int is the message
          priority assigned by the source (§IV-B) *)
  | It_reliable  (** intrusion-tolerant reliable messaging (§IV-B) *)
  | Fec of fec_params
      (** forward-error-corrected link: proactive parity instead of
          reactive retransmission — the OverQoS-style alternative the
          related work contrasts (§VI), included as a baseline and as the
          demonstration that "new protocols can be easily added" (§II-B) *)

type flow = {
  f_src : node;
  f_sport : port;
  f_dest : dest;
  f_dport : port;
}
(** Flow identity, used for per-flow state (reorder buffers, IT-Reliable
    buffers) and de-duplication. *)

type t = {
  flow : flow;
  routing : routing;
  service : service;
  seq : int;  (** per-flow sequence number assigned at the origin session *)
  sent_at : Strovl_sim.Time.t;  (** origin timestamp *)
  bytes : int;  (** payload size *)
  tag : string;  (** free-form label for tests/debugging; not sized *)
  auth : int64 option;
      (** origin signature (intrusion-tolerant services): lets every node
          verify the packet really comes from its claimed source (§IV-B) *)
  hops : int;  (** overlay hops traversed so far; doubles as a TTL guard *)
  ingress : node;
      (** the overlay node where the packet entered the overlay (stamped by
          [Node.originate]; -1 before). Multicast trees are rooted here —
          for a compound flow (§V-C) the transformed stream re-enters at
          the transcoding facility, not at the flow's original source. *)
  replay : bool;
      (** set when a node re-injects the packet after a link failure
          stranded it in a Reliable Data Link store: intermediate nodes
          must forward it even if they saw it on the pre-failure route
          (suppression is left to the destination reorder buffer) *)
}

val make :
  flow:flow ->
  routing:routing ->
  service:service ->
  seq:int ->
  sent_at:Strovl_sim.Time.t ->
  bytes:int ->
  ?tag:string ->
  ?auth:int64 ->
  unit ->
  t

val next_hop_copy : t -> t
(** The packet as forwarded one hop further ([hops] incremented). *)

val with_ingress : t -> node -> t

val as_replay : t -> t

val max_hops : int
(** TTL guard against transient routing loops (64). *)

val signable : t -> string
(** Canonical bytes covered by the origin signature. *)

val service_class : service -> int
(** Aggregation key: flows with the same class share link-protocol state on
    each overlay link (§II-C "flows may be aggregated ... based on the
    services they select"). *)

val class_count : int

val header_bytes : t -> int
(** Estimated on-wire overlay header size: fixed fields plus the bitmask for
    source-routed packets. *)

val obs_flow : flow -> Strovl_obs.Trace.flow_id
(** The flow's identity for the {!Strovl_obs} flight recorder (group
    destinations are offset into distinct integer ranges). *)

val flow_compare : flow -> flow -> int
val pp_flow : Format.formatter -> flow -> unit
val pp : Format.formatter -> t -> unit
