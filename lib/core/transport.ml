type endpoint = {
  ep_link : int;
  ep_peer : int;
  ep_bandwidth_bps : int;
  ep_xmit : Msg.t -> unit;
}

let attach node ep =
  Node.attach_link node ~link:ep.ep_link ~neighbor:ep.ep_peer
    ~bandwidth_bps:ep.ep_bandwidth_bps ~xmit:ep.ep_xmit
