module Graph = Strovl_topo.Graph
module Dijkstra = Strovl_topo.Dijkstra
module Mcast = Strovl_topo.Mcast
module Bitmask = Strovl_topo.Bitmask
module Dissem = Strovl_topo.Dissem

type tables = {
  spt : Dijkstra.result; (* rooted at self *)
  hops : (int * int) option array;
}

type t = {
  conn : Conn_graph.t;
  group : Group.t;
  mutable cache_version : int;
  mutable tables : tables option;
  mutable mcast_cache : (int * int, Mcast.t) Hashtbl.t;
  mutable mcast_version : int;
  (* Last (source, group) tree, so the steady state — one mcast flow hitting
     the same tree packet after packet — skips the hashtable entirely. *)
  mutable mc_src : int;
  mutable mc_grp : int;
  mutable mc_tree : Mcast.t option;
}

let create conn group =
  {
    conn;
    group;
    cache_version = -1;
    tables = None;
    mcast_cache = Hashtbl.create 16;
    mcast_version = -1;
    mc_src = -1;
    mc_grp = -1;
    mc_tree = None;
  }

let usable t l = Conn_graph.usable t.conn l
let weight t l = Conn_graph.weight t.conn l

let tables t =
  let v = Conn_graph.version t.conn in
  match t.tables with
  | Some tb when t.cache_version = v -> tb
  | _ ->
    let g = Conn_graph.graph t.conn in
    let spt =
      Dijkstra.run ~usable:(usable t) ~weight:(weight t) g (Conn_graph.self t.conn)
    in
    let hops = Dijkstra.next_hops g spt in
    let tb = { spt; hops } in
    t.tables <- Some tb;
    t.cache_version <- v;
    tb

let next_hop t ~dst =
  if dst = Conn_graph.self t.conn then None else (tables t).hops.(dst)

let distance t ~dst =
  let d = (tables t).spt.Dijkstra.dist.(dst) in
  if d = max_int then None else Some d

let path t ~dst = Dijkstra.path_to (tables t).spt dst

let reachable t ~dst = distance t ~dst <> None

let mcast_tree t ~source ~group =
  let v = Conn_graph.version t.conn + (1000000 * Group.version t.group) in
  if t.mcast_version <> v then begin
    Hashtbl.reset t.mcast_cache;
    t.mcast_version <- v;
    t.mc_tree <- None
  end;
  match t.mc_tree with
  | Some tree when t.mc_src = source && t.mc_grp = group -> tree
  | _ ->
    let tree =
      match Hashtbl.find_opt t.mcast_cache (source, group) with
      | Some tree -> tree
      | None ->
        let g = Conn_graph.graph t.conn in
        let members = Group.member_nodes t.group ~group in
        let tree =
          Mcast.shortest_path_tree ~usable:(usable t) ~weight:(weight t) g
            ~source ~members
        in
        Hashtbl.replace t.mcast_cache (source, group) tree;
        tree
    in
    t.mc_src <- source;
    t.mc_grp <- group;
    t.mc_tree <- Some tree;
    tree

let mcast_out_links t ~source ~group =
  let tree = mcast_tree t ~source ~group in
  tree.Mcast.out_links.(Conn_graph.self t.conn)

let mcast_tree_links t ~source ~group = (mcast_tree t ~source ~group).Mcast.links

let anycast_target t ~group =
  let members = Group.member_nodes t.group ~group in
  let self = Conn_graph.self t.conn in
  if List.mem self members then Some self
  else begin
    let dist = (tables t).spt.Dijkstra.dist in
    let best =
      List.fold_left
        (fun acc m ->
          if dist.(m) = max_int then acc
          else begin
            match acc with
            | Some (_, d) when d <= dist.(m) -> acc
            | _ -> Some (m, dist.(m))
          end)
        None members
    in
    Option.map fst best
  end

let usable_mask t =
  let g = Conn_graph.graph t.conn in
  let mask = Bitmask.create ~nlinks:(Graph.link_count g) in
  Graph.iter_links g (fun l _ _ -> if usable t l then Bitmask.set mask l);
  mask

let dissem_mask t ~dst scheme =
  let g = Conn_graph.graph t.conn in
  Dissem.build ~usable:(usable t) ~weight:(weight t) g
    ~src:(Conn_graph.self t.conn) ~dst scheme
