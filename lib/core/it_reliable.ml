open Strovl_sim

module FlowMap = Map.Make (struct
  type t = Packet.flow

  let compare = Packet.flow_compare
end)

type config = { flow_cap : int; rto : Time.t option; max_backoff : int }

let default_config = { flow_cap = 32; rto = None; max_backoff = 6 }

type entry = {
  e_pkt : Packet.t;
  mutable e_lseq : int; (* -1 until first transmission *)
  mutable e_retries : int;
  mutable e_inflight : bool;
  mutable e_timer : Engine.handle option;
  mutable e_done : bool;
}

type t = {
  ctx : Lproto.ctx;
  cfg : config;
  cls : int;
  mutable flows : entry list ref FlowMap.t; (* per-flow buffer, oldest first *)
  rotation : Packet.flow Queue.t;
  in_rotation : (Packet.flow, unit) Hashtbl.t;
  by_lseq : (int, Packet.flow * entry) Hashtbl.t;
  mutable busy : bool;
  mutable next_lseq : int;
  sent : (int, int) Hashtbl.t;
  mutable n_retrans : int;
  mutable n_acked : int;
  m_retrans : Strovl_obs.Metrics.Counter.t;
}

let create ?(config = default_config) ctx =
  {
    ctx;
    cfg = config;
    cls = Packet.service_class Packet.It_reliable;
    flows = FlowMap.empty;
    rotation = Queue.create ();
    in_rotation = Hashtbl.create 16;
    by_lseq = Hashtbl.create 64;
    busy = false;
    next_lseq = 0;
    sent = Hashtbl.create 16;
    n_retrans = 0;
    n_acked = 0;
    m_retrans =
      Strovl_obs.Metrics.counter
        ~labels:[ ("proto", "it-reliable") ]
        "strovl_link_retransmits_total";
  }

let base_rto t =
  match t.cfg.rto with
  | Some d -> d
  | None -> Time.max (Time.ms 5) (3 * t.ctx.Lproto.rtt_hint)

let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let flow_queue t flow =
  match FlowMap.find_opt flow t.flows with
  | Some q -> q
  | None ->
    let q = ref [] in
    t.flows <- FlowMap.add flow q t.flows;
    q

let enter_rotation t flow =
  if not (Hashtbl.mem t.in_rotation flow) then begin
    Hashtbl.replace t.in_rotation flow ();
    Queue.add flow t.rotation
  end

let has_sendable q = List.exists (fun e -> (not e.e_inflight) && not e.e_done) !q

(* Transmit one entry: assign an lseq on first send, arm its retransmission
   timer, and pace the scheduler at link bandwidth. *)
let rec transmit t flow e =
  if e.e_lseq < 0 then begin
    t.next_lseq <- t.next_lseq + 1;
    e.e_lseq <- t.next_lseq;
    bump t.sent flow.Packet.f_src
  end
  else begin
    t.n_retrans <- t.n_retrans + 1;
    Strovl_obs.Metrics.Counter.incr t.m_retrans;
    Lproto.trace_pkt t.ctx e.e_pkt (Strovl_obs.Trace.Retransmit t.ctx.Lproto.link)
  end;
  Hashtbl.replace t.by_lseq e.e_lseq (flow, e);
  e.e_inflight <- true;
  let msg = Msg.Data { cls = t.cls; lseq = e.e_lseq; pkt = e.e_pkt; auth = None } in
  t.ctx.Lproto.xmit msg;
  let backoff =
    let shift = min e.e_retries t.cfg.max_backoff in
    base_rto t * (1 lsl shift)
  in
  e.e_timer <-
    Some
      (Engine.schedule t.ctx.Lproto.engine ~delay:backoff (fun () ->
           e.e_timer <- None;
           if not e.e_done then begin
             (* Not acked in time: the next hop dropped it or refused it
                (backpressure). Requeue for another round-robin turn. *)
             e.e_inflight <- false;
             e.e_retries <- e.e_retries + 1;
             enter_rotation t flow;
             service t
           end));
  t.busy <- true;
  ignore
    (Engine.schedule t.ctx.Lproto.engine ~delay:(Lproto.tx_time t.ctx (Msg.bytes msg))
       (fun () ->
         t.busy <- false;
         service t))

and service t =
  if not t.busy then begin
    match Queue.take_opt t.rotation with
    | None -> ()
    | Some flow -> begin
      Hashtbl.remove t.in_rotation flow;
      let q = flow_queue t flow in
      match List.find_opt (fun e -> (not e.e_inflight) && not e.e_done) !q with
      | None -> service t
      | Some e ->
        (* Re-enter the rotation if more remains to send for this flow. *)
        if List.exists (fun e' -> e' != e && (not e'.e_inflight) && not e'.e_done) !q
        then enter_rotation t flow;
        transmit t flow e
    end
  end

let can_accept t ~flow =
  match FlowMap.find_opt flow t.flows with
  | None -> t.cfg.flow_cap > 0
  | Some q -> List.length !q < t.cfg.flow_cap

let offer t pkt =
  let flow = pkt.Packet.flow in
  let q = flow_queue t flow in
  if List.length !q >= t.cfg.flow_cap then false
  else begin
    let e =
      {
        e_pkt = pkt;
        e_lseq = -1;
        e_retries = 0;
        e_inflight = false;
        e_timer = None;
        e_done = false;
      }
    in
    q := !q @ [ e ];
    enter_rotation t flow;
    service t;
    true
  end

let handle_ack t lseq =
  match Hashtbl.find_opt t.by_lseq lseq with
  | None -> ()
  | Some (flow, e) ->
    if not e.e_done then begin
      e.e_done <- true;
      t.n_acked <- t.n_acked + 1;
      (match e.e_timer with
      | Some h -> Engine.cancel t.ctx.Lproto.engine h
      | None -> ());
      e.e_timer <- None;
      Hashtbl.remove t.by_lseq lseq;
      let q = flow_queue t flow in
      q := List.filter (fun e' -> e' != e) !q;
      if has_sendable q then begin
        enter_rotation t flow;
        service t
      end
    end

let handle_data t lseq pkt =
  (* Acceptance is the node's decision: room in all onward buffers (or
     local delivery). Only accepted packets are acked — a lost or withheld
     ack is exactly the backpressure mechanism. *)
  if t.ctx.Lproto.try_up pkt then t.ctx.Lproto.xmit (Msg.It_ack { lseq })

let recv t = function
  | Msg.Data { lseq; pkt; _ } -> handle_data t lseq pkt
  | Msg.It_ack { lseq } -> handle_ack t lseq
  | _ -> ()

let buffered t ~flow =
  match FlowMap.find_opt flow t.flows with None -> 0 | Some q -> List.length !q

let total_buffered t = FlowMap.fold (fun _ q acc -> acc + List.length !q) t.flows 0
let sent_for t ~source = Option.value ~default:0 (Hashtbl.find_opt t.sent source)
let retransmissions t = t.n_retrans
let acked t = t.n_acked
