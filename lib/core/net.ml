open Strovl_sim
module Gen = Strovl_topo.Gen
module Graph = Strovl_topo.Graph
module Underlay = Strovl_net.Underlay
module Link = Strovl_net.Link
module Auth = Strovl_crypto.Auth

type config = {
  node : Node.config;
  link : Link.config;
  authenticate : bool;
  master_secret : string;
}

let default_config =
  {
    node = Node.default_config;
    link = Link.default_config;
    authenticate = false;
    master_secret = "strovl-master-secret";
  }

type tamper = Pass | Drop | Replace of Msg.t | Delay of Time.t

type tap = dir:[ `Out | `In ] -> link:int -> Msg.t -> tamper

type t = {
  engine : Engine.t;
  underlay : Underlay.t;
  spec : Gen.spec;
  graph : Graph.t;
  nodes : Node.t array;
  links : Link.t array;
  metrics : int array;
  registry : Auth.registry option;
  last_rotation : Time.t array;
  taps : tap option array;
  cfg : config;
  m_isp_rotations : Strovl_obs.Metrics.Counter.t;
}

let pick_isp spec underlay ~a ~b =
  (* Prefer the lowest-numbered ISP that can connect the endpoints. *)
  let rec go isp =
    if isp >= spec.Gen.nisps then 0
    else begin
      match Underlay.path_delay underlay ~isp ~src:a ~dst:b with
      | Some _ -> isp
      | None -> go (isp + 1)
    end
  in
  go 0

let create ?(config = default_config) ?underlay engine spec =
  let underlay =
    match underlay with
    | Some u -> u
    | None -> Underlay.create engine spec
  in
  let graph = Gen.overlay_graph spec in
  let nlinks = Graph.link_count graph in
  let links =
    Array.init nlinks (fun l ->
        let a, b = Graph.endpoints graph l in
        let isp = pick_isp spec underlay ~a ~b in
        Link.create ~config:config.link underlay ~a ~b ~isp)
  in
  let metrics =
    Array.init nlinks (fun l ->
        match Link.probe_delay links.(l) with
        | Some d -> d
        | None -> Time.ms 10 (* disconnected at build time; nominal *))
  in
  let registry =
    if config.authenticate then
      Some (Auth.create_registry ~master:config.master_secret ~nodes:(Graph.n graph))
    else None
  in
  let node_cfg = { config.node with Node.authenticate = config.authenticate } in
  let nodes =
    Array.init (Graph.n graph) (fun id ->
        Node.create ~config:node_cfg ?registry ~engine ~graph ~id
          ~metric:(fun l -> metrics.(l))
          ())
  in
  let t =
    {
      engine;
      underlay;
      spec;
      graph;
      nodes;
      links;
      metrics;
      registry;
      last_rotation = Array.make nlinks Time.zero;
      taps = Array.make (Graph.n graph) None;
      cfg = config;
      m_isp_rotations = Strovl_obs.Metrics.counter "strovl_isp_rotations_total";
    }
  in
  (* Wire each endpoint of each overlay link to its node, routing every
     message through the endpoint nodes' wire taps. *)
  Array.iteri
    (fun l link ->
      let a, b = Graph.endpoints graph l in
      let wire src dst =
        let apply_tap node dir msg k =
          match t.taps.(node) with
          | None -> k msg
          | Some tap -> begin
            match tap ~dir ~link:l msg with
            | Pass -> k msg
            | Drop -> ()
            | Replace msg' -> k msg'
            | Delay d -> ignore (Engine.schedule engine ~delay:d (fun () -> k msg))
          end
        in
        let xmit msg =
          match t.taps.(src) with
          | None ->
            (* Fast path: no sender tap installed, so skip the continuation
               plumbing. The receiver tap is still consulted at delivery
               time, exactly like the slow path. *)
            Link.send link ~src ~bytes:(Msg.bytes msg) ~deliver:(fun () ->
                match t.taps.(dst) with
                | None -> Node.receive t.nodes.(dst) ~link:l msg
                | Some _ ->
                  apply_tap dst `In msg (fun msg ->
                      Node.receive t.nodes.(dst) ~link:l msg))
          | Some _ ->
            apply_tap src `Out msg (fun msg ->
                Link.send link ~src ~bytes:(Msg.bytes msg) ~deliver:(fun () ->
                    apply_tap dst `In msg (fun msg ->
                        Node.receive t.nodes.(dst) ~link:l msg)))
        in
        Transport.attach t.nodes.(src)
          {
            Transport.ep_link = l;
            ep_peer = dst;
            ep_bandwidth_bps = config.link.Link.bandwidth_bps;
            ep_xmit = xmit;
          }
      in
      wire a b;
      wire b a)
    links;
  (* Multihoming: on hello-timeout suspicion, rotate the link to another
     ISP (§II-A). Rate-limited so the endpoints don't rotate twice for one
     failure. *)
  Array.iter
    (fun node ->
      Node.set_link_suspect_hook node (fun l ->
          let now = Engine.now engine in
          let min_gap = node_cfg.Node.hello_timeout in
          if
            t.last_rotation.(l) = Time.zero
            || Time.sub now t.last_rotation.(l) >= min_gap
          then begin
            t.last_rotation.(l) <- now;
            let link = t.links.(l) in
            let cur = Link.current_isp link in
            let nisps = spec.Gen.nisps in
            if nisps > 1 then begin
              Strovl_obs.Metrics.Counter.incr t.m_isp_rotations;
              Link.set_isp link ((cur + 1) mod nisps)
            end
          end))
    nodes;
  t

let engine t = t.engine
let underlay t = t.underlay
let spec t = t.spec
let graph t = t.graph
let nnodes t = Array.length t.nodes
let node t i = t.nodes.(i)
let net_link t l = t.links.(l)
let registry t = t.registry

let start t = Array.iter Node.start t.nodes

let settle ?(duration = Time.sec 2) t =
  Engine.run ~until:(Time.add (Engine.now t.engine) duration) t.engine

let link_metric t l = t.metrics.(l)

let set_wire_tap t ~node tap =
  if node < 0 || node >= Array.length t.taps then invalid_arg "Net.set_wire_tap";
  t.taps.(node) <- Some tap

let clear_wire_tap t ~node = t.taps.(node) <- None

let inject t ~node ~link msg =
  let a, b = Graph.endpoints t.graph link in
  if node <> a && node <> b then invalid_arg "Net.inject: node not an endpoint";
  let dst = if node = a then b else a in
  Link.send t.links.(link) ~src:node ~bytes:(Msg.bytes msg) ~deliver:(fun () ->
      Node.receive t.nodes.(dst) ~link msg)
