open Strovl_sim

type config = { k : int; r : int; flush : Time.t }

let default_config = { k = 8; r = 2; flush = Time.ms 20 }

(* Receiver-side per-block decode state. [block] ids are the first data
   lseq of the block, so the block's lseqs are [block .. block+count-1]. *)
type block_state = {
  bs_pkts : Packet.t array;
  bs_have : bool array; (* data symbols present *)
  mutable bs_parities : int; (* parity symbols received *)
  mutable bs_done : bool;
}

type t = {
  ctx : Lproto.ctx;
  cfg : config;
  cls : int;
  (* sender *)
  mutable next_lseq : int;
  mutable cur : (int * Packet.t) list; (* current block, newest first *)
  mutable flush_timer : Engine.handle option;
  mutable n_sent : int;
  mutable n_parity : int;
  mutable data_bytes : int;
  mutable parity_bytes : int;
  (* receiver *)
  seen : (int, unit) Hashtbl.t;
  mutable recv_floor : int; (* lseqs <= floor are old news *)
  mutable recv_high : int;
  blocks : (int, block_state) Hashtbl.t;
  mutable n_recovered : int;
  mutable n_up : int;
  m_recovered : Strovl_obs.Metrics.Counter.t;
}

let create ?(config = default_config) ctx =
  if config.k < 1 || config.r < 1 then invalid_arg "Fec_link: k and r must be >= 1";
  {
    ctx;
    cfg = config;
    cls = Packet.service_class (Packet.Fec { fec_k = config.k; fec_r = config.r });
    next_lseq = 0;
    cur = [];
    flush_timer = None;
    n_sent = 0;
    n_parity = 0;
    data_bytes = 0;
    parity_bytes = 0;
    seen = Hashtbl.create 64;
    recv_floor = 0;
    recv_high = 0;
    blocks = Hashtbl.create 8;
    n_recovered = 0;
    n_up = 0;
    m_recovered =
      Strovl_obs.Metrics.counter
        ~labels:[ ("proto", "fec") ]
        "strovl_fec_recovered_total";
  }

(* ------------------------------ sender ------------------------------- *)

let cancel_flush t =
  match t.flush_timer with
  | Some h ->
    Engine.cancel t.ctx.Lproto.engine h;
    t.flush_timer <- None
  | None -> ()

let emit_parity t =
  cancel_flush t;
  match List.rev t.cur with
  | [] -> ()
  | ((base, _) :: _ as items) ->
    let pkts = List.map snd items in
    let symbol_bytes =
      List.fold_left (fun acc p -> max acc p.Packet.bytes) 0 pkts
    in
    for idx = 0 to t.cfg.r - 1 do
      let msg =
        Msg.Fec_parity
          { block = base; idx; k = List.length pkts; bytes = symbol_bytes; blk_pkts = pkts }
      in
      t.n_parity <- t.n_parity + 1;
      t.parity_bytes <- t.parity_bytes + Msg.bytes msg;
      t.ctx.Lproto.xmit msg
    done;
    t.cur <- []

let send t pkt =
  t.next_lseq <- t.next_lseq + 1;
  let lseq = t.next_lseq in
  let msg = Msg.Data { cls = t.cls; lseq; pkt; auth = None } in
  t.n_sent <- t.n_sent + 1;
  t.data_bytes <- t.data_bytes + Msg.bytes msg;
  t.ctx.Lproto.xmit msg;
  t.cur <- (lseq, pkt) :: t.cur;
  if List.length t.cur >= t.cfg.k then emit_parity t
  else begin
    cancel_flush t;
    t.flush_timer <-
      Some
        (Engine.schedule t.ctx.Lproto.engine ~delay:t.cfg.flush (fun () ->
             t.flush_timer <- None;
             emit_parity t))
  end

(* ------------------------------ receiver ----------------------------- *)

let is_seen t lseq = lseq <= t.recv_floor || Hashtbl.mem t.seen lseq

(* Bound receiver state: blocks older than ~8 windows of k+history slide
   out, unrecoverable or not. *)
let compact t =
  let window = 64 * t.cfg.k in
  let new_floor = t.recv_high - window in
  if new_floor > t.recv_floor then begin
    for l = t.recv_floor + 1 to new_floor do
      Hashtbl.remove t.seen l
    done;
    Hashtbl.iter
      (fun base bs -> if base + Array.length bs.bs_pkts <= new_floor then bs.bs_done <- true)
      t.blocks;
    let stale =
      Hashtbl.fold
        (fun base bs acc -> if bs.bs_done then base :: acc else acc)
        t.blocks []
    in
    List.iter (Hashtbl.remove t.blocks) stale;
    t.recv_floor <- new_floor
  end

let deliver t pkt =
  t.n_up <- t.n_up + 1;
  t.ctx.Lproto.up pkt

(* If enough symbols of the block are present, reconstruct and deliver the
   missing data packets (any k of k+r symbols suffice: MDS model). *)
let try_decode t base bs =
  if not bs.bs_done then begin
    let missing = ref [] in
    Array.iteri
      (fun i have -> if not have then missing := i :: !missing)
      bs.bs_have;
    let nmiss = List.length !missing in
    if nmiss = 0 then bs.bs_done <- true
    else if nmiss <= bs.bs_parities then begin
      bs.bs_done <- true;
      List.iter
        (fun i ->
          let lseq = base + i in
          if not (is_seen t lseq) then begin
            Hashtbl.replace t.seen lseq ();
            t.n_recovered <- t.n_recovered + 1;
            Strovl_obs.Metrics.Counter.incr t.m_recovered;
            Lproto.trace_pkt t.ctx bs.bs_pkts.(i) (Strovl_obs.Trace.Fec_recover t.ctx.Lproto.link);
            deliver t bs.bs_pkts.(i)
          end)
        (List.rev !missing)
    end
  end

let block_for t base pkts =
  match Hashtbl.find_opt t.blocks base with
  | Some bs -> bs
  | None ->
    let arr = Array.of_list pkts in
    let bs =
      {
        bs_pkts = arr;
        bs_have = Array.init (Array.length arr) (fun i -> is_seen t (base + i));
        bs_parities = 0;
        bs_done = false;
      }
    in
    Hashtbl.replace t.blocks base bs;
    bs

let handle_data t lseq pkt =
  if not (is_seen t lseq) then begin
    Hashtbl.replace t.seen lseq ();
    if lseq > t.recv_high then t.recv_high <- lseq;
    (* If this block is already being tracked (parity arrived first or
       out-of-order data), update it. *)
    Hashtbl.iter
      (fun base bs ->
        if lseq >= base && lseq < base + Array.length bs.bs_pkts then begin
          bs.bs_have.(lseq - base) <- true;
          try_decode t base bs
        end)
      t.blocks;
    compact t;
    deliver t pkt
  end

let handle_parity t ~block ~k ~blk_pkts =
  if List.length blk_pkts = k && k > 0 && block > t.recv_floor then begin
    if block + k - 1 > t.recv_high then t.recv_high <- block + k - 1;
    let bs = block_for t block blk_pkts in
    bs.bs_parities <- bs.bs_parities + 1;
    try_decode t block bs;
    compact t
  end

let recv t = function
  | Msg.Data { lseq; pkt; _ } -> handle_data t lseq pkt
  | Msg.Fec_parity { block; k; blk_pkts; _ } -> handle_parity t ~block ~k ~blk_pkts
  | Msg.Link_ack _ | Msg.Link_nack _ | Msg.Rt_request _ | Msg.It_ack _
  | Msg.Hello _ | Msg.Hello_ack _ | Msg.Probe _ | Msg.Probe_ack _
  | Msg.Lsu _ | Msg.Group_update _ ->
    ()

let sent t = t.n_sent
let parity_sent t = t.n_parity
let recovered t = t.n_recovered
let delivered_up t = t.n_up

let wire_overhead t =
  if t.data_bytes = 0 then 1.0
  else float_of_int (t.data_bytes + t.parity_bytes) /. float_of_int t.data_bytes
