open Strovl_sim

module FlowMap = Map.Make (struct
  type t = Packet.flow

  let compare = Packet.flow_compare
end)

type t = {
  node : Node.t;
  port : int;
  mutable app : (Packet.t -> unit) option;
  mutable reorder : bool;
  mutable buffers : Deliver.t FlowMap.t;
  mutable n_received : int;
}

let deliver_app t pkt =
  t.n_received <- t.n_received + 1;
  match t.app with None -> () | Some f -> f pkt

let mode_for pkt =
  match pkt.Packet.service with
  | Packet.Reliable | Packet.It_reliable -> Deliver.Ordered
  | Packet.Realtime { deadline; _ } -> Deliver.Deadline deadline
  | Packet.Best_effort | Packet.It_priority _ | Packet.Fec _ ->
    Deliver.Unordered

let on_packet t pkt =
  if not t.reorder then deliver_app t pkt
  else begin
    let flow = pkt.Packet.flow in
    let buf =
      match FlowMap.find_opt flow t.buffers with
      | Some b -> b
      | None ->
        let b =
          Deliver.create (Node.engine t.node) (mode_for pkt)
            ~deliver:(deliver_app t)
        in
        t.buffers <- FlowMap.add flow b t.buffers;
        b
    in
    Deliver.push buf pkt
  end

let attach node ~port =
  let t =
    {
      node;
      port;
      app = None;
      reorder = true;
      buffers = FlowMap.empty;
      n_received = 0;
    }
  in
  Node.register_session node ~port ~deliver:(on_packet t);
  t

let detach t = Node.unregister_session t.node ~port:t.port
let node_id t = Node.id t.node
let port t = t.port
let join t ~group = Node.join_group t.node ~group ~port:t.port
let leave t ~group = Node.leave_group t.node ~group ~port:t.port

let set_receiver t ?(reorder = true) f =
  t.reorder <- reorder;
  t.app <- Some f

let received t = t.n_received

type route_pref = Table | Scheme of Strovl_topo.Dissem.scheme

type sender = {
  client : t;
  service : Packet.service;
  route : route_pref;
  dest : Packet.dest;
  dport : int;
  mutable seq : int;
}

let sender t ?(service = Packet.Best_effort) ?(route = Table) ~dest ~dport () =
  { client = t; service; route; dest; dport; seq = 0 }

let routing_of s =
  match s.route with
  | Table -> Packet.Link_state
  | Scheme scheme ->
    let node = s.client.node in
    let target =
      match s.dest with
      | Packet.To_node n -> Some n
      | Packet.Any_of_group g -> Route.anycast_target (Node.route node) ~group:g
      | Packet.To_group _ -> None
    in
    let mask =
      match (scheme, target) with
      | Strovl_topo.Dissem.Flooding, _ | _, None ->
        (* Group destinations under source routing use constrained flooding
           over the live topology. *)
        Route.usable_mask (Node.route node)
      | _, Some dst when dst = Node.id node ->
        Route.usable_mask (Node.route node)
      | _, Some dst -> Route.dissem_mask (Node.route node) ~dst scheme
    in
    Packet.Source_mask mask

let send s ?(bytes = 1200) ?(tag = "") () =
  let node = s.client.node in
  let flow =
    {
      Packet.f_src = Node.id node;
      f_sport = s.client.port;
      f_dest = s.dest;
      f_dport = s.dport;
    }
  in
  let pkt =
    Packet.make ~flow ~routing:(routing_of s) ~service:s.service ~seq:s.seq
      ~sent_at:(Engine.now (Node.engine node))
      ~bytes ~tag ()
  in
  let accepted = Node.originate node pkt in
  if accepted then s.seq <- s.seq + 1;
  accepted

let sent s = s.seq

let flow_of s =
  {
    Packet.f_src = node_id s.client;
    f_sport = s.client.port;
    f_dest = s.dest;
    f_dport = s.dport;
  }
