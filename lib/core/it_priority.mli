(** Intrusion-Tolerant Priority messaging (§IV-B).

    Timely, as-reliable-as-conditions-allow forwarding that a compromised
    source cannot starve: the outgoing side of each overlay link keeps a
    separate bounded buffer *per source overlay node* and serves active
    sources in round robin, so a flooding source only ever consumes its own
    share of the link. When a source's buffer fills, the *oldest
    lowest-priority* message of that source is dropped, keeping the highest
    priority messages timely.

    A [Fifo] mode implements the non-intrusion-tolerant baseline (single
    shared drop-tail queue) that the fairness experiment contrasts against.

    Transmission is self-paced at the link bandwidth, so the scheduling
    decision — which source's packet goes next — is made here and not in the
    underlying FIFO of the network interface. *)

type t

type mode =
  | Round_robin  (** the paper's fair scheduler *)
  | Fifo  (** baseline: one shared queue, drop-tail *)

type config = {
  mode : mode;
  per_source_cap : int;  (** buffer per source (packets), Round_robin mode *)
  fifo_cap : int;  (** total buffer (packets), Fifo mode *)
}

val default_config : config
(** Round-robin, 64 packets per source, 512 fifo. *)

val create : ?config:config -> Lproto.ctx -> t

val send : t -> Packet.t -> unit
(** Enqueue for transmission on this link. Never refuses; overflow follows
    the drop policy. The packet's priority is taken from its
    [It_priority p] service. *)

val recv : t -> Msg.t -> unit

val sent_for : t -> source:int -> int
(** Packets of the given source overlay node actually transmitted. *)

val dropped_for : t -> source:int -> int
val total_sent : t -> int
val total_dropped : t -> int
val queue_len : t -> source:int -> int
