(** Node-to-node wire messages.

    Everything overlay daemons exchange on overlay links: data packets
    wrapped with link-protocol state (class + link sequence number),
    link-protocol control traffic (acks, nacks, retransmission requests),
    the hello protocol, and the flooded shared-state updates (link-state
    updates and group-membership updates, §II-B).

    [bytes] gives each message's on-wire size so the bandwidth/queueing
    model charges realistic costs. *)

type node = int

type link_info = { li_up : bool; li_metric : int; li_loss : int }
(** One incident link as reported by its endpoint in an LSU: [li_metric] is
    the measured one-way latency (µs) and [li_loss] the measured loss rate
    in permille — §II-B: the shared state includes "the current loss and
    latency characteristics of the overlay links". *)

type t =
  | Data of {
      cls : int;  (** service class (Packet.service_class) *)
      lseq : int;  (** per-(link, class) sequence number *)
      pkt : Packet.t;
      auth : int64 option;  (** origin signature for intrusion-tolerant classes *)
    }
  | Link_ack of { cls : int; cum : int }
      (** cumulative: everything ≤ [cum] received for the class *)
  | Link_nack of { cls : int; missing : int list }
  | Rt_request of { lseq : int }  (** NM-Strikes retransmission request *)
  | It_ack of { lseq : int }
      (** per-packet acceptance ack for IT-Reliable: sent only once the
          packet is accepted into the next hop's buffers, so a missing ack
          is backpressure (§IV-B) *)
  | Fec_parity of {
      block : int;  (** block index; data lseqs [block·k+1 .. block·k+k] *)
      idx : int;  (** parity symbol index within the block *)
      k : int;
      bytes : int;  (** parity symbol wire size (max packet in block) *)
      blk_pkts : Packet.t list;
          (** simulation artifact: the block's packets, letting the
              receiver "decode" erasures without real coding arithmetic;
              NOT counted toward the wire size *)
    }
  | Hello of { hseq : int; sent_at : Strovl_sim.Time.t }
  | Hello_ack of { hseq : int; echo : Strovl_sim.Time.t }
      (** echoes the hello sender's timestamp for RTT estimation *)
  | Probe of { pseq : int; sent_at : Strovl_sim.Time.t }
      (** health probe ([Probe_link]): like [Hello] but on its own
          configurable period, feeding the [Strovl_obs.Health] registry *)
  | Probe_ack of { pseq : int; echo : Strovl_sim.Time.t }
  | Lsu of {
      origin : node;
      lsu_seq : int;
      links : (int * link_info) list;  (** the origin's incident links *)
      auth : int64 option;
    }
  | Group_update of {
      origin : node;
      gseq : int;
      memb : (int * bool) list;  (** (group, origin has local members) *)
      auth : int64 option;
    }

val bytes : t -> int
(** On-wire size including overlay header and payload. *)

val signable : t -> string
(** Canonical byte string covered by the origin signature of flooded
    state updates and IT data (excludes the signature itself). *)

val pp : Format.formatter -> t -> unit
