open Strovl_sim
module Health = Strovl_obs.Health

type config = {
  period : Time.t;
  k_missed : int;
  loss_window : int;
}

let default_config = { period = Time.ms 50; k_missed = 3; loss_window = 50 }

(* One prober per overlay-link endpoint. Probes are tiny timestamped
   round trips on their own period (independent of the hello protocol's);
   the responder side is stateless and lives in the node's receive
   dispatch, so a probing node can measure a peer that does not probe.
   Results land in the process-wide Strovl_obs.Health registry; the node
   optionally bridges them into connectivity-graph advertisement via the
   [on_update]/[on_verdict] callbacks. *)
type t = {
  ctx : Lproto.ctx;
  cfg : config;
  health : Health.t;
  mutable pseq : int;
  mutable acks_since_tick : int;
  mutable missed : int; (* consecutive probe periods with no ack *)
  mutable window_sent : int;
  mutable window_acked : int;
  mutable on_update : Health.t -> unit;
  mutable on_verdict : alive:bool -> unit;
  mutable started : bool;
  mutable pending : Engine.handle option; (* the next scheduled tick *)
}

let create ?(config = default_config) ctx =
  if config.period < 1 then invalid_arg "Probe_link: period must be positive";
  if config.k_missed < 1 then invalid_arg "Probe_link: k_missed must be >= 1";
  if config.loss_window < 1 then
    invalid_arg "Probe_link: loss_window must be >= 1";
  {
    ctx;
    cfg = config;
    health = Health.fresh ~node:ctx.Lproto.node ~link:ctx.Lproto.link;
    pseq = 0;
    acks_since_tick = 0;
    missed = 0;
    window_sent = 0;
    window_acked = 0;
    on_update = (fun _ -> ());
    on_verdict = (fun ~alive:_ -> ());
    started = false;
    pending = None;
  }

let health t = t.health
let set_on_update t f = t.on_update <- f
let set_on_verdict t f = t.on_verdict <- f

let verdict t alive =
  if t.health.Health.alive <> alive then begin
    Health.set_alive t.health alive;
    Lproto.trace t.ctx
      (Strovl_obs.Trace.Probe_verdict (t.ctx.Lproto.link, alive));
    t.on_verdict ~alive
  end

let handle_ack t ~pseq:_ ~echo =
  t.acks_since_tick <- t.acks_since_tick + 1;
  t.missed <- 0;
  t.window_acked <- t.window_acked + 1;
  Health.note_acked t.health;
  let sample = Time.sub (Engine.now t.ctx.Lproto.engine) echo in
  if sample >= 0 then Health.observe_rtt t.health sample;
  verdict t true;
  t.on_update t.health

let fold_window t =
  Health.fold_loss t.health ~sent:t.window_sent ~acked:t.window_acked;
  t.window_sent <- 0;
  t.window_acked <- 0;
  t.on_update t.health

let tick t () =
  (* Account the last period first: a period with no ack at all is one
     missed probe; k in a row flips the liveness verdict. *)
  if t.pseq > 0 && t.acks_since_tick = 0 then begin
    t.missed <- t.missed + 1;
    if t.missed >= t.cfg.k_missed then verdict t false
  end;
  t.acks_since_tick <- 0;
  t.pseq <- t.pseq + 1;
  t.window_sent <- t.window_sent + 1;
  Health.note_sent t.health;
  if t.window_sent >= t.cfg.loss_window then fold_window t;
  Lproto.trace t.ctx (Strovl_obs.Trace.Probe t.ctx.Lproto.link);
  t.ctx.Lproto.xmit
    (Msg.Probe { pseq = t.pseq; sent_at = Engine.now t.ctx.Lproto.engine })

let start t =
  if not t.started then begin
    t.started <- true;
    let rec loop () =
      tick t ();
      t.pending <-
        Some (Engine.schedule t.ctx.Lproto.engine ~delay:t.cfg.period loop)
    in
    loop ()
  end

let stop t =
  if t.started then begin
    t.started <- false;
    (match t.pending with
    | Some h -> Engine.cancel t.ctx.Lproto.engine h
    | None -> ());
    t.pending <- None
  end
