(** Binary wire format for overlay messages.

    The overlay daemons of a real deployment exchange these messages as UDP
    datagrams between data centers; this codec defines that format: a tag
    byte plus big-endian fields, with the source-route bitmask carried as a
    word-count-prefixed array (§II-B: one bit per overlay link) and
    application payloads represented by their length (the simulator never
    materializes payload bytes; a deployment would append them after the
    header this codec produces).

    [decode] never raises on hostile input — a compromised peer can send
    arbitrary bytes — and rejects truncated, oversized, or malformed
    messages with a descriptive error. *)

type error = string

val encode : Msg.t -> string
(** Serialized header+control bytes of the message. For [Data] the
    application payload is *not* materialized: the wire size of the full
    datagram is [String.length (encode m) + payload_bytes m]. *)

val decode : string -> (Msg.t, error) result
(** Inverse of {!encode}: [decode (encode m)] = [Ok m]. *)

val payload_bytes : Msg.t -> int
(** Application payload bytes that would follow the encoded header on the
    wire (0 for control messages). *)

val header_size : Msg.t -> int
(** Exact length of [encode m], computed arithmetically without
    serializing. The qcheck suite pins [header_size m] to
    [String.length (encode m)] for arbitrary messages. *)

val size : Msg.t -> int
(** [header_size m + payload_bytes m]: the exact datagram size, computed
    without encoding. {!Msg.bytes} is a cheap analytic approximation of
    this; the test suite keeps the two within a small tolerance. *)
