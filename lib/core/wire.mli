(** Binary wire format for overlay messages.

    The overlay daemons of a real deployment exchange these messages as UDP
    datagrams between data centers; this codec defines that format: a tag
    byte plus big-endian fields, with the source-route bitmask carried as a
    word-count-prefixed array (§II-B: one bit per overlay link) and
    application payloads represented by their length (the simulator never
    materializes payload bytes; a deployment would append them after the
    header this codec produces).

    [decode] never raises on hostile input — a compromised peer can send
    arbitrary bytes — and rejects truncated, oversized, or malformed
    messages with a descriptive error. *)

type error = string

val encode : Msg.t -> string
(** Serialized header+control bytes of the message. For [Data] the
    application payload is *not* materialized: the wire size of the full
    datagram is [String.length (encode m) + payload_bytes m]. *)

val decode : string -> (Msg.t, error) result
(** Inverse of {!encode}: [decode (encode m)] = [Ok m]. *)

val payload_bytes : Msg.t -> int
(** Application payload bytes that would follow the encoded header on the
    wire (0 for control messages). *)

val header_size : Msg.t -> int
(** Exact length of [encode m], computed arithmetically without
    serializing. The qcheck suite pins [header_size m] to
    [String.length (encode m)] for arbitrary messages. *)

val size : Msg.t -> int
(** [header_size m + payload_bytes m]: the exact datagram size, computed
    without encoding. {!Msg.bytes} is a cheap analytic approximation of
    this; the test suite keeps the two within a small tolerance. *)

(** Client ↔ daemon session protocol (the session interface of Figure 2,
    over the wall-clock runtime's UDP sockets). A client opens a virtual
    port on its local daemon, optionally joins multicast groups, and
    injects flows; the daemon answers with acceptance verdicts, delivered
    packets, and stats snapshots. Frames are carried inside {!datagram}s
    with kind [Dg_session]. *)
module Session : sig
  type frame =
    | Open of { sport : int }  (** claim virtual port [sport] *)
    | Open_ok of { node : int; sport : int }
        (** daemon's ack, naming its overlay node id *)
    | Join of { group : int; sport : int }
    | Leave of { group : int; sport : int }
    | Send of {
        sport : int;
        dest : Packet.dest;
        dport : int;
        service : Packet.service;
        seq : int;  (** client-chosen, echoed in [Sent] *)
        bytes : int;  (** payload size the daemon should originate *)
        tag : string;  (** free-form flow label, echoed in traces *)
      }
    | Sent of { sport : int; seq : int; accepted : bool }
        (** originate verdict; [accepted = false] is IT-Reliable
            backpressure *)
    | Deliver of { sport : int; at : int; pkt : Packet.t }
        (** a packet for the client's port; [at] is the daemon's receive
            stamp in engine time (µs) *)
    | Stats_req of { what : int }
    | Stats of { json : string }
    | Close of { sport : int }

  val encode : frame -> string
  val decode : string -> (frame, error) result
  (** Never raises; [decode (encode f)] = [Ok f]. *)

  val size : frame -> int
  (** Exact [String.length (encode f)], computed arithmetically. *)
end

(** {2 UDP datagram framing}

    What actually crosses a real socket: a 4-byte preamble (2-byte magic,
    version, kind) followed by one encoded message. Overlay datagrams name
    the sending node and the overlay link they travel on so the receiving
    daemon can dispatch into [Node.receive ~link] and sanity-check the
    sender; session datagrams carry one {!Session.frame}. Application
    payload is, as everywhere in this reproduction, represented by its byte
    count — a deployment would append [payload_bytes] of data after the
    encoded header. *)

type datagram =
  | Dg_msg of { src : int; link : int; msg : Msg.t }
  | Dg_session of Session.frame

val encode_datagram : datagram -> string
val decode_datagram : string -> (datagram, error) result
(** Never raises on hostile input: bad magic, unknown version or kind,
    truncation, and trailing bytes all yield [Error]. *)

val datagram_size : datagram -> int
(** Exact [String.length (encode_datagram d)] without serializing. *)
