(** Forward-error-corrected link protocol.

    The proactive alternative to reactive recovery: every [k] data packets
    the sender emits [r] parity symbols, and the receiver can reconstruct
    any ≤ r erasures in the block from any k of the k+r symbols (an MDS
    erasure code — Reed–Solomon in a real deployment; the simulator models
    the code's *erasure behaviour* and wire cost, not its arithmetic).

    This is the OverQoS-style scheme of the related work (§VI) and the
    repository's demonstration that the overlay node architecture's link
    level "can be easily extended" with new protocols (§II-B). Compared to
    NM-Strikes: recovery needs {e no} extra round trip (good when the
    deadline is tight relative to the RTT) but pays a {e fixed} r/k
    bandwidth overhead whether or not loss occurs, and a recovered packet
    still waits for the end of its block.

    A flush timer bounds the wait for partial blocks on slow flows. *)

type t

type config = {
  k : int;  (** data packets per block *)
  r : int;  (** parity symbols per block *)
  flush : Strovl_sim.Time.t;
      (** emit parity for a partial block after this idle time *)
}

val default_config : config
(** k=8, r=2 (25% overhead), 20 ms flush. *)

val create : ?config:config -> Lproto.ctx -> t
val send : t -> Packet.t -> unit
val recv : t -> Msg.t -> unit

val sent : t -> int
(** Data packets transmitted. *)

val parity_sent : t -> int
val recovered : t -> int
(** Packets reconstructed from parity at the receiver. *)

val delivered_up : t -> int

val wire_overhead : t -> float
(** (data bytes + parity bytes) / data bytes ≈ 1 + r/k. *)
