open Strovl_sim

type mode = Round_robin | Fifo

type config = { mode : mode; per_source_cap : int; fifo_cap : int }

let default_config = { mode = Round_robin; per_source_cap = 64; fifo_cap = 512 }

type t = {
  ctx : Lproto.ctx;
  cfg : config;
  (* Per-source FIFO buffers (in Fifo mode a single pseudo-source -1 is
     used). Lists kept in arrival order, head = oldest. *)
  queues : (int, Packet.t list ref) Hashtbl.t;
  rotation : int Queue.t; (* sources with queued packets, round-robin order *)
  in_rotation : (int, unit) Hashtbl.t;
  mutable busy : bool;
  mutable lseq : int;
  sent : (int, int) Hashtbl.t;
  dropped : (int, int) Hashtbl.t;
  mutable n_sent : int;
  mutable n_dropped : int;
  m_evicted : Strovl_obs.Metrics.Counter.t;
}

let create ?(config = default_config) ctx =
  {
    ctx;
    cfg = config;
    queues = Hashtbl.create 16;
    rotation = Queue.create ();
    in_rotation = Hashtbl.create 16;
    busy = false;
    lseq = 0;
    sent = Hashtbl.create 16;
    dropped = Hashtbl.create 16;
    n_sent = 0;
    n_dropped = 0;
    m_evicted =
      Strovl_obs.Metrics.counter
        ~labels:[ ("proto", "it-priority") ]
        "strovl_link_queue_drops_total";
  }

let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let source_of pkt =
  pkt.Packet.flow.Packet.f_src

let priority_of pkt =
  match pkt.Packet.service with Packet.It_priority p -> p | _ -> 0

let queue t key =
  match Hashtbl.find_opt t.queues key with
  | Some q -> q
  | None ->
    let q = ref [] in
    Hashtbl.replace t.queues key q;
    q

let enter_rotation t key =
  if not (Hashtbl.mem t.in_rotation key) then begin
    Hashtbl.replace t.in_rotation key ();
    Queue.add key t.rotation
  end

(* Remove the oldest message having the minimum priority in the queue,
   charging the drop to the evicted packet's source. *)
let evict_oldest_lowest t q =
  match !q with
  | [] -> ()
  | items ->
    let min_prio = List.fold_left (fun acc p -> min acc (priority_of p)) max_int items in
    let victim = ref None in
    let rec remove_first = function
      | [] -> []
      | p :: rest when !victim = None && priority_of p = min_prio ->
        victim := Some p;
        rest
      | p :: rest -> p :: remove_first rest
    in
    q := remove_first items;
    (match !victim with
    | Some p ->
      t.n_dropped <- t.n_dropped + 1;
      bump t.dropped (source_of p);
      Strovl_obs.Metrics.Counter.incr t.m_evicted;
      Lproto.trace_pkt t.ctx p (Strovl_obs.Trace.Drop Strovl_obs.Trace.Priority_evict)
    | None -> ())

let rec service t =
  if not t.busy then begin
    match Queue.take_opt t.rotation with
    | None -> ()
    | Some key -> begin
      Hashtbl.remove t.in_rotation key;
      let q = queue t key in
      match !q with
      | [] -> service t (* source drained meanwhile *)
      | pkt :: rest ->
        q := rest;
        if rest <> [] then enter_rotation t key;
        t.lseq <- t.lseq + 1;
        t.n_sent <- t.n_sent + 1;
        bump t.sent (source_of pkt);
        let msg =
          Msg.Data
            {
              cls = Packet.service_class pkt.Packet.service;
              lseq = t.lseq;
              pkt;
              auth = None;
            }
        in
        t.ctx.Lproto.xmit msg;
        t.busy <- true;
        (* Self-pace at link bandwidth so round robin, not the NIC FIFO,
           decides ordering under load. *)
        ignore
          (Engine.schedule t.ctx.Lproto.engine
             ~delay:(Lproto.tx_time t.ctx (Msg.bytes msg))
             (fun () ->
               t.busy <- false;
               service t))
    end
  end

let send t pkt =
  let key = match t.cfg.mode with Round_robin -> source_of pkt | Fifo -> -1 in
  let cap =
    match t.cfg.mode with
    | Round_robin -> t.cfg.per_source_cap
    | Fifo -> t.cfg.fifo_cap
  in
  let q = queue t key in
  q := !q @ [ pkt ];
  if List.length !q > cap then evict_oldest_lowest t q;
  if !q <> [] then enter_rotation t key;
  service t

let recv t = function
  | Msg.Data { pkt; _ } -> t.ctx.Lproto.up pkt
  | _ -> ()

let sent_for t ~source = Option.value ~default:0 (Hashtbl.find_opt t.sent source)
let dropped_for t ~source = Option.value ~default:0 (Hashtbl.find_opt t.dropped source)
let total_sent t = t.n_sent
let total_dropped t = t.n_dropped

let queue_len t ~source =
  let key = match t.cfg.mode with Round_robin -> source | Fifo -> -1 in
  match Hashtbl.find_opt t.queues key with None -> 0 | Some q -> List.length !q
