open Strovl_sim

type mode = Unordered | Ordered | Deadline of Time.t

module IntMap = Map.Make (Int)

type t = {
  engine : Engine.t;
  mode : mode;
  deliver : Packet.t -> unit;
  mutable next : int; (* next expected sequence number *)
  mutable buf : Packet.t IntMap.t;
  mutable timer : Engine.handle option;
  mutable n_delivered : int;
  mutable n_late : int;
  mutable n_skipped : int;
}

let create engine mode ~deliver =
  {
    engine;
    mode;
    deliver;
    next = 0;
    buf = IntMap.empty;
    timer = None;
    n_delivered = 0;
    n_late = 0;
    n_skipped = 0;
  }

let deliver_one t pkt =
  t.n_delivered <- t.n_delivered + 1;
  t.deliver pkt

(* Deliver the contiguous run starting at [t.next] out of the buffer. *)
let rec drain t =
  match IntMap.find_opt t.next t.buf with
  | None -> ()
  | Some pkt ->
    t.buf <- IntMap.remove t.next t.buf;
    t.next <- t.next + 1;
    deliver_one t pkt;
    drain t

let cancel_timer t =
  match t.timer with
  | None -> ()
  | Some h ->
    Engine.cancel t.engine h;
    t.timer <- None

(* In Deadline mode: (re)arm the give-up timer for the earliest buffered
   packet. When it fires, every sequence slot before that packet is
   abandoned and the contiguous run delivered. *)
let rec rearm t deadline =
  cancel_timer t;
  match IntMap.min_binding_opt t.buf with
  | None -> ()
  | Some (seq, pkt) ->
    let expire = Time.add pkt.Packet.sent_at deadline in
    let now = Engine.now t.engine in
    let fire () =
      t.timer <- None;
      t.n_skipped <- t.n_skipped + (seq - t.next);
      t.next <- seq;
      drain t;
      rearm t deadline
    in
    if expire <= now then fire ()
    else
      t.timer <- Some (Engine.schedule t.engine ~delay:(Time.sub expire now) fire)

let push t pkt =
  let seq = pkt.Packet.seq in
  match t.mode with
  | Unordered -> deliver_one t pkt
  | Ordered ->
    if seq < t.next || IntMap.mem seq t.buf then () (* duplicate *)
    else if seq = t.next then begin
      t.next <- t.next + 1;
      deliver_one t pkt;
      drain t
    end
    else t.buf <- IntMap.add seq pkt t.buf
  | Deadline deadline ->
    if seq < t.next then t.n_late <- t.n_late + 1
    else if IntMap.mem seq t.buf then () (* duplicate *)
    else if seq = t.next then begin
      t.next <- t.next + 1;
      deliver_one t pkt;
      drain t;
      rearm t deadline
    end
    else begin
      t.buf <- IntMap.add seq pkt t.buf;
      rearm t deadline
    end

let delivered t = t.n_delivered
let discarded_late t = t.n_late
let skipped t = t.n_skipped
let pending t = IntMap.cardinal t.buf
