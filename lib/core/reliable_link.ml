open Strovl_sim
module IntMap = Map.Make (Int)

type config = {
  ack_every : int;
  ack_delay : Time.t;
  nack_repeat : Time.t option;
  rto : Time.t option;
  in_order_forwarding : bool;
  max_nack_repeats : int;
}

let default_config =
  {
    ack_every = 16;
    ack_delay = Time.ms 25;
    nack_repeat = None;
    rto = None;
    in_order_forwarding = false;
    max_nack_repeats = 50;
  }

type t = {
  ctx : Lproto.ctx;
  cfg : config;
  cls : int;
  (* sender *)
  mutable next_lseq : int;
  mutable store : (Packet.t * int64 option) IntMap.t; (* unacked, by lseq *)
  mutable rto_timer : Engine.handle option;
  mutable n_sent : int;
  mutable n_retrans : int;
  (* receiver *)
  mutable recv_high : int; (* highest lseq received *)
  mutable cum : int; (* highest contiguous lseq received *)
  mutable missing : (int, Engine.handle) Hashtbl.t; (* gap lseq -> nack repeat timer *)
  (* Received lseqs beyond cum. Value = Some pkt when the packet is being
     held for in-order forwarding (ablation mode), None once passed up. *)
  mutable seen : Packet.t option IntMap.t;
  mutable unacked_count : int; (* packets received since last cum ack *)
  mutable ack_timer : Engine.handle option;
  mutable n_up : int;
  (* Domain-local metric handles, bound at [create] time (Strovl_obs.Ctx). *)
  m_retrans : Strovl_obs.Metrics.Counter.t;
  m_nacks : Strovl_obs.Metrics.Counter.t;
}

let nack_repeat t =
  match t.cfg.nack_repeat with
  | Some d -> d
  | None -> Time.max (Time.ms 2) (Time.add t.ctx.Lproto.rtt_hint t.ctx.Lproto.rtt_hint)

(* The RTO must outlast the worst-case ack round trip, which includes the
   receiver's delayed-ack timer — otherwise an idle sender spuriously
   retransmits while its ack is still in flight. *)
let rto t =
  match t.cfg.rto with
  | Some d -> d
  | None ->
    Time.max (Time.ms 5) (Time.add (3 * t.ctx.Lproto.rtt_hint) t.cfg.ack_delay)

let note_retrans t pkt =
  t.n_retrans <- t.n_retrans + 1;
  Strovl_obs.Metrics.Counter.incr t.m_retrans;
  if Strovl_obs.Series.armed () then
    Strovl_obs.Series.incr
      (Strovl_obs.Series.channel
         ~labels:[ ("link", string_of_int t.ctx.Lproto.link) ]
         "strovl_link_retransmits");
  Lproto.trace_pkt t.ctx pkt (Strovl_obs.Trace.Retransmit t.ctx.Lproto.link)

let create ?(config = default_config) ctx =
  {
    ctx;
    cfg = config;
    cls = Packet.service_class Packet.Reliable;
    next_lseq = 0;
    store = IntMap.empty;
    rto_timer = None;
    n_sent = 0;
    n_retrans = 0;
    recv_high = 0;
    cum = 0;
    missing = Hashtbl.create 8;
    seen = IntMap.empty;
    unacked_count = 0;
    ack_timer = None;
    n_up = 0;
    m_retrans =
      Strovl_obs.Metrics.counter
        ~labels:[ ("proto", "reliable") ]
        "strovl_link_retransmits_total";
    m_nacks =
      Strovl_obs.Metrics.counter
        ~labels:[ ("proto", "reliable") ]
        "strovl_link_nacks_total";
  }

(* ---------------- sender side ---------------- *)

let xmit_data t lseq pkt auth =
  t.ctx.Lproto.xmit (Msg.Data { cls = t.cls; lseq; pkt; auth })

let rec arm_rto t =
  (match t.rto_timer with
  | Some h -> Engine.cancel t.ctx.Lproto.engine h
  | None -> ());
  if IntMap.is_empty t.store then t.rto_timer <- None
  else
    t.rto_timer <-
      Some
        (Engine.schedule t.ctx.Lproto.engine ~delay:(rto t) (fun () ->
             t.rto_timer <- None;
             (* Tail-loss probe: retransmit the oldest unacked packet. *)
             (match IntMap.min_binding_opt t.store with
             | Some (lseq, (pkt, auth)) ->
               note_retrans t pkt;
               xmit_data t lseq pkt auth
             | None -> ());
             arm_rto t))

let send t pkt =
  t.next_lseq <- t.next_lseq + 1;
  let lseq = t.next_lseq in
  t.store <- IntMap.add lseq (pkt, None) t.store;
  t.n_sent <- t.n_sent + 1;
  xmit_data t lseq pkt None;
  if t.rto_timer = None then arm_rto t

let handle_ack t cum =
  (* Keep only lseq > cum; split also discards the binding at cum itself,
     which is acked. *)
  let _, _, keep = IntMap.split cum t.store in
  t.store <- keep;
  arm_rto t

let handle_nack t missing =
  List.iter
    (fun lseq ->
      match IntMap.find_opt lseq t.store with
      | Some (pkt, auth) ->
        note_retrans t pkt;
        xmit_data t lseq pkt auth
      | None -> () (* already acked: the nack crossed a retransmission *))
    missing;
  arm_rto t

(* ---------------- receiver side ---------------- *)

let send_cum_ack t =
  (match t.ack_timer with
  | Some h -> Engine.cancel t.ctx.Lproto.engine h
  | None -> ());
  t.ack_timer <- None;
  t.unacked_count <- 0;
  t.ctx.Lproto.xmit (Msg.Link_ack { cls = t.cls; cum = t.cum })

let schedule_ack t =
  t.unacked_count <- t.unacked_count + 1;
  if t.unacked_count >= t.cfg.ack_every then send_cum_ack t
  else if t.ack_timer = None then
    t.ack_timer <-
      Some
        (Engine.schedule t.ctx.Lproto.engine ~delay:t.cfg.ack_delay (fun () ->
             t.ack_timer <- None;
             send_cum_ack t))

let advance_cum t =
  let rec go () =
    let next = t.cum + 1 in
    match IntMap.find_opt next t.seen with
    | Some held ->
      t.seen <- IntMap.remove next t.seen;
      t.cum <- next;
      (match held with
      | Some pkt ->
        t.n_up <- t.n_up + 1;
        t.ctx.Lproto.up pkt
      | None -> ());
      go ()
    | None -> ()
  in
  go ()

let rec nack_loop t lseq tries () =
  if Hashtbl.mem t.missing lseq then begin
    if tries >= t.cfg.max_nack_repeats then begin
      (* The peer will never answer (it rerouted the packet away from this
         link): abandon the slot so timers do not fire forever. The slot is
         marked received-and-forwarded so cum can advance past it. *)
      Hashtbl.remove t.missing lseq;
      t.seen <- IntMap.add lseq None t.seen;
      advance_cum t
    end
    else begin
      Strovl_obs.Metrics.Counter.incr t.m_nacks;
      Lproto.trace t.ctx (Strovl_obs.Trace.Nack (t.ctx.Lproto.link, lseq));
      t.ctx.Lproto.xmit (Msg.Link_nack { cls = t.cls; missing = [ lseq ] });
      let h =
        Engine.schedule t.ctx.Lproto.engine ~delay:(nack_repeat t)
          (nack_loop t lseq (tries + 1))
      in
      Hashtbl.replace t.missing lseq h
    end
  end

let note_gap t lseq =
  if not (Hashtbl.mem t.missing lseq) then begin
    (* First NACK goes out immediately; the timer handles repeats. *)
    Hashtbl.replace t.missing lseq
      (Engine.schedule t.ctx.Lproto.engine ~delay:Time.zero (nack_loop t lseq 0))
  end

let handle_data t lseq pkt =
  let duplicate = lseq <= t.cum || IntMap.mem lseq t.seen in
  if duplicate then send_cum_ack t (* our ack was probably lost; refresh *)
  else begin
    (match Hashtbl.find_opt t.missing lseq with
    | Some h ->
      Engine.cancel t.ctx.Lproto.engine h;
      Hashtbl.remove t.missing lseq
    | None -> ());
    if lseq > t.recv_high then begin
      (* New gap slots between recv_high and lseq. *)
      for g = t.recv_high + 1 to lseq - 1 do
        if g > t.cum && not (IntMap.mem g t.seen) then note_gap t g
      done;
      t.recv_high <- lseq
    end;
    if t.cfg.in_order_forwarding then begin
      (* Ablation: hold until contiguous, forwarding inside advance_cum. *)
      t.seen <- IntMap.add lseq (Some pkt) t.seen;
      advance_cum t
    end
    else begin
      (* Out-of-order forwarding (§III-A): packets go up as they arrive. *)
      t.seen <- IntMap.add lseq None t.seen;
      advance_cum t;
      t.n_up <- t.n_up + 1;
      t.ctx.Lproto.up pkt
    end;
    schedule_ack t
  end

let recv t = function
  | Msg.Data { lseq; pkt; _ } -> handle_data t lseq pkt
  | Msg.Link_ack { cum; _ } -> handle_ack t cum
  | Msg.Link_nack { missing; _ } -> handle_nack t missing
  | Msg.Rt_request _ | Msg.It_ack _ | Msg.Fec_parity _ | Msg.Hello _
  | Msg.Hello_ack _ | Msg.Probe _ | Msg.Probe_ack _ | Msg.Lsu _
  | Msg.Group_update _ ->
    ()

let drain_store t =
  let pkts = List.map (fun (_, (pkt, _)) -> pkt) (IntMap.bindings t.store) in
  t.store <- IntMap.empty;
  (match t.rto_timer with
  | Some h -> Engine.cancel t.ctx.Lproto.engine h
  | None -> ());
  t.rto_timer <- None;
  pkts

let sent t = t.n_sent
let retransmissions t = t.n_retrans
let store_size t = IntMap.cardinal t.store
let delivered_up t = t.n_up
