(** Intrusion-Tolerant Reliable messaging (§IV-B).

    Complete end-to-end reliability with fairness under compromise: the
    outgoing side of each overlay link keeps a separate bounded buffer *per
    source-destination flow* (so a compromised destination cannot block a
    source's other flows) and serves active flows round robin.

    Hop-by-hop reliability with explicit acceptance: a packet is acked only
    once the next hop has taken responsibility for it (accepted it into its
    own buffers). The sender keeps the packet — occupying its buffer slot —
    and retransmits with exponential backoff until acked. A full buffer at
    the next hop therefore silently refuses, the packet stays buffered
    upstream, and the stall propagates backward hop by hop: "creating
    backpressure (potentially all the way back to the source)".

    {!offer} refuses when the flow's buffer is full, which is the
    backpressure signal the session level relays to the sending client. *)

type t

type config = {
  flow_cap : int;  (** buffer per flow, packets (queued + unacked) *)
  rto : Strovl_sim.Time.t option;  (** base retransmit timeout; default 3×RTT *)
  max_backoff : int;  (** retries after which backoff stops doubling *)
}

val default_config : config
(** 32 packets per flow, RTO 3×RTT, backoff cap 6. *)

val create : ?config:config -> Lproto.ctx -> t

val can_accept : t -> flow:Packet.flow -> bool
(** Whether {!offer} would currently succeed for the flow. Lets a node check
    *all* onward links before committing a packet to any of them (a
    source-routed IT packet may need several). *)

val offer : t -> Packet.t -> bool
(** Try to enqueue for transmission on this link; [false] = flow buffer
    full (backpressure). *)

val recv : t -> Msg.t -> unit
(** Handles incoming Data (acceptance decided by the context's [try_up]) and
    It_acks. *)

val buffered : t -> flow:Packet.flow -> int
val total_buffered : t -> int
val sent_for : t -> source:int -> int
val retransmissions : t -> int
val acked : t -> int
