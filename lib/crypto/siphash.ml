type key = { k0 : int64; k1 : int64 }

let key_of_ints k0 k1 = { k0; k1 }

let le64_of_string s off len =
  (* Little-endian load of up to 8 bytes starting at [off]. *)
  let v = ref 0L in
  for i = len - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let key_of_string s =
  let padded = Bytes.make 16 '\000' in
  Bytes.blit_string s 0 padded 0 (min 16 (String.length s));
  let p = Bytes.to_string padded in
  { k0 = le64_of_string p 0 8; k1 = le64_of_string p 8 8 }

let rotl x b = Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

type state = { mutable v0 : int64; mutable v1 : int64; mutable v2 : int64; mutable v3 : int64 }

let sipround s =
  s.v0 <- Int64.add s.v0 s.v1;
  s.v1 <- rotl s.v1 13;
  s.v1 <- Int64.logxor s.v1 s.v0;
  s.v0 <- rotl s.v0 32;
  s.v2 <- Int64.add s.v2 s.v3;
  s.v3 <- rotl s.v3 16;
  s.v3 <- Int64.logxor s.v3 s.v2;
  s.v0 <- Int64.add s.v0 s.v3;
  s.v3 <- rotl s.v3 21;
  s.v3 <- Int64.logxor s.v3 s.v0;
  s.v2 <- Int64.add s.v2 s.v1;
  s.v1 <- rotl s.v1 17;
  s.v1 <- Int64.logxor s.v1 s.v2;
  s.v2 <- rotl s.v2 32

let hash key msg =
  let s =
    {
      v0 = Int64.logxor key.k0 0x736f6d6570736575L;
      v1 = Int64.logxor key.k1 0x646f72616e646f6dL;
      v2 = Int64.logxor key.k0 0x6c7967656e657261L;
      v3 = Int64.logxor key.k1 0x7465646279746573L;
    }
  in
  let len = String.length msg in
  let nblocks = len / 8 in
  for i = 0 to nblocks - 1 do
    let m = le64_of_string msg (i * 8) 8 in
    s.v3 <- Int64.logxor s.v3 m;
    sipround s;
    sipround s;
    s.v0 <- Int64.logxor s.v0 m
  done;
  (* Final block: remaining bytes plus the length in the top byte. *)
  let rem = len - (nblocks * 8) in
  let m =
    Int64.logor
      (le64_of_string msg (nblocks * 8) rem)
      (Int64.shift_left (Int64.of_int (len land 0xff)) 56)
  in
  s.v3 <- Int64.logxor s.v3 m;
  sipround s;
  sipround s;
  s.v0 <- Int64.logxor s.v0 m;
  s.v2 <- Int64.logxor s.v2 0xffL;
  sipround s;
  sipround s;
  sipround s;
  sipround s;
  Int64.logxor (Int64.logxor s.v0 s.v1) (Int64.logxor s.v2 s.v3)

let hash_bytes key b = hash key (Bytes.unsafe_to_string b)

(* Reference vectors: SipHash-2-4 of the message 00 01 02 ... (i-1) bytes
   under key 000102030405060708090a0b0c0d0e0f (Appendix A of the paper).
   We check a few representative lengths. *)
let self_test () =
  let key =
    key_of_string
      "\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f"
  in
  let msg n = String.init n (fun i -> Char.chr i) in
  let expect =
    [
      (0, 0x726fdb47dd0e0e31L);
      (1, 0x74f839c593dc67fdL);
      (8, 0x93f5f5799a932462L);
      (15, 0xa129ca6149be45e5L);
      (63, 0x958a324ceb064572L);
    ]
  in
  List.for_all (fun (n, want) -> hash key (msg n) = want) expect
