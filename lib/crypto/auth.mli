(** Message authentication between overlay nodes.

    §IV-B: because the overlay has only a few tens of nodes, "each overlay
    node can know the identities of all valid overlay nodes in the system,
    and can use cryptography to authenticate messages and ensure that they
    originate from authorized overlay nodes". A {!registry} holds one
    pairwise MAC key per ordered node pair (derived from a system master
    secret) plus a per-node "signing" key used where any receiver must be
    able to verify the origin (link-state updates are flooded, so they are
    verified by every node).

    §V-B observes that cryptographic processing time becomes the barrier to
    timeliness as systems grow; to let experiments account for that, every
    operation reports a simulated CPU cost, calibrated to typical commodity
    numbers (MAC ≈ cheap, RSA-style signature ≈ expensive). The *tags* are
    real (SipHash-2-4), so a compromised node cannot forge traffic from a
    correct node in simulation; only the CPU-time figures are modeled. *)

type registry

type tag = int64

val create_registry : master:string -> nodes:int -> registry
(** Derives all pairwise and per-node keys from the master secret. *)

val mac : registry -> src:int -> dst:int -> string -> tag
(** Pairwise MAC over the message. *)

val verify_mac : registry -> src:int -> dst:int -> string -> tag -> bool

val sign : registry -> node:int -> string -> tag
(** Origin authentication verifiable by every node. Modeled as a MAC under
    the node's broadcast key that only the node legitimately uses to sign —
    the simulation gives attackers access to exactly the keys of the nodes
    they compromised. *)

val verify_sign : registry -> node:int -> string -> tag -> bool

(** Simulated CPU costs, charged to the forwarding path by the overlay node
    model (calibrated to commodity-server magnitudes). *)

val mac_cost : Strovl_sim.Time.t
(** ~1 µs: a short-message MAC. *)

val sign_cost : Strovl_sim.Time.t
(** ~120 µs: an RSA-2048-style signature generation. *)

val verify_sign_cost : Strovl_sim.Time.t
(** ~20 µs: signature verification. *)
