type tag = int64

type registry = {
  nodes : int;
  pair_keys : Siphash.key array array; (* [src].[dst] *)
  node_keys : Siphash.key array;
}

let derive master label =
  let base = Siphash.key_of_string master in
  let h1 = Siphash.hash base label in
  let h2 = Siphash.hash base (label ^ "/2") in
  Siphash.key_of_ints h1 h2

let create_registry ~master ~nodes =
  if nodes <= 0 then invalid_arg "Auth.create_registry";
  {
    nodes;
    pair_keys =
      Array.init nodes (fun s ->
          Array.init nodes (fun d -> derive master (Printf.sprintf "pair/%d/%d" s d)));
    node_keys = Array.init nodes (fun v -> derive master (Printf.sprintf "node/%d" v));
  }

let check r v = if v < 0 || v >= r.nodes then invalid_arg "Auth: node out of range"

let mac r ~src ~dst msg =
  check r src;
  check r dst;
  Siphash.hash r.pair_keys.(src).(dst) msg

let verify_mac r ~src ~dst msg tag = mac r ~src ~dst msg = tag

let sign r ~node msg =
  check r node;
  Siphash.hash r.node_keys.(node) msg

let verify_sign r ~node msg tag = sign r ~node msg = tag

let mac_cost = Strovl_sim.Time.us 1
let sign_cost = Strovl_sim.Time.us 120
let verify_sign_cost = Strovl_sim.Time.us 20
