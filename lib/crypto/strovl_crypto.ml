(** Cryptographic substrate: a from-scratch SipHash-2-4 PRF and the
    node-to-node authentication layer built on it, with simulated CPU cost
    figures for the timeliness-vs-cryptography analysis of §V-B. *)

module Siphash = Siphash
module Auth = Auth
