(** SipHash-2-4 keyed pseudo-random function (Aumasson & Bernstein, 2012).

    Implemented from scratch because the sealed build environment ships no
    cryptography library. SipHash is a genuine keyed PRF (not a toy hash):
    it is what the overlay nodes use to authenticate node-to-node messages
    (§IV-B — "each overlay node ... can use cryptography to authenticate
    messages and ensure that they originate from authorized overlay
    nodes"). 64-bit tags are adequate for the simulated threat model and
    keep per-packet cost realistic for a software router. *)

type key = { k0 : int64; k1 : int64 }

val key_of_string : string -> key
(** Derives a key from arbitrary seed material (first 16 bytes, zero-padded). *)

val key_of_ints : int64 -> int64 -> key

val hash : key -> string -> int64
(** SipHash-2-4 of the message under the key. *)

val hash_bytes : key -> bytes -> int64

val self_test : unit -> bool
(** Checks the implementation against the reference test vector from the
    SipHash paper (key 000102…0f, messages of length 0..63). *)
