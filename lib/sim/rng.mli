(** Deterministic pseudo-random numbers (SplitMix64).

    The simulator never uses [Stdlib.Random]: every source of randomness is
    an explicit [Rng.t] derived from the experiment seed, so that every
    experiment table in the paper reproduction is reproducible bit-for-bit.

    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is a tiny, statistically
    solid generator whose [split] operation lets us derive independent
    streams for independent model components (one per link loss process,
    one per workload source, ...) without correlation. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] returns a new generator statistically independent of the
    future output of [t]. Both generators advance independently. *)

val split_named : t -> string -> t
(** [split_named t name] derives a child stream keyed by [name]; calling it
    twice with the same name on generators in the same state yields the same
    stream. Used to give each model component a stable stream regardless of
    construction order. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean. *)

val uniform_range : t -> float -> float -> float
(** [uniform_range t lo hi] is uniform in [\[lo, hi)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
