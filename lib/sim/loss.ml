type ge_state = Good | Bad

type ge = {
  dur_rng : Rng.t;
      (* Drives state-holding durations only. Because state evolution is a
         pure function of elapsed time, two simulations with the same seed
         see the *same burst timeline* regardless of how much traffic they
         offer — which makes protocol variants comparable. *)
  drop_rng : Rng.t; (* per-packet decisions inside a state *)
  p_good_loss : float;
  p_bad_loss : float;
  mean_good : float; (* us *)
  mean_bad : float; (* us *)
  mutable state : ge_state;
  mutable next_flip : Time.t; (* absolute time of the next state change *)
}

type t =
  | Perfect
  | Always
  | Bernoulli of { rng : Rng.t; p : float }
  | Gilbert of ge
  | Outage of { period : Time.t; outage : Time.t; offset : Time.t }

let perfect = Perfect
let always = Always
let bernoulli rng ~p = Bernoulli { rng; p }

let gilbert_elliott rng ~p_good_loss ~p_bad_loss ~mean_good ~mean_bad =
  let g =
    {
      dur_rng = Rng.split_named rng "durations";
      drop_rng = Rng.split_named rng "drops";
      p_good_loss;
      p_bad_loss;
      mean_good = float_of_int mean_good;
      mean_bad = float_of_int mean_bad;
      state = Good;
      next_flip = 0;
    }
  in
  (* Draw the first good-state duration up front. *)
  g.next_flip <- int_of_float (Rng.exponential g.dur_rng g.mean_good);
  Gilbert g

let periodic_outage ~period ~outage ~offset = Outage { period; outage; offset }

(* Advance the Gilbert–Elliott chain to [now] by consuming state-holding
   durations. Lazy: only runs when the link is actually used. *)
let ge_advance g now =
  while g.next_flip <= now do
    (match g.state with
    | Good ->
      g.state <- Bad;
      g.next_flip <-
        g.next_flip + int_of_float (1. +. Rng.exponential g.dur_rng g.mean_bad)
    | Bad ->
      g.state <- Good;
      g.next_flip <-
        g.next_flip + int_of_float (1. +. Rng.exponential g.dur_rng g.mean_good))
  done

let drops t ~now =
  match t with
  | Perfect -> false
  | Always -> true
  | Bernoulli { rng; p } -> Rng.bernoulli rng p
  | Gilbert g ->
    ge_advance g now;
    let p = match g.state with Good -> g.p_good_loss | Bad -> g.p_bad_loss in
    Rng.bernoulli g.drop_rng p
  | Outage { period; outage; offset } ->
    if now < offset then false
    else begin
      let phase = (now - offset) mod period in
      phase < outage
    end

let mean_loss_rate = function
  | Perfect -> 0.
  | Always -> 1.
  | Bernoulli { p; _ } -> p
  | Gilbert g ->
    ((g.mean_good *. g.p_good_loss) +. (g.mean_bad *. g.p_bad_loss))
    /. (g.mean_good +. g.mean_bad)
  | Outage { period; outage; _ } ->
    float_of_int outage /. float_of_int period

let in_burst t ~now =
  match t with
  | Perfect | Bernoulli _ -> false
  | Always -> true
  | Gilbert g ->
    ge_advance g now;
    g.state = Bad
  | Outage { period; outage; offset } ->
    now >= offset && (now - offset) mod period < outage
