(** Deterministic discrete-event simulation engine.

    The engine owns the virtual clock and an event queue. Model components
    schedule closures to run at future instants; [run] executes them in
    timestamp order (FIFO among equal timestamps). Timers are cancellable,
    which the overlay protocols use heavily (e.g. NM-Strikes cancels pending
    retransmission requests when the packet arrives).

    Events are pooled: slots live in unboxed parallel arrays recycled
    through a free list, and a timer wheel absorbs the dominant short-delay
    class, so [schedule]/[cancel] allocate nothing on the steady-state hot
    path. Handles are generation-counted immediates — cancelling a handle
    whose event already fired (and whose slot was recycled) is a safe
    no-op. *)

type t

type handle
(** A cancellable reference to a scheduled event. Handles are unboxed
    (plain immediates) and generation-counted: they stay safe to use after
    the event has fired and its slot was reused. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes an engine whose root RNG is seeded with [seed]
    (default [1L]). *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root RNG. Components should derive their own stream with
    {!Rng.split_named} at construction time. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay] must be
    non-negative. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule_at t ~at f] runs [f] at absolute time [at >= now t]. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_pending : t -> handle -> bool

val run : ?until:Time.t -> t -> unit
(** Executes events until the queue drains or the clock would pass [until]
    (default: drain). Events scheduled exactly at [until] still run. With a
    finite [until], the clock is advanced to [until] on return even when no
    event fell inside the window (virtual time passes regardless). *)

val step : t -> bool
(** Executes the single next event. Returns [false] if the queue is empty. *)

val pending_events : t -> int

val next_event_time : t -> Time.t option
(** Timestamp of the earliest pending event (cancelled events included —
    they still advance the clock when popped), or [None] when the queue is
    empty. A wall-clock driver ({!Strovl_rt.Runtime}) uses this to compute
    how long it may sleep in [select] before the engine has due work. *)

val clear : t -> unit
(** Drops all pending events (the clock is kept). *)
