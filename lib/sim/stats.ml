module Series = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable sorted : float array option; (* cache, invalidated on add *)
  }

  let create () = { data = [||]; len = 0; sorted = None }

  let add s x =
    let cap = Array.length s.data in
    if s.len = cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let narr = Array.make ncap 0. in
      Array.blit s.data 0 narr 0 s.len;
      s.data <- narr
    end;
    s.data.(s.len) <- x;
    s.len <- s.len + 1;
    s.sorted <- None

  let count s = s.len
  let is_empty s = s.len = 0

  let fold f init s =
    let acc = ref init in
    for i = 0 to s.len - 1 do
      acc := f !acc s.data.(i)
    done;
    !acc

  let sum s = fold ( +. ) 0. s
  let mean s = if s.len = 0 then 0. else sum s /. float_of_int s.len

  let stddev s =
    if s.len < 2 then 0.
    else begin
      let m = mean s in
      let ss = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. s in
      sqrt (ss /. float_of_int (s.len - 1))
    end

  let min s = if s.len = 0 then 0. else fold Float.min Float.infinity s
  let max s = if s.len = 0 then 0. else fold Float.max Float.neg_infinity s

  let sorted s =
    match s.sorted with
    | Some a -> a
    | None ->
      let a = Array.sub s.data 0 s.len in
      Array.sort Float.compare a;
      s.sorted <- Some a;
      a

  let percentile s p =
    if s.len = 0 then 0.
    else begin
      let a = sorted s in
      let rank = int_of_float (ceil (p /. 100. *. float_of_int s.len)) in
      let idx = Stdlib.max 0 (Stdlib.min (s.len - 1) (rank - 1)) in
      a.(idx)
    end

  let median s = percentile s 50.

  let samples s = Array.sub s.data 0 s.len

  let jitter s =
    if s.len < 2 then 0.
    else begin
      let acc = ref 0. in
      for i = 1 to s.len - 1 do
        acc := !acc +. Float.abs (s.data.(i) -. s.data.(i - 1))
      done;
      !acc /. float_of_int (s.len - 1)
    end

  let clear s =
    s.len <- 0;
    s.sorted <- None
end

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr c = c.n <- c.n + 1
  let add c k = c.n <- c.n + k
  let get c = c.n
  let clear c = c.n <- 0
end

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den
