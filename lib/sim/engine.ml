(* Allocation-free event engine.

   Events live in a pooled slot store: parallel int arrays for the
   (time, seq) key, a closure array, a state byte per slot, and an
   intrusive free list threaded through [p_next]. A generation counter per
   slot makes handles ABA-safe ints — [(gen lsl slot_bits) lor slot] — so
   [schedule]/[cancel] allocate nothing once the pool has reached its
   high-water mark.

   Pending events are keyed by (time, seq), lexicographic, across two
   lanes:

   - a timer wheel of [wheel_size] one-microsecond buckets for the
     dominant short-delay class (link transmissions, CPU charges, most
     retransmission timers). Because the engine always pops the global
     minimum, every queued time lies in [clock, clock + wheel_size) when
     it sits in the wheel, so a bucket never mixes two distinct times and
     its FIFO chain is automatically in seq order;
   - a binary heap (unboxed parallel arrays, see {!Heap}) for everything
     scheduled further out.

   The two lanes are merged by comparing (time, seq) at pop time, so
   execution order is bit-identical to a single global heap. *)

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1
let wheel_bits = 15
let wheel_size = 1 lsl wheel_bits (* 32.768 ms of 1 us buckets *)
let wheel_mask = wheel_size - 1
let bm_words = wheel_size lsr 5 (* occupancy bitmap, 32 buckets per word *)

let nop () = ()

(* Slot states. *)
let st_free = '\000'
let st_pending = '\001'
let st_cancelled = '\002'

type handle = int

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  root_rng : Rng.t;
  (* Event pool. *)
  mutable p_fn : (unit -> unit) array;
  mutable p_time : int array;
  mutable p_seq : int array;
  mutable p_gen : int array;
  mutable p_state : Bytes.t;
  mutable p_next : int array; (* free list / wheel bucket chaining *)
  mutable free_head : int;
  (* Far lane: heap of slot indices keyed by (time, seq). *)
  heap : int Heap.t;
  (* Near lane: timer wheel. *)
  w_head : int array;
  w_tail : int array;
  w_bitmap : int array;
  mutable w_count : int;
  mutable w_next_time : int; (* earliest queued wheel time; -1 when empty *)
}

let create ?(seed = 1L) () =
  let t =
    {
      clock = Time.zero;
      seq = 0;
      root_rng = Rng.create seed;
      p_fn = [||];
      p_time = [||];
      p_seq = [||];
      p_gen = [||];
      p_state = Bytes.empty;
      p_next = [||];
      free_head = -1;
      heap = Heap.create ();
      w_head = Array.make wheel_size (-1);
      w_tail = Array.make wheel_size (-1);
      w_bitmap = Array.make bm_words 0;
      w_count = 0;
      w_next_time = -1;
    }
  in
  (* The flight recorder timestamps events with this engine's virtual
     clock. Last engine created wins — one live simulation per process. *)
  Strovl_obs.Trace.set_clock (fun () -> t.clock);
  t

let now t = t.clock
let rng t = t.root_rng

(* ------------------------------ pool ---------------------------------- *)

let grow_pool t =
  let cap = Array.length t.p_time in
  let ncap = if cap = 0 then 256 else cap * 2 in
  if ncap > 1 lsl slot_bits then failwith "Engine: event pool exhausted";
  let nfn = Array.make ncap nop in
  Array.blit t.p_fn 0 nfn 0 cap;
  t.p_fn <- nfn;
  let ntime = Array.make ncap 0 in
  Array.blit t.p_time 0 ntime 0 cap;
  t.p_time <- ntime;
  let nseq = Array.make ncap 0 in
  Array.blit t.p_seq 0 nseq 0 cap;
  t.p_seq <- nseq;
  let ngen = Array.make ncap 0 in
  Array.blit t.p_gen 0 ngen 0 cap;
  t.p_gen <- ngen;
  let nnext = Array.make ncap (-1) in
  Array.blit t.p_next 0 nnext 0 cap;
  t.p_next <- nnext;
  let nstate = Bytes.make ncap st_free in
  Bytes.blit t.p_state 0 nstate 0 cap;
  t.p_state <- nstate;
  for i = ncap - 1 downto cap do
    t.p_next.(i) <- t.free_head;
    t.free_head <- i
  done

let alloc_slot t =
  if t.free_head < 0 then grow_pool t;
  let s = t.free_head in
  t.free_head <- t.p_next.(s);
  s

let free_slot t s =
  t.p_gen.(s) <- t.p_gen.(s) + 1;
  Bytes.unsafe_set t.p_state s st_free;
  t.p_fn.(s) <- nop;
  t.p_next.(s) <- t.free_head;
  t.free_head <- s

(* ------------------------------ wheel --------------------------------- *)

let bm_set t idx =
  let w = idx lsr 5 in
  t.w_bitmap.(w) <- t.w_bitmap.(w) lor (1 lsl (idx land 31))

let bm_clear t idx =
  let w = idx lsr 5 in
  t.w_bitmap.(w) <- t.w_bitmap.(w) land lnot (1 lsl (idx land 31))

let rec ctz_loop w n = if w land 1 = 1 then n else ctz_loop (w lsr 1) (n + 1)

let rec scan_words t wi =
  let w = t.w_bitmap.(wi) in
  if w <> 0 then (wi lsl 5) lor ctz_loop w 0
  else scan_words t ((wi + 1) land (bm_words - 1))

(* First non-empty bucket at or after [start], wrapping. Requires at least
   one occupied bucket. *)
let bitmap_next t start =
  let w0 = t.w_bitmap.(start lsr 5) land (-1 lsl (start land 31)) in
  if w0 <> 0 then ((start lsr 5) lsl 5) lor ctz_loop w0 0
  else scan_words t (((start lsr 5) + 1) land (bm_words - 1))

let wheel_add t s ~at =
  let idx = at land wheel_mask in
  t.p_next.(s) <- -1;
  if t.w_head.(idx) < 0 then begin
    t.w_head.(idx) <- s;
    bm_set t idx
  end
  else t.p_next.(t.w_tail.(idx)) <- s;
  t.w_tail.(idx) <- s;
  t.w_count <- t.w_count + 1;
  if t.w_count = 1 || at < t.w_next_time then t.w_next_time <- at

let pop_wheel t =
  let idx = t.w_next_time land wheel_mask in
  let s = t.w_head.(idx) in
  let nxt = t.p_next.(s) in
  t.w_head.(idx) <- nxt;
  t.w_count <- t.w_count - 1;
  if nxt < 0 then begin
    t.w_tail.(idx) <- -1;
    bm_clear t idx;
    if t.w_count = 0 then t.w_next_time <- -1
    else begin
      let j = bitmap_next t ((idx + 1) land wheel_mask) in
      t.w_next_time <- t.p_time.(t.w_head.(j))
    end
  end;
  s

(* --------------------------- scheduling ------------------------------- *)

let schedule_at t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: at=%d < now=%d" at t.clock);
  let s = alloc_slot t in
  t.p_fn.(s) <- fn;
  t.p_time.(s) <- at;
  t.p_seq.(s) <- t.seq;
  t.seq <- t.seq + 1;
  Bytes.unsafe_set t.p_state s st_pending;
  if at - t.clock < wheel_size then wheel_add t s ~at
  else Heap.push t.heap ~time:at ~seq:t.p_seq.(s) s;
  (t.p_gen.(s) lsl slot_bits) lor s

let schedule t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(Time.add t.clock delay) fn

let cancel t h =
  let s = h land slot_mask in
  if
    s < Array.length t.p_gen
    && t.p_gen.(s) = h lsr slot_bits
    && Bytes.unsafe_get t.p_state s = st_pending
  then Bytes.unsafe_set t.p_state s st_cancelled

let is_pending t h =
  let s = h land slot_mask in
  s < Array.length t.p_gen
  && t.p_gen.(s) = h lsr slot_bits
  && Bytes.unsafe_get t.p_state s = st_pending

(* ---------------------------- execution ------------------------------- *)

(* Pop the globally minimal (time, seq) event across both lanes; -1 when
   nothing is queued. Cancelled events are popped like live ones (they
   still advance the clock in [step], exactly as before the pool). *)
let pop_next t =
  if t.w_count = 0 then
    if Heap.is_empty t.heap then -1 else Heap.pop_min t.heap
  else if Heap.is_empty t.heap then pop_wheel t
  else begin
    let wt = t.w_next_time and ht = Heap.min_time t.heap in
    if wt < ht then pop_wheel t
    else if ht < wt then Heap.pop_min t.heap
    else if t.p_seq.(t.w_head.(wt land wheel_mask)) < Heap.min_seq t.heap
    then pop_wheel t
    else Heap.pop_min t.heap
  end

let next_time t =
  if t.w_count = 0 then
    if Heap.is_empty t.heap then -1 else Heap.min_time t.heap
  else if Heap.is_empty t.heap then t.w_next_time
  else if t.w_next_time <= Heap.min_time t.heap then t.w_next_time
  else Heap.min_time t.heap

let step t =
  let s = pop_next t in
  if s < 0 then false
  else begin
    t.clock <- t.p_time.(s);
    let live = Bytes.unsafe_get t.p_state s = st_pending in
    let fn = t.p_fn.(s) in
    free_slot t s;
    if live then fn ();
    true
  end

let run ?(until = Time.infinity) t =
  let rec loop () =
    let nt = next_time t in
    if nt >= 0 && nt <= until then begin
      ignore (step t);
      loop ()
    end
  in
  loop ();
  (* Virtual time passes even when nothing is scheduled inside the window:
     otherwise repeated short runs can freeze the clock short of the next
     periodic event and never reach it. *)
  if until <> Time.infinity && until > t.clock then t.clock <- until

let pending_events t = t.w_count + Heap.size t.heap

let next_event_time t =
  let nt = next_time t in
  if nt < 0 then None else Some nt

let clear t =
  let rec drain () =
    let s = pop_next t in
    if s >= 0 then begin
      free_slot t s;
      drain ()
    end
  in
  drain ()
