type event = { mutable cancelled : bool; fn : unit -> unit }

type handle = event

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : event Heap.t;
  root_rng : Rng.t;
}

let create ?(seed = 1L) () =
  let t =
    { clock = Time.zero; seq = 0; queue = Heap.create (); root_rng = Rng.create seed }
  in
  (* The flight recorder timestamps events with this engine's virtual
     clock. Last engine created wins — one live simulation per process. *)
  Strovl_obs.Trace.set_clock (fun () -> t.clock);
  t

let now t = t.clock
let rng t = t.root_rng

let schedule_at t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: at=%d < now=%d" at t.clock);
  let ev = { cancelled = false; fn } in
  Heap.push t.queue ~time:at ~seq:t.seq ev;
  t.seq <- t.seq + 1;
  ev

let schedule t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(Time.add t.clock delay) fn

let cancel ev = ev.cancelled <- true
let is_pending ev = not ev.cancelled

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _seq, ev) ->
    t.clock <- time;
    if not ev.cancelled then begin
      ev.cancelled <- true;
      ev.fn ()
    end;
    true

let run ?(until = Time.infinity) t =
  let rec loop () =
    match Heap.peek t.queue with
    | None -> ()
    | Some (time, _, _) when time > until -> ()
    | Some _ ->
      ignore (step t);
      loop ()
  in
  loop ();
  (* Virtual time passes even when nothing is scheduled inside the window:
     otherwise repeated short runs can freeze the clock short of the next
     periodic event and never reach it. *)
  if until <> Time.infinity && until > t.clock then t.clock <- until

let pending_events t = Heap.size t.queue
let clear t = Heap.clear t.queue
