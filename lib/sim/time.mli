(** Simulated time.

    Time is an integer number of microseconds since the start of the
    simulation. Using integers keeps the discrete-event engine exactly
    deterministic (no floating-point drift in event ordering). *)

type t = int
(** Microseconds. Always non-negative inside a running simulation. *)

val zero : t

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_ms_float : float -> t
(** [of_ms_float x] converts a millisecond quantity such as [0.25] to
    microseconds, rounding to nearest. *)

val of_sec_float : float -> t

val to_ms_float : t -> float
val to_sec_float : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b]; may be negative when [b > a]. *)

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int

val infinity : t
(** A time later than any event in practice ([max_int]). *)

val pp : Format.formatter -> t -> unit
(** Prints with an adaptive unit, e.g. ["1.500ms"], ["40s"]. *)

val to_string : t -> string
