type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

let split_named t name =
  let h = ref (int64 t) in
  String.iter (fun c -> h := mix (Int64.add !h (Int64.of_int (Char.code c)))) name;
  { state = !h }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits: OCaml ints are 63-bit, so a 63-bit value could land
     negative after Int64.to_int. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992. *. bound

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0. then 1e-300 else u in
  -.mean *. log u

let uniform_range t lo hi = lo +. float t (hi -. lo)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
