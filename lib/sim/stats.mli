(** Measurement collection for experiments.

    [Series] accumulates raw samples (e.g. per-packet delivery latencies)
    and answers summary queries; [Counter] counts discrete events. All
    percentile queries use the nearest-rank method on the sorted samples. *)

module Series : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val is_empty : t -> bool
  val mean : t -> float
  (** 0 on an empty series. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val percentile : t -> float -> float
  (** [percentile s 99.0] is the nearest-rank p99. 0 on an empty series. *)

  val median : t -> float
  val sum : t -> float
  val samples : t -> float array
  (** A copy of the raw samples, in insertion order. *)

  val jitter : t -> float
  (** Mean absolute difference between consecutive samples (RFC 3550-style
      interarrival jitter when fed per-packet latencies). *)

  val clear : t -> unit
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val clear : t -> unit
end

val ratio : int -> int -> float
(** [ratio num den] is [num/den] as a float, 0 when [den = 0]. *)
