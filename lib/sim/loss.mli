(** Packet-loss processes for the underlay model.

    The paper's real-time protocols (NM-Strikes, §IV-A) are explicitly
    designed around *correlated, bursty* Internet loss — a single
    retransmission would likely fall inside the same loss burst, which is
    why requests and retransmissions are spaced in time. The
    {!gilbert_elliott} process is the standard two-state Markov model for
    such bursts; {!bernoulli} gives uncorrelated loss for baselines.

    A process is sampled at packet-send instants with [drops p ~now]; state
    evolution is computed lazily from the elapsed time, so idle links cost
    nothing. *)

type t

val perfect : t
(** Never drops. *)

val bernoulli : Rng.t -> p:float -> t
(** Each packet is dropped independently with probability [p]. *)

val gilbert_elliott :
  Rng.t ->
  p_good_loss:float ->
  p_bad_loss:float ->
  mean_good:Time.t ->
  mean_bad:Time.t ->
  t
(** Two-state continuous-time Markov chain. The process stays in the good
    state for an exponentially distributed duration of mean [mean_good]
    (loss probability [p_good_loss], typically ~0), then in the bad state
    for mean [mean_bad] (loss probability [p_bad_loss], typically high).

    Average loss rate = (g·pg + b·pb)/(g+b) where g,b are the mean
    durations. *)

val periodic_outage : period:Time.t -> outage:Time.t -> offset:Time.t -> t
(** Deterministic on/off loss: drops everything during the [outage] window
    at the start of each [period], beginning at [offset]. Used for
    failure-injection experiments needing exact timing. *)

val always : t
(** Drops everything (a failed link). *)

val drops : t -> now:Time.t -> bool
(** [drops t ~now] evaluates whether a packet sent at [now] is lost.
    [now] must be non-decreasing across calls for stateful processes. *)

val mean_loss_rate : t -> float
(** The analytic long-run loss rate of the process (for reporting). *)

val in_burst : t -> now:Time.t -> bool
(** For bursty processes, whether the process is in its lossy state at
    [now] (evaluating state lazily); [false] for memoryless processes. *)
