type t = int

let zero = 0
let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000
let of_ms_float x = int_of_float (Float.round (x *. 1_000.))
let of_sec_float x = int_of_float (Float.round (x *. 1_000_000.))
let to_ms_float t = float_of_int t /. 1_000.
let to_sec_float t = float_of_int t /. 1_000_000.
let add = ( + )
let sub = ( - )
let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let infinity = Stdlib.max_int

let pp ppf t =
  if t = infinity then Format.pp_print_string ppf "inf"
  else if t < 0 then Format.fprintf ppf "-%a" (fun ppf t -> Format.pp_print_string ppf t) (string_of_int (-t) ^ "us")
  else if t < 1_000 then Format.fprintf ppf "%dus" t
  else if t < 1_000_000 then Format.fprintf ppf "%.3gms" (to_ms_float t)
  else Format.fprintf ppf "%.4gs" (to_sec_float t)

let to_string t = Format.asprintf "%a" pp t
