(** Deterministic discrete-event simulation substrate.

    This library is the foundation every other [strovl] component builds on:
    an integer-microsecond clock ({!Time}), seedable split-stream randomness
    ({!Rng}), a cancellable-timer event engine ({!Engine}), measurement
    collection ({!Stats}), and packet-loss processes ({!Loss}) including the
    bursty Gilbert–Elliott model the paper's real-time protocols target. *)

module Time = Time
module Rng = Rng
module Heap = Heap
module Engine = Engine
module Engine_intf = Engine_intf
module Stats = Stats
module Loss = Loss
