(** The scheduling interface of the event engine, extracted as a module
    type.

    Two implementations exist:

    - {!Engine} — the deterministic discrete-event simulator: [now] is a
      virtual clock that jumps from event to event, and time only passes
      when [Engine.run]/[Engine.step] execute the queue.
    - [Strovl_rt.Runtime] — the wall-clock runtime: the same pooled event
      queue driven by the host's monotonic clock and a UDP readiness loop,
      so [now] tracks real microseconds and due events fire as real time
      reaches them.

    The protocol stack (Node, the link protocols, probing) is written
    against exactly this surface, which is what lets the identical code run
    in simulated virtual time or against real sockets. Both implementations
    are checked against this signature below and in [lib/rt]. *)

module type S = sig
  type t

  type handle
  (** Generation-tagged reference to a scheduled event: safe to [cancel]
      after the event has fired and its slot was recycled. *)

  val now : t -> Time.t
  (** Current time in microseconds. Virtual under simulation, monotonic
      wall clock under the real-time runtime. *)

  val schedule : t -> delay:Time.t -> (unit -> unit) -> handle
  (** Run the closure [delay] microseconds from [now]. *)

  val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle

  val cancel : t -> handle -> unit
  (** Cancelling an already-fired or already-cancelled event is a no-op. *)

  val is_pending : t -> handle -> bool
  val pending_events : t -> int
end

(* The simulator engine implements the extracted interface. *)
module Check_engine : S with type t = Engine.t and type handle = Engine.handle =
  Engine
