(* Binary min-heap on unboxed parallel arrays: the (time, seq) keys live in
   two int arrays (no per-entry box, cache-friendly compares) and the
   payloads in a separate value array. Pushing and popping allocate nothing
   once the arrays have grown to the high-water mark. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
}

let create () = { times = [||]; seqs = [||]; vals = [||]; len = 0 }

let is_empty h = h.len = 0
let size h = h.len

(* Grow to hold one more element, using [v] to seed the value array (its
   slots beyond [len] are stale copies, never read). *)
let ensure_room h v =
  let cap = Array.length h.times in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nt = Array.make ncap 0 and ns = Array.make ncap 0 in
    let nv = Array.make ncap v in
    Array.blit h.times 0 nt 0 h.len;
    Array.blit h.seqs 0 ns 0 h.len;
    Array.blit h.vals 0 nv 0 h.len;
    h.times <- nt;
    h.seqs <- ns;
    h.vals <- nv
  end

let push h ~time ~seq value =
  ensure_room h value;
  (* Hole insertion: bubble the hole up, write the new entry once. *)
  let i = ref h.len in
  h.len <- h.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if
      time < h.times.(parent)
      || (time = h.times.(parent) && seq < h.seqs.(parent))
    then begin
      h.times.(!i) <- h.times.(parent);
      h.seqs.(!i) <- h.seqs.(parent);
      h.vals.(!i) <- h.vals.(parent);
      i := parent
    end
    else continue := false
  done;
  h.times.(!i) <- time;
  h.seqs.(!i) <- seq;
  h.vals.(!i) <- value

let min_time h =
  if h.len = 0 then invalid_arg "Heap.min_time: empty";
  h.times.(0)

let min_seq h =
  if h.len = 0 then invalid_arg "Heap.min_seq: empty";
  h.seqs.(0)

let less h a b =
  h.times.(a) < h.times.(b)
  || (h.times.(a) = h.times.(b) && h.seqs.(a) < h.seqs.(b))

let swap h a b =
  let t = h.times.(a) and s = h.seqs.(a) and v = h.vals.(a) in
  h.times.(a) <- h.times.(b);
  h.seqs.(a) <- h.seqs.(b);
  h.vals.(a) <- h.vals.(b);
  h.times.(b) <- t;
  h.seqs.(b) <- s;
  h.vals.(b) <- v

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less h l !smallest then smallest := l;
  if r < h.len && less h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

(* Remove the minimum and return its value without allocating. *)
let pop_min h =
  if h.len = 0 then invalid_arg "Heap.pop_min: empty";
  let v = h.vals.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.times.(0) <- h.times.(h.len);
    h.seqs.(0) <- h.seqs.(h.len);
    h.vals.(0) <- h.vals.(h.len);
    sift_down h 0
  end;
  v

let peek h =
  if h.len = 0 then None else Some (h.times.(0), h.seqs.(0), h.vals.(0))

let pop h =
  if h.len = 0 then None
  else begin
    let time = h.times.(0) and seq = h.seqs.(0) in
    let v = pop_min h in
    Some (time, seq, v)
  end

let clear h = h.len <- 0
