(** Minimal binary min-heap used as the discrete-event queue.

    Keys are [(time, sequence)] pairs compared lexicographically; the
    sequence number gives FIFO order among events scheduled for the same
    instant, which keeps simulations deterministic.

    The implementation stores keys in unboxed parallel int arrays and the
    payloads in a separate value array: no per-entry box is allocated, and
    {!push}/{!pop_min} are allocation-free once the arrays have reached
    their high-water capacity. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:int -> seq:int -> 'a -> unit

val peek : 'a t -> (int * int * 'a) option
(** [(time, seq, value)] of the minimum element, without removing it. *)

val pop : 'a t -> (int * int * 'a) option

val min_time : 'a t -> int
(** Time key of the minimum element, without allocating.
    @raise Invalid_argument when empty. *)

val min_seq : 'a t -> int
(** Sequence key of the minimum element, without allocating.
    @raise Invalid_argument when empty. *)

val pop_min : 'a t -> 'a
(** Removes the minimum element and returns its value, without allocating.
    @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
