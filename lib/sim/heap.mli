(** Minimal binary min-heap used as the discrete-event queue.

    Keys are [(time, sequence)] pairs compared lexicographically; the
    sequence number gives FIFO order among events scheduled for the same
    instant, which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:int -> seq:int -> 'a -> unit

val peek : 'a t -> (int * int * 'a) option
(** [(time, seq, value)] of the minimum element, without removing it. *)

val pop : 'a t -> (int * int * 'a) option

val clear : 'a t -> unit
