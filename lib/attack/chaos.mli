(** Chaos harness: seeded random fiber-segment failure/repair churn.

    The resilient network architecture's whole point (§II-A) is surviving
    continuous underlying-network trouble. This module drives a sustained,
    reproducible storm of segment failures and repairs against an overlay
    so soak tests can assert end-to-end invariants (reliable flows deliver
    exactly once, the overlay reconverges, no protocol wedges).

    Failures arrive as a Poisson process; each failed segment heals after a
    random outage. A connectivity guard (optional) refuses failures that
    would disconnect the *whole* overlay graph — the paper's architecture
    assumes enough redundancy that total partition is out of scope. *)

type t

val start :
  net:Strovl.Net.t ->
  rng:Strovl_sim.Rng.t ->
  ?mean_interval:Strovl_sim.Time.t ->
  ?mean_outage:Strovl_sim.Time.t ->
  ?avoid_partition:bool ->
  unit ->
  t
(** Begins the churn. [mean_interval] (default 2 s) is the mean time between
    failure events; [mean_outage] (default 1 s) the mean downtime;
    [avoid_partition] (default true) skips failures that would disconnect
    the overlay graph given the currently failed links. *)

val stop : t -> unit
(** Stops injecting and repairs everything still broken. *)

val failures_injected : t -> int
val skipped_for_partition : t -> int
