(** Compromised overlay node behaviours (§IV-B threat model).

    A compromised node holds valid credentials — authentication alone
    cannot stop it — and "cannot prevent messages sent by correct overlay
    nodes from reaching their destination (provided that some correct path
    through the overlay still exists)" only because of the IT protocols'
    redundant dissemination and fairness. These behaviours implement the
    attacks that claim is tested against, via {!Strovl.Net} wire taps. *)

type t =
  | Crash  (** drops everything in and out: fail-stop *)
  | Blackhole
      (** forwards the hello protocol and flooded state (so the topology
          still looks healthy) but silently drops all data packets — the
          classic compromised-router attack *)
  | Selective of (Strovl.Packet.flow -> bool)
      (** blackhole only flows matching the predicate *)
  | Delay_data of Strovl_sim.Time.t
      (** forward data late — breaks timeliness without touching delivery *)
  | Drop_fraction of float
      (** drop each data packet with the given probability (uses a stable
          per-node RNG stream) *)

val apply : Strovl.Net.t -> rng:Strovl_sim.Rng.t -> node:int -> t -> unit
(** Installs the behaviour on the node's wire. A node keeps at most one
    behaviour; re-applying replaces it. *)

val heal : Strovl.Net.t -> node:int -> unit
(** Removes any installed behaviour. *)

val is_data : Strovl.Msg.t -> bool
(** Whether a wire message carries application data. *)
