open Strovl_sim
module Msg = Strovl.Msg
module Net = Strovl.Net

type t =
  | Crash
  | Blackhole
  | Selective of (Strovl.Packet.flow -> bool)
  | Delay_data of Time.t
  | Drop_fraction of float

let is_data = function Msg.Data _ -> true | _ -> false

let flow_of = function
  | Msg.Data { pkt; _ } -> Some pkt.Strovl.Packet.flow
  | _ -> None

let apply net ~rng ~node behavior =
  let rng = Rng.split_named rng (Printf.sprintf "behavior/%d" node) in
  let tap ~dir ~link msg =
    ignore link;
    match behavior with
    | Crash -> Net.Drop
    | Blackhole -> if is_data msg then Net.Drop else Net.Pass
    | Selective f -> begin
      match flow_of msg with
      | Some flow when f flow -> Net.Drop
      | _ -> Net.Pass
    end
    (* Per-packet behaviours act on ingress only, so one decision is made
       per packet transiting the router (not once per tap side). *)
    | Delay_data d ->
      if dir = `In && is_data msg then Net.Delay d else Net.Pass
    | Drop_fraction p ->
      if dir = `In && is_data msg && Rng.bernoulli rng p then Net.Drop
      else Net.Pass
  in
  Net.set_wire_tap net ~node tap

let heal net ~node = Net.clear_wire_tap net ~node
