(** Compromised-node behaviours and attack scenarios for the
    intrusion-tolerance experiments (§IV-B): blackholing and selective
    forwarding routers, resource-consumption floods, and LSU forgery. *)

module Behavior = Behavior
module Scenario = Scenario
module Chaos = Chaos
