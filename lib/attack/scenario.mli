(** Composite attack scenarios used by the intrusion-tolerance experiments
    (§IV-B).

    - {!flooder}: the resource-consumption attack — a compromised source
      blasts traffic at line rate to starve correct sources; the IT
      protocols' fair round-robin scheduling must keep correct goodput.
    - {!forge_lsu}: a compromised node injects an LSU in a *victim's* name
      claiming its links are down, trying to poison everyone's connectivity
      graph; origin authentication must reject it.
    - {!compromise_set}: install a behaviour on a set of nodes (the
      "up to k−1 compromised nodes anywhere" of the disjoint-path claim). *)

val flooder :
  net:Strovl.Net.t ->
  node:int ->
  port:int ->
  dest:Strovl.Packet.dest ->
  dport:int ->
  service:Strovl.Packet.service ->
  rate_pps:int ->
  bytes:int ->
  Strovl_apps.Source.t
(** Attaches a client at the compromised node and fires at [rate_pps]. *)

val forge_lsu :
  net:Strovl.Net.t ->
  attacker:int ->
  victim:int ->
  unit ->
  int
(** The attacker injects, on each of its incident links, a forged LSU in
    the victim's name (sequence far ahead, all links down, no valid
    signature). Returns the number of injected messages. With
    authentication enabled the network must be unaffected. *)

val compromise_set :
  net:Strovl.Net.t ->
  rng:Strovl_sim.Rng.t ->
  nodes:int list ->
  Behavior.t ->
  unit

val pick_interior :
  rng:Strovl_sim.Rng.t ->
  graph:Strovl_topo.Graph.t ->
  src:int ->
  dst:int ->
  k:int ->
  int list
(** Picks [k] distinct candidate nodes to compromise, excluding the source
    and destination. *)
