open Strovl_sim
module Graph = Strovl_topo.Graph
module Underlay = Strovl_net.Underlay
module Gen = Strovl_topo.Gen

type t = {
  net : Strovl.Net.t;
  rng : Rng.t;
  mean_interval : float;
  mean_outage : float;
  avoid_partition : bool;
  mutable running : bool;
  mutable down_segments : int list;
  mutable n_injected : int;
  mutable n_skipped : int;
}

(* Would failing [candidate] (on top of the already-down segments)
   disconnect the overlay graph? An overlay link is alive while at least
   one ISP's direct fiber between its endpoints is up; links realized over
   multi-segment ISP paths are approximated by their direct segments, which
   is exact for the built-in topologies. *)
let would_partition t candidate =
  let underlay = Strovl.Net.underlay t.net in
  let g = Strovl.Net.graph t.net in
  let down si = si = candidate || List.mem si t.down_segments in
  let link_alive l =
    let a, b = Graph.endpoints g l in
    List.exists
      (fun si -> (not (down si)) && Underlay.segment_up underlay si)
      (Underlay.segments_between underlay a b)
  in
  not (Graph.connected ~usable:link_alive g)

let rec schedule_next t =
  if t.running then begin
    let delay =
      max 1 (int_of_float (Rng.exponential t.rng t.mean_interval))
    in
    ignore
      (Engine.schedule (Strovl.Net.engine t.net) ~delay (fun () -> inject t))
  end

and inject t =
  if t.running then begin
    let underlay = Strovl.Net.underlay t.net in
    let nseg = Underlay.nsegments underlay in
    let si = Rng.int t.rng nseg in
    if Underlay.segment_up underlay si then begin
      if t.avoid_partition && would_partition t si then
        t.n_skipped <- t.n_skipped + 1
      else begin
        t.n_injected <- t.n_injected + 1;
        t.down_segments <- si :: t.down_segments;
        Underlay.fail_segment underlay si;
        let outage = max 1 (int_of_float (Rng.exponential t.rng t.mean_outage)) in
        ignore
          (Engine.schedule (Strovl.Net.engine t.net) ~delay:outage (fun () ->
               t.down_segments <- List.filter (fun s -> s <> si) t.down_segments;
               Underlay.repair_segment underlay si))
      end
    end;
    schedule_next t
  end

let start ~net ~rng ?(mean_interval = Time.sec 2) ?(mean_outage = Time.sec 1)
    ?(avoid_partition = true) () =
  let t =
    {
      net;
      rng = Rng.split_named rng "chaos";
      mean_interval = float_of_int mean_interval;
      mean_outage = float_of_int mean_outage;
      avoid_partition;
      running = true;
      down_segments = [];
      n_injected = 0;
      n_skipped = 0;
    }
  in
  schedule_next t;
  t

let stop t =
  t.running <- false;
  let underlay = Strovl.Net.underlay t.net in
  List.iter (Underlay.repair_segment underlay) t.down_segments;
  t.down_segments <- []

let failures_injected t = t.n_injected
let skipped_for_partition t = t.n_skipped
