open Strovl_sim
module Graph = Strovl_topo.Graph

let flooder ~net ~node ~port ~dest ~dport ~service ~rate_pps ~bytes =
  let client = Strovl.Client.attach (Strovl.Net.node net node) ~port in
  let sender = Strovl.Client.sender client ~service ~dest ~dport () in
  let interval = max 1 (1_000_000 / rate_pps) in
  Strovl_apps.Source.start ~engine:(Strovl.Net.engine net) ~sender ~interval
    ~bytes ()

let forge_lsu ~net ~attacker ~victim () =
  let graph = Strovl.Net.graph net in
  let lies =
    List.map
      (fun l -> (l, { Strovl.Msg.li_up = false; li_metric = 1; li_loss = 0 }))
      (Graph.incident graph victim)
  in
  let forged =
    Strovl.Msg.Lsu
      { origin = victim; lsu_seq = 1_000_000; links = lies; auth = None }
  in
  let incident = Graph.incident graph attacker in
  List.iter (fun l -> Strovl.Net.inject net ~node:attacker ~link:l forged) incident;
  List.length incident

let compromise_set ~net ~rng ~nodes behavior =
  List.iter (fun node -> Behavior.apply net ~rng ~node behavior) nodes

let pick_interior ~rng ~graph ~src ~dst ~k =
  let candidates =
    List.filter
      (fun v -> v <> src && v <> dst)
      (List.init (Graph.n graph) (fun i -> i))
  in
  let arr = Array.of_list candidates in
  Rng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 (min k (Array.length arr)))
