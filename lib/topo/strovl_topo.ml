(** Overlay topology substrate: graphs, routing algorithms, and the
    redundant-dissemination constructions the paper's source-based routing
    enables (k node-disjoint paths, dissemination graphs, constrained
    flooding), plus generators for resilient multi-ISP topologies. *)

module Graph = Graph
module Dijkstra = Dijkstra
module Maxflow = Maxflow
module Disjoint = Disjoint
module Bitmask = Bitmask
module Mcast = Mcast
module Dissem = Dissem
module Gen = Gen
