(* Arcs are stored in one growable array; arc [2i] is a forward arc and
   [2i+1] its residual reverse, so the companion of arc [a] is [a lxor 1]. *)

type arc = { src : int; dst : int; cap0 : int; mutable cap : int }

type t = {
  n : int;
  mutable arcs : arc array;
  mutable narcs : int;
  adj : int list array; (* arc indices out of each vertex, reversed *)
  mutable built : bool;
  mutable adj_arr : int array array;
}

let create ~n =
  if n <= 0 then invalid_arg "Maxflow.create: n must be positive";
  {
    n;
    arcs = [||];
    narcs = 0;
    adj = Array.make n [];
    built = false;
    adj_arr = [||];
  }

let push_arc t a =
  let cap = Array.length t.arcs in
  if t.narcs = cap then begin
    let ncap = if cap = 0 then 32 else cap * 2 in
    let narr = Array.make ncap a in
    Array.blit t.arcs 0 narr 0 t.narcs;
    t.arcs <- narr
  end;
  t.arcs.(t.narcs) <- a;
  t.narcs <- t.narcs + 1

let add_arc t ~src ~dst ~cap =
  if t.built then invalid_arg "Maxflow.add_arc: network already built";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_arc: vertex out of range";
  if cap < 0 then invalid_arg "Maxflow.add_arc: negative capacity";
  let id = t.narcs in
  push_arc t { src; dst; cap0 = cap; cap };
  push_arc t { src = dst; dst = src; cap0 = 0; cap = 0 };
  t.adj.(src) <- id :: t.adj.(src);
  t.adj.(dst) <- (id + 1) :: t.adj.(dst);
  id

let build t =
  if not t.built then begin
    t.adj_arr <- Array.map (fun l -> Array.of_list (List.rev l)) t.adj;
    t.built <- true
  end

let bfs t src dst level =
  Array.fill level 0 t.n (-1);
  level.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun ai ->
        let a = t.arcs.(ai) in
        if a.cap > 0 && level.(a.dst) < 0 then begin
          level.(a.dst) <- level.(u) + 1;
          Queue.add a.dst q
        end)
      t.adj_arr.(u)
  done;
  level.(dst) >= 0

let rec dfs t u dst pushed level iter =
  if u = dst then pushed
  else begin
    let result = ref 0 in
    let outs = t.adj_arr.(u) in
    while !result = 0 && iter.(u) < Array.length outs do
      let ai = outs.(iter.(u)) in
      let a = t.arcs.(ai) in
      if a.cap > 0 && level.(a.dst) = level.(u) + 1 then begin
        let d = dfs t a.dst dst (min pushed a.cap) level iter in
        if d > 0 then begin
          a.cap <- a.cap - d;
          let back = t.arcs.(ai lxor 1) in
          back.cap <- back.cap + d;
          result := d
        end
        else iter.(u) <- iter.(u) + 1
      end
      else iter.(u) <- iter.(u) + 1
    done;
    !result
  end

let max_flow t ~src ~dst =
  if src = dst then invalid_arg "Maxflow.max_flow: src = dst";
  build t;
  let level = Array.make t.n (-1) in
  let flow = ref 0 in
  while bfs t src dst level do
    let iter = Array.make t.n 0 in
    let rec push () =
      let d = dfs t src dst max_int level iter in
      if d > 0 then begin
        flow := !flow + d;
        push ()
      end
    in
    push ()
  done;
  !flow

let flow_on t id =
  if id < 0 || id >= t.narcs || id land 1 = 1 then
    invalid_arg "Maxflow.flow_on: not a forward arc id";
  let a = t.arcs.(id) in
  a.cap0 - a.cap

let min_cut_reachable t ~src =
  build t;
  let seen = Array.make t.n false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun ai ->
        let a = t.arcs.(ai) in
        if a.cap > 0 && not seen.(a.dst) then begin
          seen.(a.dst) <- true;
          Queue.add a.dst q
        end)
      t.adj_arr.(u)
  done;
  seen
