(* Node-splitting reduction: overlay node v becomes v_in = 2v, v_out = 2v+1
   with a capacity-1 internal arc (unbounded at the endpoints). Each
   undirected overlay link (u,v) with weight w becomes arcs
   u_out -> v_in and v_out -> u_in, capacity 1, cost w. A unit of flow is
   then exactly one path, and node-disjointness is enforced by the internal
   arcs. Successive shortest augmenting paths (Bellman–Ford on the residual
   graph, which may contain negative arcs) give a min-cost solution. *)

type arc = {
  dst : int;
  mutable cap : int;
  cost : int;
  link : int; (* overlay link id, or -1 for internal arcs *)
}

type net = {
  nv : int;
  arcs : arc array;
  adj : int array array; (* arc indices per vertex *)
}

let v_in v = 2 * v
let v_out v = (2 * v) + 1

let build ?(usable = fun _ -> true) ~weight g src dst =
  let n = Graph.n g in
  let nv = 2 * n in
  let arcs = ref [] and count = ref 0 in
  let adj = Array.make nv [] in
  let add a b cap cost link =
    let id = !count in
    arcs := { dst = b; cap; cost; link } :: !arcs;
    arcs := { dst = a; cap = 0; cost = -cost; link } :: !arcs;
    count := !count + 2;
    adj.(a) <- id :: adj.(a);
    adj.(b) <- (id + 1) :: adj.(b)
  in
  for v = 0 to n - 1 do
    let cap = if v = src || v = dst then max_int / 4 else 1 in
    add (v_in v) (v_out v) cap 0 (-1)
  done;
  Graph.iter_links g (fun l u v ->
      if usable l then begin
        let w = weight l in
        if w < 0 then invalid_arg "Disjoint: negative weight";
        add (v_out u) (v_in v) 1 w l;
        add (v_out v) (v_in u) 1 w l
      end);
  let arr = Array.of_list (List.rev !arcs) in
  { nv; arcs = arr; adj = Array.map (fun l -> Array.of_list (List.rev l)) adj }

(* One Bellman–Ford shortest-path augmentation on the residual network.
   Returns true if a unit of flow was pushed. *)
let augment net s t =
  let dist = Array.make net.nv max_int in
  let pre = Array.make net.nv (-1) in
  dist.(s) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun u outs ->
        if dist.(u) <> max_int then
          Array.iter
            (fun ai ->
              let a = net.arcs.(ai) in
              if a.cap > 0 && dist.(u) + a.cost < dist.(a.dst) then begin
                dist.(a.dst) <- dist.(u) + a.cost;
                pre.(a.dst) <- ai;
                changed := true
              end)
            outs)
      net.adj
  done;
  if dist.(t) = max_int then false
  else begin
    let rec walk v =
      if v <> s then begin
        let ai = pre.(v) in
        net.arcs.(ai).cap <- net.arcs.(ai).cap - 1;
        net.arcs.(ai lxor 1).cap <- net.arcs.(ai lxor 1).cap + 1;
        walk net.arcs.(ai lxor 1).dst
      end
    in
    walk t;
    true
  end

(* After pushing f units, decompose the flow into f link paths. *)
let decompose net g src dst =
  let n = Graph.n g in
  ignore n;
  (* flow on a forward arc ai (even index) = cap of its reverse arc. *)
  let used = Array.make (Array.length net.arcs) false in
  let next_of v_out_vertex =
    (* find an unconsumed outgoing link arc carrying flow *)
    let outs = net.adj.(v_out_vertex) in
    let found = ref None in
    Array.iter
      (fun ai ->
        if !found = None && ai land 1 = 0 then begin
          let a = net.arcs.(ai) in
          if a.link >= 0 && (not used.(ai)) && net.arcs.(ai lxor 1).cap > 0 then
            found := Some ai
        end)
      outs;
    !found
  in
  let rec one_path acc v =
    if v = dst then List.rev acc
    else begin
      match next_of (v_out v) with
      | None -> List.rev acc (* should not happen for valid flow *)
      | Some ai ->
        used.(ai) <- true;
        let a = net.arcs.(ai) in
        let next_node = a.dst / 2 in
        one_path (a.link :: acc) next_node
    end
  in
  let rec collect acc =
    match next_of (v_out src) with
    | None -> List.rev acc
    | Some _ ->
      let p = one_path [] src in
      collect (p :: acc)
  in
  collect []

let max_disjoint ?usable g src dst =
  if src = dst then invalid_arg "Disjoint.max_disjoint: src = dst";
  let net = build ?usable ~weight:(fun _ -> 1) g src dst in
  let flow = ref 0 in
  while augment net (v_out src) (v_in dst) do
    incr flow
  done;
  !flow

let paths ?usable ~weight ~k g src dst =
  if src = dst then invalid_arg "Disjoint.paths: src = dst";
  if k <= 0 then []
  else begin
    let net = build ?usable ~weight g src dst in
    let pushed = ref 0 in
    while !pushed < k && augment net (v_out src) (v_in dst) do
      incr pushed
    done;
    let ps = decompose net g src dst in
    let path_weight p = List.fold_left (fun acc l -> acc + weight l) 0 p in
    List.sort (fun a b -> compare (path_weight a) (path_weight b)) ps
  end

let path_nodes g start links =
  let rec walk v = function
    | [] -> [ v ]
    | l :: rest -> v :: walk (Graph.other_end g l v) rest
  in
  walk start links

let verify_disjoint g src dst paths =
  let valid_path p =
    match p with
    | [] -> false
    | _ ->
      let nodes = path_nodes g src p in
      (try List.hd (List.rev nodes) = dst with _ -> false)
  in
  let interior p =
    match path_nodes g src p with
    | [] | [ _ ] -> []
    | _ :: rest -> List.filter (fun v -> v <> dst) (List.rev (List.tl (List.rev rest)))
  in
  List.for_all valid_path paths
  &&
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun p ->
      List.for_all
        (fun v ->
          if Hashtbl.mem seen v then false
          else begin
            Hashtbl.add seen v ();
            true
          end)
        (interior p))
    paths
