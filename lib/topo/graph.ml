type node = int
type link = int

type t = {
  n : int;
  mutable ends : (node * node) array; (* indexed by link id *)
  mutable nlinks : int;
  adj : (node * link) list array; (* per node, reversed insertion order *)
}

let create ~n =
  if n <= 0 then invalid_arg "Graph.create: n must be positive";
  { n; ends = [||]; nlinks = 0; adj = Array.make n [] }

let n g = g.n
let link_count g = g.nlinks

let check_node g u =
  if u < 0 || u >= g.n then invalid_arg "Graph: node out of range"

let add_link g u v =
  check_node g u;
  check_node g v;
  if u = v then invalid_arg "Graph.add_link: self-loop";
  let id = g.nlinks in
  let cap = Array.length g.ends in
  if id = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let narr = Array.make ncap (0, 0) in
    Array.blit g.ends 0 narr 0 g.nlinks;
    g.ends <- narr
  end;
  g.ends.(id) <- (u, v);
  g.nlinks <- g.nlinks + 1;
  g.adj.(u) <- (v, id) :: g.adj.(u);
  g.adj.(v) <- (u, id) :: g.adj.(v);
  id

let check_link g l =
  if l < 0 || l >= g.nlinks then invalid_arg "Graph: link out of range"

let endpoints g l =
  check_link g l;
  g.ends.(l)

let other_end g l u =
  let a, b = endpoints g l in
  if u = a then b
  else if u = b then a
  else invalid_arg "Graph.other_end: node not an endpoint"

let neighbors g u =
  check_node g u;
  List.rev g.adj.(u)

let incident g u = List.map snd (neighbors g u)
let degree g u = List.length g.adj.(u)

let find_link g u v =
  check_node g u;
  check_node g v;
  let rec search best = function
    | [] -> best
    | (w, l) :: rest ->
      let best =
        if w = v then match best with Some b when b < l -> best | _ -> Some l
        else best
      in
      search best rest
  in
  search None g.adj.(u)

let iter_links g f =
  for l = 0 to g.nlinks - 1 do
    let u, v = g.ends.(l) in
    f l u v
  done

let fold_links g ~init ~f =
  let acc = ref init in
  iter_links g (fun l u v -> acc := f !acc l u v);
  !acc

let copy g =
  { n = g.n; ends = Array.copy g.ends; nlinks = g.nlinks; adj = Array.copy g.adj }

let reachable ?(usable = fun _ -> true) g src =
  check_node g src;
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun (v, l) ->
        if usable l && not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  seen

let connected ?usable g =
  let seen = reachable ?usable g 0 in
  Array.for_all (fun b -> b) seen

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d links=%d" g.n g.nlinks;
  iter_links g (fun l u v -> Format.fprintf ppf "@,  link %d: %d -- %d" l u v);
  Format.fprintf ppf "@]"
