(** Shortest paths over an overlay graph.

    Used both offline (topology analysis) and online by the overlay's
    link-state routing level: every node recomputes shortest paths from the
    connectivity graph whenever a link-state update changes it (§II-B). *)

type result = {
  dist : int array; (** [dist.(v)] = shortest distance, [max_int] if unreachable *)
  prev_link : int array; (** link used to reach [v] on a shortest path, -1 at source/unreachable *)
  prev_node : int array; (** predecessor of [v], -1 at source/unreachable *)
}

val run :
  ?usable:(Graph.link -> bool) ->
  weight:(Graph.link -> int) ->
  Graph.t ->
  Graph.node ->
  result
(** Single-source shortest paths restricted to usable links. Weights must be
    non-negative. Ties are broken deterministically by smaller link id. *)

val path_to : result -> Graph.node -> Graph.link list option
(** The source→target path as a list of link ids, [None] if unreachable. *)

val node_path_to : result -> Graph.node -> Graph.node list option
(** The source→target path as nodes, including both endpoints. *)

val next_hops : Graph.t -> result -> (Graph.node * Graph.link) option array
(** For each destination, the first hop (neighbor, link) from the source on
    the shortest path; [None] for the source itself and unreachable nodes.
    This is the forwarding table a link-state router needs. *)

val distance :
  ?usable:(Graph.link -> bool) ->
  weight:(Graph.link -> int) ->
  Graph.t ->
  Graph.node ->
  Graph.node ->
  int option
(** Convenience single-pair distance. *)

val eccentricity : weight:(Graph.link -> int) -> Graph.t -> Graph.node -> int
(** Largest finite shortest-path distance from the node ([max_int] if some
    node is unreachable). *)

val diameter : weight:(Graph.link -> int) -> Graph.t -> int
(** Max eccentricity over all nodes. *)
