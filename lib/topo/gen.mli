(** Topology generators implementing the paper's resilient network
    architecture (§II-A, Figure 1).

    A [spec] describes the physical world the overlay is deployed into:
    well-provisioned data-center *sites*, per-ISP fiber *segments* between
    sites (each ISP backbone is its own segment set, so overlay paths on
    different ISPs are physically disjoint), and the *designed overlay
    links* — short (~10 ms) node-to-node edges chosen to follow the ISP
    backbone maps rather than forming a clique.

    The generators follow the paper's numbers: overlay nodes ≈10 ms apart,
    ~150 ms sufficient to cross the globe, a few tens of nodes for global
    coverage. *)

type site = { name : string; lat : float; lon : float }

val geo_delay_us : site -> site -> int
(** One-way propagation delay estimate between two sites: great-circle
    distance at ~200 km/ms in fiber, with a 1.3 route-inefficiency factor. *)

type segment = {
  seg_a : int;  (** site index *)
  seg_b : int;  (** site index *)
  seg_isp : int;  (** which ISP backbone owns this fiber *)
  seg_delay : Strovl_sim.Time.t;  (** one-way propagation delay *)
}

type spec = {
  sites : site array;
  nisps : int;
  segments : segment array;
  overlay_links : (int * int) array;
      (** designed overlay topology; index in this array = overlay link id *)
}

val overlay_graph : spec -> Graph.t
(** The overlay graph: node [i] = site [i]; link ids equal indices into
    [spec.overlay_links]. *)

val overlay_link_delay : spec -> isp:int -> int -> int -> Strovl_sim.Time.t option
(** Shortest-path one-way delay between two sites inside one ISP backbone,
    [None] if that ISP cannot connect them. *)

val us_backbone : unit -> spec
(** 12-site continental-US topology (modeled on the Spines/LTN deployments):
    sites ~10 ms apart, 3 ISP backbones with distinct (overlapping but not
    identical) fiber footprints, coast-to-coast ~35–40 ms. *)

val global_backbone : unit -> spec
(** ~28 sites worldwide for the coverage experiment: verifies that a few
    tens of well-placed nodes give ≤150 ms reach between (almost) any pair
    with ~10 ms adjacent hops. *)

val chain : n:int -> hop_delay:Strovl_sim.Time.t -> spec
(** [n] sites in a line, one ISP, consecutive sites linked: the Figure 3
    setting (e.g. [chain ~n:6 ~hop_delay:(Time.ms 10)] = five 10 ms overlay
    links spanning a 50 ms path). *)

val ring : n:int -> hop_delay:Strovl_sim.Time.t -> spec

val circulant :
  n:int -> jumps:int list -> hop_delay:Strovl_sim.Time.t -> spec
(** Circulant graph C_n(jumps): node i links to i±j for each jump. E.g.
    [circulant ~n:8 ~jumps:[1;2]] is 4-regular with vertex connectivity 4 —
    the testbed for the k-node-disjoint-paths claims, which need endpoints
    of degree ≥ k (§IV-B). Jump-j links get delay j × hop_delay. *)

val random_geometric :
  Strovl_sim.Rng.t -> n:int -> radius:float -> nisps:int -> spec
(** Random sites on the unit square, overlay links between sites closer than
    [radius] (delay proportional to distance, 1 unit = 40 ms), each segment
    randomly assigned to an ISP plus a parallel segment on another ISP.
    Regenerated until connected. Used by property tests. *)
