type site = { name : string; lat : float; lon : float }

type segment = {
  seg_a : int;
  seg_b : int;
  seg_isp : int;
  seg_delay : Strovl_sim.Time.t;
}

type spec = {
  sites : site array;
  nisps : int;
  segments : segment array;
  overlay_links : (int * int) array;
}

let pi = 4.0 *. atan 1.0
let deg2rad d = d *. pi /. 180.

(* Haversine great-circle distance in km. *)
let geo_km a b =
  let r = 6371.0 in
  let dlat = deg2rad (b.lat -. a.lat) and dlon = deg2rad (b.lon -. a.lon) in
  let h =
    (sin (dlat /. 2.) ** 2.)
    +. (cos (deg2rad a.lat) *. cos (deg2rad b.lat) *. (sin (dlon /. 2.) ** 2.))
  in
  2. *. r *. asin (sqrt h)

(* ~200 km/ms in fiber; 1.3 factor for route inefficiency vs great circle. *)
let geo_delay_us a b =
  let km = geo_km a b in
  int_of_float (Float.round (km /. 200. *. 1.3 *. 1000.))

let overlay_graph spec =
  let g = Graph.create ~n:(Array.length spec.sites) in
  Array.iter (fun (a, b) -> ignore (Graph.add_link g a b)) spec.overlay_links;
  g

let overlay_link_delay spec ~isp a b =
  let n = Array.length spec.sites in
  let g = Graph.create ~n in
  let delays = ref [] in
  Array.iter
    (fun s ->
      if s.seg_isp = isp then begin
        ignore (Graph.add_link g s.seg_a s.seg_b);
        delays := s.seg_delay :: !delays
      end)
    spec.segments;
  let delay_arr = Array.of_list (List.rev !delays) in
  let weight l = delay_arr.(l) in
  Dijkstra.distance ~weight g a b

(* ------------------------------------------------------------------ *)
(* Named real-world topologies                                         *)
(* ------------------------------------------------------------------ *)

let mk_sites l = Array.of_list (List.map (fun (name, lat, lon) -> { name; lat; lon }) l)

let index_of sites name =
  let found = ref (-1) in
  Array.iteri (fun i s -> if s.name = name then found := i) sites;
  if !found < 0 then invalid_arg ("Gen: unknown site " ^ name);
  !found

(* Build the per-ISP fiber segments for a designed link set: each ISP covers
   the pairs in its footprint, with a small delay multiplier reflecting that
   different providers route slightly differently. *)
let mk_segments sites footprints =
  let segs = ref [] in
  List.iteri
    (fun isp (mult, pairs) ->
      List.iter
        (fun (an, bn) ->
          let a = index_of sites an and b = index_of sites bn in
          let d =
            int_of_float (Float.round (float_of_int (geo_delay_us sites.(a) sites.(b)) *. mult))
          in
          segs := { seg_a = a; seg_b = b; seg_isp = isp; seg_delay = d } :: !segs)
        pairs)
    footprints;
  Array.of_list (List.rev !segs)

let us_sites =
  mk_sites
    [
      ("SEA", 47.61, -122.33);
      ("SFO", 37.62, -122.38);
      ("LAX", 34.05, -118.25);
      ("PHX", 33.45, -112.07);
      ("DEN", 39.74, -104.99);
      ("DFW", 32.90, -97.04);
      ("CHI", 41.88, -87.63);
      ("ATL", 33.75, -84.39);
      ("MIA", 25.76, -80.19);
      ("WAS", 38.90, -77.04);
      ("NYC", 40.71, -74.01);
      ("BOS", 42.36, -71.06);
    ]

let us_designed_pairs =
  [
    ("SEA", "SFO");
    ("SEA", "DEN");
    ("SFO", "LAX");
    ("SFO", "DEN");
    ("LAX", "PHX");
    ("LAX", "DFW");
    ("PHX", "DFW");
    ("DEN", "DFW");
    ("DEN", "CHI");
    ("DFW", "CHI");
    ("DFW", "ATL");
    ("CHI", "ATL");
    ("CHI", "NYC");
    ("CHI", "WAS");
    ("ATL", "MIA");
    ("ATL", "WAS");
    ("MIA", "WAS");
    ("WAS", "NYC");
    ("NYC", "BOS");
    ("CHI", "BOS");
  ]

let us_backbone () =
  let sites = us_sites in
  let remove skips pairs =
    List.filter (fun p -> not (List.mem p skips)) pairs
  in
  (* ISP 0: national footprint covering every designed pair.
     ISP 1: no Phoenix presence, slightly longer routes.
     ISP 2: east-weighted footprint, no Miami–Washington fiber. *)
  let footprints =
    [
      (1.0, us_designed_pairs);
      (1.06, remove [ ("LAX", "PHX"); ("PHX", "DFW") ] us_designed_pairs);
      (1.12, remove [ ("MIA", "WAS"); ("SEA", "DEN") ] us_designed_pairs);
    ]
  in
  let overlay_links =
    Array.of_list
      (List.map
         (fun (a, b) -> (index_of sites a, index_of sites b))
         us_designed_pairs)
  in
  { sites; nisps = 3; segments = mk_segments sites footprints; overlay_links }

let global_sites =
  mk_sites
    [
      (* North America *)
      ("SEA", 47.61, -122.33);
      ("SFO", 37.62, -122.38);
      ("LAX", 34.05, -118.25);
      ("DEN", 39.74, -104.99);
      ("DFW", 32.90, -97.04);
      ("CHI", 41.88, -87.63);
      ("ATL", 33.75, -84.39);
      ("MIA", 25.76, -80.19);
      ("WAS", 38.90, -77.04);
      ("NYC", 40.71, -74.01);
      ("TOR", 43.65, -79.38);
      (* Europe *)
      ("LON", 51.51, -0.13);
      ("PAR", 48.86, 2.35);
      ("AMS", 52.37, 4.90);
      ("FRA", 50.11, 8.68);
      ("MAD", 40.42, -3.70);
      ("MIL", 45.46, 9.19);
      ("STO", 59.33, 18.07);
      (* Middle East / Africa *)
      ("DXB", 25.20, 55.27);
      ("JNB", -26.20, 28.05);
      (* Asia *)
      ("BOM", 19.08, 72.88);
      ("SIN", 1.35, 103.82);
      ("HKG", 22.32, 114.17);
      ("TYO", 35.68, 139.69);
      ("SEL", 37.57, 126.98);
      (* Oceania *)
      ("SYD", -33.87, 151.21);
      (* South America *)
      ("GRU", -23.55, -46.63);
      ("EZE", -34.60, -58.38);
    ]

let global_designed_pairs =
  [
    (* US backbone *)
    ("SEA", "SFO"); ("SEA", "DEN"); ("SFO", "LAX"); ("SFO", "DEN");
    ("LAX", "DFW"); ("DEN", "DFW"); ("DEN", "CHI"); ("DFW", "CHI");
    ("DFW", "ATL"); ("CHI", "ATL"); ("CHI", "NYC"); ("CHI", "TOR");
    ("ATL", "MIA"); ("ATL", "WAS"); ("MIA", "WAS"); ("WAS", "NYC");
    ("NYC", "TOR");
    (* Transatlantic *)
    ("NYC", "LON"); ("WAS", "PAR"); ("NYC", "AMS");
    (* Europe *)
    ("LON", "PAR"); ("LON", "AMS"); ("PAR", "FRA"); ("AMS", "FRA");
    ("PAR", "MAD"); ("FRA", "MIL"); ("AMS", "STO"); ("FRA", "STO");
    ("MAD", "MIL");
    (* Europe <-> Middle East / Asia *)
    ("FRA", "DXB"); ("MIL", "DXB"); ("DXB", "BOM"); ("BOM", "SIN");
    ("DXB", "JNB"); ("MAD", "JNB");
    (* Asia *)
    ("SIN", "HKG"); ("HKG", "TYO"); ("HKG", "SEL"); ("TYO", "SEL");
    (* Transpacific *)
    ("TYO", "SEA"); ("TYO", "SFO"); ("SEL", "SEA");
    (* Oceania *)
    ("SYD", "SIN"); ("SYD", "LAX");
    (* South America *)
    ("MIA", "GRU"); ("GRU", "EZE"); ("ATL", "GRU");
  ]

let global_backbone () =
  let sites = global_sites in
  let remove skips pairs = List.filter (fun p -> not (List.mem p skips)) pairs in
  let footprints =
    [
      (1.0, global_designed_pairs);
      (1.05, remove [ ("SYD", "LAX"); ("MAD", "JNB") ] global_designed_pairs);
    ]
  in
  let overlay_links =
    Array.of_list
      (List.map
         (fun (a, b) -> (index_of sites a, index_of sites b))
         global_designed_pairs)
  in
  { sites; nisps = 2; segments = mk_segments sites footprints; overlay_links }

(* ------------------------------------------------------------------ *)
(* Synthetic topologies                                                *)
(* ------------------------------------------------------------------ *)

let synthetic_sites n =
  Array.init n (fun i ->
      { name = Printf.sprintf "n%d" i; lat = 0.; lon = float_of_int i })

let chain ~n ~hop_delay =
  if n < 2 then invalid_arg "Gen.chain: need at least 2 sites";
  let pairs = Array.init (n - 1) (fun i -> (i, i + 1)) in
  {
    sites = synthetic_sites n;
    nisps = 1;
    segments =
      Array.map
        (fun (a, b) -> { seg_a = a; seg_b = b; seg_isp = 0; seg_delay = hop_delay })
        pairs;
    overlay_links = pairs;
  }

let ring ~n ~hop_delay =
  if n < 3 then invalid_arg "Gen.ring: need at least 3 sites";
  let pairs = Array.init n (fun i -> (i, (i + 1) mod n)) in
  {
    sites = synthetic_sites n;
    nisps = 1;
    segments =
      Array.map
        (fun (a, b) -> { seg_a = a; seg_b = b; seg_isp = 0; seg_delay = hop_delay })
        pairs;
    overlay_links = pairs;
  }

let circulant ~n ~jumps ~hop_delay =
  if n < 3 then invalid_arg "Gen.circulant: need at least 3 sites";
  let jumps = List.sort_uniq compare (List.filter (fun j -> j > 0 && 2 * j <= n) jumps) in
  if jumps = [] then invalid_arg "Gen.circulant: no valid jumps";
  let pairs = ref [] in
  List.iter
    (fun j ->
      for i = 0 to n - 1 do
        let k = (i + j) mod n in
        (* Avoid double-adding the antipodal jump when n = 2j. *)
        if i < k || (2 * j) mod n <> 0 || i < n / 2 then
          if not (List.mem (min i k, max i k, j) !pairs) then
            pairs := (min i k, max i k, j) :: !pairs
      done)
    jumps;
  let pairs = List.rev !pairs in
  {
    sites = synthetic_sites n;
    nisps = 1;
    segments =
      Array.of_list
        (List.map
           (fun (a, b, j) ->
             { seg_a = a; seg_b = b; seg_isp = 0; seg_delay = j * hop_delay })
           pairs);
    overlay_links = Array.of_list (List.map (fun (a, b, _) -> (a, b)) pairs);
  }

let random_geometric rng ~n ~radius ~nisps =
  if n < 2 then invalid_arg "Gen.random_geometric";
  let nisps = max 1 nisps in
  let attempt radius =
    let pts = Array.init n (fun _ -> (Strovl_sim.Rng.float rng 1.0, Strovl_sim.Rng.float rng 1.0)) in
    let dist i j =
      let xi, yi = pts.(i) and xj, yj = pts.(j) in
      sqrt (((xi -. xj) ** 2.) +. ((yi -. yj) ** 2.))
    in
    let links = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if dist i j < radius then links := (i, j) :: !links
      done
    done;
    let overlay_links = Array.of_list (List.rev !links) in
    let sites =
      Array.init n (fun i ->
          let x, y = pts.(i) in
          { name = Printf.sprintf "n%d" i; lat = x; lon = y })
    in
    let segments =
      Array.concat
        (Array.to_list
           (Array.mapi
              (fun l (a, b) ->
                let d =
                  max 100 (int_of_float (dist a b *. 40_000.)) (* 1 unit = 40ms *)
                in
                let isp1 = l mod nisps and isp2 = (l + 1) mod nisps in
                if nisps = 1 then
                  [| { seg_a = a; seg_b = b; seg_isp = 0; seg_delay = d } |]
                else
                  [|
                    { seg_a = a; seg_b = b; seg_isp = isp1; seg_delay = d };
                    { seg_a = a; seg_b = b; seg_isp = isp2; seg_delay = d + (d / 10) };
                  |])
              overlay_links))
    in
    let spec = { sites; nisps; segments; overlay_links } in
    if Array.length overlay_links > 0 && Graph.connected (overlay_graph spec) then
      Some spec
    else None
  in
  let rec loop radius tries =
    match attempt radius with
    | Some spec -> spec
    | None ->
      if tries > 20 then loop (radius *. 1.3) 0 else loop radius (tries + 1)
  in
  loop radius 0
