(** Overlay multicast trees.

    §III-B: "the overlay is able to construct the most efficient multicast
    tree to route messages to all overlay nodes that have clients in the
    group". We build the standard source-rooted shortest-path tree pruned to
    the overlay nodes with group members — the construction link-state
    multicast (and Spines) uses, since every node shares the same
    connectivity graph and membership state and thus computes the same
    tree. *)

type t = {
  source : Graph.node;
  links : Graph.link list; (** tree links, parent-before-child order *)
  members : Graph.node list; (** the receiver overlay nodes *)
  out_links : Graph.link list array; (** per node: tree links to children *)
}

val shortest_path_tree :
  ?usable:(Graph.link -> bool) ->
  weight:(Graph.link -> int) ->
  Graph.t ->
  source:Graph.node ->
  members:Graph.node list ->
  t
(** Tree covering every reachable member. Unreachable members are silently
    absent (check {!covers}). *)

val covers : t -> Graph.node -> bool
val link_cost : t -> int
(** Number of links a packet traverses to reach all members once. *)

val unicast_link_cost :
  ?usable:(Graph.link -> bool) ->
  weight:(Graph.link -> int) ->
  Graph.t ->
  source:Graph.node ->
  members:Graph.node list ->
  int
(** Baseline: total links traversed when sending one separate unicast along
    the shortest path to each member (what an application must do without
    overlay multicast, §III-B). *)

val to_mask : nlinks:int -> t -> Bitmask.t
(** The tree as a source-route bitmask. *)
