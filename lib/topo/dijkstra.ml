type result = {
  dist : int array;
  prev_link : int array;
  prev_node : int array;
}

let run ?(usable = fun _ -> true) ~weight g src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let prev_link = Array.make n (-1) in
  let prev_node = Array.make n (-1) in
  let done_ = Array.make n false in
  let heap = Strovl_sim.Heap.create () in
  dist.(src) <- 0;
  (* The seq component breaks ties by link id of the relaxing edge, keeping
     the tree deterministic. *)
  Strovl_sim.Heap.push heap ~time:0 ~seq:0 src;
  let rec loop () =
    match Strovl_sim.Heap.pop heap with
    | None -> ()
    | Some (d, _, u) ->
      if (not done_.(u)) && d = dist.(u) then begin
        done_.(u) <- true;
        let relax (v, l) =
          if usable l && not done_.(v) then begin
            let w = weight l in
            if w < 0 then invalid_arg "Dijkstra: negative weight";
            if dist.(u) <> max_int then begin
              let nd = dist.(u) + w in
              if
                nd < dist.(v)
                || (nd = dist.(v) && prev_link.(v) > l)
              then begin
                dist.(v) <- nd;
                prev_link.(v) <- l;
                prev_node.(v) <- u;
                Strovl_sim.Heap.push heap ~time:nd ~seq:l v
              end
            end
          end
        in
        List.iter relax (Graph.neighbors g u)
      end;
      loop ()
  in
  loop ();
  { dist; prev_link; prev_node }

let path_to r target =
  if r.dist.(target) = max_int then None
  else begin
    let rec build acc v =
      if r.prev_link.(v) = -1 then acc
      else build (r.prev_link.(v) :: acc) (r.prev_node.(v))
    in
    Some (build [] target)
  end

let node_path_to r target =
  if r.dist.(target) = max_int then None
  else begin
    let rec build acc v =
      if r.prev_node.(v) = -1 then v :: acc else build (v :: acc) r.prev_node.(v)
    in
    Some (build [] target)
  end

let next_hops g r =
  let n = Graph.n g in
  let table = Array.make n None in
  for v = 0 to n - 1 do
    if r.dist.(v) <> max_int && r.prev_node.(v) <> -1 then begin
      (* Walk back from v until the predecessor is the source (the source is
         the unique node with prev_node = -1 on a reachable path). *)
      let rec walk v =
        if r.prev_node.(r.prev_node.(v)) = -1 then (v, r.prev_link.(v))
        else walk r.prev_node.(v)
      in
      table.(v) <- Some (walk v)
    end
  done;
  table

let distance ?usable ~weight g src dst =
  let r = run ?usable ~weight g src in
  if r.dist.(dst) = max_int then None else Some r.dist.(dst)

let eccentricity ~weight g src =
  let r = run ~weight g src in
  Array.fold_left
    (fun acc d -> if d = max_int then max_int else max acc d)
    0 r.dist

let diameter ~weight g =
  let acc = ref 0 in
  for v = 0 to Graph.n g - 1 do
    acc := max !acc (eccentricity ~weight g v)
  done;
  !acc
