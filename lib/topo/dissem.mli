(** Dissemination graphs: arbitrary subgraphs for redundant routing.

    §II-B and §V-A: source-based routing can send a packet over "arbitrary
    subgraphs of the overlay topology (dissemination graphs), or constrained
    flooding". Dissemination graphs (Babay et al., ICDCS 2017 [2]) add
    *targeted* redundancy where problems occur, instead of the uniform
    redundancy of k disjoint paths; the paper's remote-manipulation section
    (§V-A) combines them with single-strike recovery to meet a 65 ms one-way
    deadline.

    All constructors return a {!Bitmask.t} over the topology's links, ready
    to stamp into a source-routed packet. *)

type scheme =
  | Single_path  (** min-latency path *)
  | Two_disjoint  (** 2 node-disjoint paths (uniform redundancy) *)
  | K_disjoint of int
  | Source_problem
      (** 2-disjoint core plus an edge from the source to each of its
          neighbors and each neighbor's min-latency join toward the
          destination — targeted redundancy around a lossy source area *)
  | Dest_problem  (** symmetric: targeted redundancy around the destination *)
  | Robust_both  (** union of {!Source_problem} and {!Dest_problem} *)
  | Flooding  (** every usable link (maximal redundancy) *)

val build :
  ?usable:(Graph.link -> bool) ->
  weight:(Graph.link -> int) ->
  Graph.t ->
  src:Graph.node ->
  dst:Graph.node ->
  scheme ->
  Bitmask.t
(** Constructs the dissemination graph for the scheme. Raises
    [Invalid_argument] on [src = dst]. The mask may be empty when the pair
    is disconnected over usable links. *)

val cost : Bitmask.t -> int
(** Links in the graph = copies of each packet placed on the wire (§V-A
    compares schemes by this edge cost). *)

val connects :
  ?down:(Graph.link -> bool) ->
  Graph.t ->
  Bitmask.t ->
  src:Graph.node ->
  dst:Graph.node ->
  bool
(** Whether the dissemination graph still connects src to dst when the links
    for which [down] holds are removed (default none). Used by resilience
    experiments to check delivery feasibility. *)

val pp_scheme : Format.formatter -> scheme -> unit
val scheme_name : scheme -> string
