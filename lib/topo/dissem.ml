type scheme =
  | Single_path
  | Two_disjoint
  | K_disjoint of int
  | Source_problem
  | Dest_problem
  | Robust_both
  | Flooding

let scheme_name = function
  | Single_path -> "single-path"
  | Two_disjoint -> "2-disjoint"
  | K_disjoint k -> Printf.sprintf "%d-disjoint" k
  | Source_problem -> "src-problem"
  | Dest_problem -> "dst-problem"
  | Robust_both -> "robust-both"
  | Flooding -> "flooding"

let pp_scheme ppf s = Format.pp_print_string ppf (scheme_name s)

let mask_of_paths ~nlinks paths =
  Bitmask.of_links ~nlinks (List.concat paths)

let disjoint_mask ?usable ~weight ~k g ~src ~dst =
  let paths = Disjoint.paths ?usable ~weight ~k g src dst in
  mask_of_paths ~nlinks:(Graph.link_count g) paths

(* Targeted redundancy around [node]: besides the 2-disjoint core, include
   the link from [node] to each of its neighbors, and each such neighbor's
   min-latency path joining the core (approximated as its shortest path to
   [toward], which necessarily merges with the graph). This captures the
   dissemination-graphs insight that loss concentrated around the source
   (resp. destination) is best countered by fanning out wide at that end
   only. *)
let problem_mask ?(usable = fun _ -> true) ~weight g ~src ~dst ~node ~toward =
  let nlinks = Graph.link_count g in
  let core = Disjoint.paths ~usable ~weight ~k:2 g src dst in
  let mask = mask_of_paths ~nlinks core in
  let r = Dijkstra.run ~usable ~weight g toward in
  List.iter
    (fun (nbr, l) ->
      if usable l then begin
        Bitmask.set mask l;
        match Dijkstra.path_to r nbr with
        | None -> ()
        | Some p ->
          (* path_to gives toward->nbr links; direction is irrelevant for an
             undirected link set. *)
          List.iter (Bitmask.set mask) p
      end)
    (Graph.neighbors g node);
  mask

let build ?(usable = fun _ -> true) ~weight g ~src ~dst scheme =
  if src = dst then invalid_arg "Dissem.build: src = dst";
  let nlinks = Graph.link_count g in
  match scheme with
  | Single_path ->
    let r = Dijkstra.run ~usable ~weight g src in
    (match Dijkstra.path_to r dst with
    | None -> Bitmask.create ~nlinks
    | Some p -> Bitmask.of_links ~nlinks p)
  | Two_disjoint -> disjoint_mask ~usable ~weight ~k:2 g ~src ~dst
  | K_disjoint k -> disjoint_mask ~usable ~weight ~k g ~src ~dst
  | Source_problem -> problem_mask ~usable ~weight g ~src ~dst ~node:src ~toward:dst
  | Dest_problem -> problem_mask ~usable ~weight g ~src ~dst ~node:dst ~toward:src
  | Robust_both ->
    Bitmask.union
      (problem_mask ~usable ~weight g ~src ~dst ~node:src ~toward:dst)
      (problem_mask ~usable ~weight g ~src ~dst ~node:dst ~toward:src)
  | Flooding ->
    let mask = Bitmask.create ~nlinks in
    Graph.iter_links g (fun l _ _ -> if usable l then Bitmask.set mask l);
    mask

let cost = Bitmask.count

let connects ?(down = fun _ -> false) g mask ~src ~dst =
  let usable l = Bitmask.mem mask l && not (down l) in
  let seen = Graph.reachable ~usable g src in
  seen.(dst)
