(** Link bitmasks for unified source-based routing.

    §II-B: "a unified source-based routing mechanism in which each packet is
    stamped with a bitmask indicating exactly the set of overlay links it
    should traverse (where each bit in the bitmask represents an overlay
    link)". A structured overlay has few links (tens to low hundreds), so
    the mask fits in a handful of 64-bit words carried in the packet header.

    The same mechanism expresses a single path, k node-disjoint paths, an
    arbitrary dissemination graph, or constrained flooding (all links). *)

type t

val create : nlinks:int -> t
(** Empty mask sized for a topology with [nlinks] links. *)

val of_links : nlinks:int -> Graph.link list -> t
val full : nlinks:int -> t
(** All links set — constrained flooding. *)

val nlinks : t -> int
val set : t -> Graph.link -> unit
val clear : t -> Graph.link -> unit
val mem : t -> Graph.link -> bool
val count : t -> int
(** Number of links set (the dissemination cost in links). *)

val union : t -> t -> t
val inter : t -> t -> t
val copy : t -> t
val equal : t -> t -> bool
val is_empty : t -> bool
val iter : t -> (Graph.link -> unit) -> unit
val to_links : t -> Graph.link list

val words : t -> int64 array
(** Raw words, for sizing/serialization accounting (header bytes =
    8 × words). *)

val of_words : nlinks:int -> int64 array -> t
(** Rebuilds a mask from raw words (the wire decode path). Bits at or
    above [nlinks] are silently dropped — exactly what re-setting each
    in-range bit individually would keep. The array length must equal
    what {!create} allocates for [nlinks].
    @raise Invalid_argument on a word-count mismatch. *)

val set_word : t -> int -> int64 -> unit
(** [set_word t wi word] overwrites 64-bit word [wi] wholesale, dropping
    bits at or above [nlinks]. *)

val byte_size : t -> int
(** Bytes this mask occupies in a packet header. *)

val pp : Format.formatter -> t -> unit
