type t = { nlinks : int; w : int64 array }

let nwords nlinks = (nlinks + 63) / 64

let create ~nlinks =
  if nlinks < 0 then invalid_arg "Bitmask.create";
  { nlinks; w = Array.make (max 1 (nwords nlinks)) 0L }

let nlinks t = t.nlinks

let check t l =
  if l < 0 || l >= t.nlinks then invalid_arg "Bitmask: link out of range"

let set t l =
  check t l;
  t.w.(l / 64) <- Int64.logor t.w.(l / 64) (Int64.shift_left 1L (l mod 64))

let clear t l =
  check t l;
  t.w.(l / 64) <-
    Int64.logand t.w.(l / 64) (Int64.lognot (Int64.shift_left 1L (l mod 64)))

let mem t l =
  check t l;
  Int64.logand t.w.(l / 64) (Int64.shift_left 1L (l mod 64)) <> 0L

let of_links ~nlinks links =
  let t = create ~nlinks in
  List.iter (set t) links;
  t

let full ~nlinks =
  let t = create ~nlinks in
  for l = 0 to nlinks - 1 do
    set t l
  done;
  t

let popcount64 x =
  let rec go acc x = if x = 0L then acc else go (acc + 1) (Int64.logand x (Int64.sub x 1L)) in
  go 0 x

let count t = Array.fold_left (fun acc w -> acc + popcount64 w) 0 t.w

let binop f a b =
  if a.nlinks <> b.nlinks then invalid_arg "Bitmask: size mismatch";
  { nlinks = a.nlinks; w = Array.init (Array.length a.w) (fun i -> f a.w.(i) b.w.(i)) }

let union = binop Int64.logor
let inter = binop Int64.logand
let copy t = { t with w = Array.copy t.w }
let equal a b = a.nlinks = b.nlinks && a.w = b.w
let is_empty t = Array.for_all (fun w -> w = 0L) t.w

let iter t f =
  for l = 0 to t.nlinks - 1 do
    if mem t l then f l
  done

let to_links t =
  let acc = ref [] in
  iter t (fun l -> acc := l :: !acc);
  List.rev !acc

(* Valid-bit mask for word [wi]: bits for links >= nlinks are not
   representable and get silently dropped, matching what a bit-by-bit
   decode through [set] (which range-checks) would keep. *)
let word_mask t wi =
  let valid = t.nlinks - (wi * 64) in
  if valid >= 64 then -1L
  else if valid <= 0 then 0L
  else Int64.sub (Int64.shift_left 1L valid) 1L

let set_word t wi word =
  if wi < 0 || wi >= Array.length t.w then invalid_arg "Bitmask.set_word";
  t.w.(wi) <- Int64.logand word (word_mask t wi)

let of_words ~nlinks words =
  let t = create ~nlinks in
  if Array.length words <> Array.length t.w then
    invalid_arg "Bitmask.of_words: word count mismatch";
  Array.iteri (set_word t) words;
  t

let words t = Array.copy t.w
let byte_size t = 8 * Array.length t.w

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter t (fun l ->
      if !first then first := false else Format.fprintf ppf ",";
      Format.fprintf ppf "%d" l);
  Format.fprintf ppf "}"
