(** Undirected multigraph with integer node and link identifiers.

    This is the shape of an overlay topology: a small set of overlay nodes
    (numbered [0 .. n-1]) connected by overlay links. Links carry stable
    integer identifiers so that the paper's unified source-based routing
    mechanism (§II-B) can name "exactly the set of overlay links a packet
    should traverse" with one bit per link (see {!Bitmask}).

    Link attributes (latency, cost, state) are deliberately *not* stored
    here; algorithms take a [weight : link -> int] or [usable : link -> bool]
    function so the same graph serves the static topology, the current
    connectivity-graph view, and hypothetical views. *)

type t

type node = int
type link = int

val create : n:int -> t
(** [create ~n] is an edgeless graph on nodes [0 .. n-1]. *)

val n : t -> int
(** Number of nodes. *)

val link_count : t -> int

val add_link : t -> node -> node -> link
(** Adds an undirected link and returns its id. Ids are dense, assigned in
    insertion order starting at 0. Self-loops are rejected. *)

val endpoints : t -> link -> node * node
(** Endpoints in insertion order. *)

val other_end : t -> link -> node -> node
(** [other_end g l u] is the endpoint of [l] that is not [u].
    @raise Invalid_argument if [u] is not an endpoint of [l]. *)

val incident : t -> node -> link list
(** Links incident to a node, in insertion order. *)

val neighbors : t -> node -> (node * link) list
(** Adjacent [(node, link)] pairs, in insertion order. *)

val degree : t -> node -> int

val find_link : t -> node -> node -> link option
(** Some link joining the two nodes (the first inserted), if any. *)

val iter_links : t -> (link -> node -> node -> unit) -> unit

val fold_links : t -> init:'a -> f:('a -> link -> node -> node -> 'a) -> 'a

val copy : t -> t

val connected : ?usable:(link -> bool) -> t -> bool
(** Whole-graph connectivity restricted to usable links (default: all). *)

val reachable : ?usable:(link -> bool) -> t -> node -> bool array
(** BFS reachability from a node over usable links. *)

val pp : Format.formatter -> t -> unit
