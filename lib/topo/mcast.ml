type t = {
  source : Graph.node;
  links : Graph.link list;
  members : Graph.node list;
  out_links : Graph.link list array;
}

let shortest_path_tree ?usable ~weight g ~source ~members =
  let r = Dijkstra.run ?usable ~weight g source in
  let in_tree = Array.make (Graph.n g) false in
  let tree_links = ref [] in
  in_tree.(source) <- true;
  let reached = ref [] in
  let add_path m =
    if r.Dijkstra.dist.(m) <> max_int then begin
      reached := m :: !reached;
      (* Walk from the member toward the source, grafting links until we hit
         a node already in the tree. *)
      let rec graft v acc =
        if in_tree.(v) then acc
        else begin
          in_tree.(v) <- true;
          graft r.Dijkstra.prev_node.(v) (r.Dijkstra.prev_link.(v) :: acc)
        end
      in
      let new_links = graft m [] in
      tree_links := !tree_links @ new_links
    end
  in
  List.iter add_path (List.sort_uniq compare members);
  let out_links = Array.make (Graph.n g) [] in
  List.iter
    (fun l ->
      (* Orient each tree link from the endpoint closer to the source. *)
      let u, v = Graph.endpoints g l in
      let parent = if r.Dijkstra.dist.(u) <= r.Dijkstra.dist.(v) then u else v in
      out_links.(parent) <- out_links.(parent) @ [ l ])
    !tree_links;
  { source; links = !tree_links; members = List.rev !reached; out_links }

let covers t v = List.mem v t.members || v = t.source
let link_cost t = List.length t.links

let unicast_link_cost ?usable ~weight g ~source ~members =
  let r = Dijkstra.run ?usable ~weight g source in
  List.fold_left
    (fun acc m ->
      match Dijkstra.path_to r m with
      | None -> acc
      | Some p -> acc + List.length p)
    0
    (List.sort_uniq compare members)

let to_mask ~nlinks t = Bitmask.of_links ~nlinks t.links
