(** Node-disjoint path computation.

    The paper's source-based routing enables "the use of multiple
    node-disjoint paths" (§II-B); §IV-B uses k node-disjoint paths so that a
    source "can protect against up to k−1 compromised nodes anywhere in the
    network, since each compromised node can disrupt at most one of the k
    paths". Paths returned here share no intermediate node (they share only
    the two endpoints).

    Internally: node-splitting reduction to a unit-capacity flow, solved by
    successive shortest augmentations (a node-disjoint Suurballe), so the
    path set found has minimum *total* weight among all sets of that
    cardinality. *)

val max_disjoint :
  ?usable:(Graph.link -> bool) -> Graph.t -> Graph.node -> Graph.node -> int
(** Maximum number of node-disjoint paths between the two nodes
    (equivalently, by Menger's theorem, the size of a minimum node cut
    separating them). *)

val paths :
  ?usable:(Graph.link -> bool) ->
  weight:(Graph.link -> int) ->
  k:int ->
  Graph.t ->
  Graph.node ->
  Graph.node ->
  Graph.link list list
(** [paths ~weight ~k g src dst] returns up to [k] node-disjoint paths, each
    a list of link ids from [src] to [dst], minimizing total weight. Returns
    fewer than [k] paths when the topology cannot support [k]; returns [[]]
    when the nodes are disconnected. Paths are ordered by increasing
    weight. *)

val path_nodes : Graph.t -> Graph.node -> Graph.link list -> Graph.node list
(** Expands a link path starting at the given node into the node sequence
    (including both endpoints). *)

val verify_disjoint : Graph.t -> Graph.node -> Graph.node -> Graph.link list list -> bool
(** Checks that the given link paths are pairwise node-disjoint apart from
    the shared endpoints, and each is a valid src→dst path. *)
