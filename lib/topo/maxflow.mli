(** Maximum flow on a directed graph (Dinic's algorithm).

    Substrate for the redundant-dissemination machinery: the number of node-
    disjoint paths between two overlay nodes is a unit-capacity max-flow on
    the node-split graph, and the paper's claim that "k node-disjoint paths
    protect against up to k−1 compromised nodes anywhere" (§IV-B) is exactly
    Menger's theorem. *)

type t

val create : n:int -> t
(** A flow network on vertices [0 .. n-1] with no arcs. *)

val add_arc : t -> src:int -> dst:int -> cap:int -> int
(** Adds a directed arc with the given capacity (its reverse residual arc is
    created automatically with capacity 0) and returns an arc id usable with
    {!flow_on}. *)

val max_flow : t -> src:int -> dst:int -> int
(** Computes (and saturates) the maximum flow. May be called once per
    network. *)

val flow_on : t -> int -> int
(** Flow currently routed on the given arc (after {!max_flow}). *)

val min_cut_reachable : t -> src:int -> bool array
(** After {!max_flow}: vertices reachable from [src] in the residual graph
    (the source side of a minimum cut). *)
