(* Fixed-size domain pool with deterministic result ordering.

   [map] fans an array of jobs over at most [jobs] worker domains. Workers
   claim job indices from a single atomic counter (work-stealing by index),
   and each outcome is written to its job's own slot, so the result array
   is in input order no matter which domain ran what or in what order jobs
   finished. A job that raises is captured per-slot as [Failed] — it
   neither kills its worker (which moves on to the next index) nor
   disturbs sibling jobs.

   The pool itself knows nothing about observability: callers that need
   per-run isolated state wrap their job function (see Strovl_obs.Ctx and
   Strovl_expt.run_isolated). With [jobs <= 1], or a single job, [map]
   runs everything inline on the calling domain through the exact same
   claim/capture loop, so a sequential run exercises the same code path as
   a parallel one — the basis of the [-j 1] vs [-j N] byte-identity
   contract. *)

type 'a outcome = Done of 'a | Failed of { exn : string; backtrace : string }

let default_jobs () = Domain.recommended_domain_count ()

(* The shared claim-and-run loop. [next] hands out job indices; slot [i] of
   [results] is owned by whoever claimed [i], so the only shared mutable
   word is the counter itself. *)
let worker_loop ~next ~n ~f ~jobs_arr ~results =
  let rec go () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      (results.(i) <-
         (try Done (f i jobs_arr.(i))
          with e ->
            let backtrace = Printexc.get_backtrace () in
            Failed { exn = Printexc.to_string e; backtrace }));
      go ()
    end
  in
  go ()

let map ?jobs f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let jobs =
      match jobs with None -> default_jobs () | Some j -> max 1 j
    in
    let nworkers = min jobs n in
    let next = Atomic.make 0 in
    let results =
      Array.make n (Failed { exn = "Pool.map: job never ran"; backtrace = "" })
    in
    if nworkers <= 1 then
      worker_loop ~next ~n ~f ~jobs_arr:arr ~results
    else begin
      let domains =
        Array.init nworkers (fun _ ->
            Domain.spawn (fun () ->
                worker_loop ~next ~n ~f ~jobs_arr:arr ~results))
      in
      Array.iter Domain.join domains
    end;
    results
  end

let outcome_exn = function
  | Done v -> v
  | Failed { exn; backtrace } ->
    failwith
      (if backtrace = "" then exn
       else Printf.sprintf "%s\n%s" exn backtrace)
