(** Domain-parallel run scheduling: a fixed-size {!Pool} of worker domains
    with index-ordered (deterministic) results and per-job failure
    capture. Generic over the work — the experiment drivers combine it
    with {!Strovl_obs.Ctx} to make each run a self-contained unit. *)

module Pool = Pool
