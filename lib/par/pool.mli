(** Fixed-size domain pool with deterministic result ordering.

    Jobs are claimed by index from an atomic counter and each outcome is
    written to its own slot, so results come back in input order
    regardless of scheduling. The pool is observability-agnostic; callers
    wanting per-run isolated state wrap their job function (see
    {!Strovl_obs.Ctx}). *)

type 'a outcome =
  | Done of 'a
  | Failed of { exn : string; backtrace : string }
      (** The job raised; the failure is captured per-slot and sibling
          jobs are unaffected. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b outcome array
(** [map ~jobs f arr] computes [f i arr.(i)] for every [i] on at most
    [jobs] domains (default {!default_jobs}; values [<= 1] — and
    single-job inputs — run inline on the calling domain through the same
    claim/capture loop, with no domain spawned). *)

val outcome_exn : 'a outcome -> 'a
(** Unwraps [Done], re-raises [Failed] as a [Failure] carrying the
    original exception text and backtrace. *)
