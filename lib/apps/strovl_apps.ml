(** Application workloads and receiver-side measurement for the paper's
    application classes: broadcast video (§III-A), cloud monitoring and
    control (§III-B), live TV (§IV-A), remote manipulation (§V-A), and
    compound transcoding flows (§V-C). *)

module Collect = Collect
module Source = Source
module Transcode = Transcode
