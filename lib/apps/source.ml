open Strovl_sim

type t = {
  engine : Engine.t;
  sender : Strovl.Client.sender;
  interval : Time.t;
  bytes : int;
  jitter : float;
  rng : Rng.t option;
  count : int option;
  mutable attempts : int;
  mutable n_sent : int;
  mutable n_refused : int;
  mutable running : bool;
}

let rec tick t () =
  if t.running then begin
    let continue = match t.count with None -> true | Some c -> t.attempts < c in
    if continue then begin
      t.attempts <- t.attempts + 1;
      if Strovl.Client.send t.sender ~bytes:t.bytes () then
        t.n_sent <- t.n_sent + 1
      else t.n_refused <- t.n_refused + 1;
      let delay =
        match t.rng with
        | Some rng when t.jitter > 0. ->
          let f = Rng.uniform_range rng (1. -. t.jitter) (1. +. t.jitter) in
          max 1 (int_of_float (float_of_int t.interval *. f))
        | _ -> t.interval
      in
      ignore (Engine.schedule t.engine ~delay (tick t))
    end
    else t.running <- false
  end

let start ?(jitter = 0.) ?count ?rng ~engine ~sender ~interval ~bytes () =
  if interval <= 0 then invalid_arg "Source.start: interval must be positive";
  let t =
    {
      engine;
      sender;
      interval;
      bytes;
      jitter;
      rng;
      count;
      attempts = 0;
      n_sent = 0;
      n_refused = 0;
      running = true;
    }
  in
  tick t ();
  t

let stop t = t.running <- false
let sent t = t.n_sent
let refused t = t.n_refused

let video ~engine ~sender ?(mbps = 8.0) ?(packet_bytes = 1316) ?count () =
  let pps = mbps *. 1e6 /. (float_of_int packet_bytes *. 8.) in
  let interval = max 1 (int_of_float (1e6 /. pps)) in
  start ~engine ~sender ~interval ~bytes:packet_bytes ?count ()

let monitoring ~engine ~sender ?(interval = Time.ms 100) ?(bytes = 400) ?count
    ?rng () =
  let jitter = if rng = None then 0. else 0.2 in
  start ~engine ~sender ~interval ~bytes ~jitter ?rng ?count ()

let haptic ~engine ~sender ?(rate_hz = 1000) ?(bytes = 64) ?count () =
  let interval = max 1 (1_000_000 / rate_hz) in
  start ~engine ~sender ~interval ~bytes ?count ()
