(** Periodic packet sources: the common shape of the paper's workloads.

    A source drives a {!Strovl.Client.sender} at a fixed interval (with
    optional uniform jitter), for an optional bounded count. Broadcast
    video (§III-A), monitoring streams (§III-B), and haptic feedback
    (§V-A) are all instances with different rates, sizes, and services —
    see the convenience constructors. *)

type t

val start :
  ?jitter:float ->
  ?count:int ->
  ?rng:Strovl_sim.Rng.t ->
  engine:Strovl_sim.Engine.t ->
  sender:Strovl.Client.sender ->
  interval:Strovl_sim.Time.t ->
  bytes:int ->
  unit ->
  t
(** Begins emitting immediately. [jitter] is a fraction of the interval
    (e.g. 0.1 → ±10%, requires [rng]); [count] bounds total send attempts. *)

val stop : t -> unit
val sent : t -> int
(** Packets accepted by the session. *)

val refused : t -> int
(** IT-Reliable backpressure refusals (each is retried on the next tick of
    the source — real senders block; a periodic source skips). *)

val video :
  engine:Strovl_sim.Engine.t ->
  sender:Strovl.Client.sender ->
  ?mbps:float ->
  ?packet_bytes:int ->
  ?count:int ->
  unit ->
  t
(** Broadcast-quality MPEG-TS-like CBR stream; default 8 Mbit/s in 1316-byte
    packets (7×188 TS cells), ≈760 packets/s. *)

val monitoring :
  engine:Strovl_sim.Engine.t ->
  sender:Strovl.Client.sender ->
  ?interval:Strovl_sim.Time.t ->
  ?bytes:int ->
  ?count:int ->
  ?rng:Strovl_sim.Rng.t ->
  unit ->
  t
(** Telemetry updates; default 400-byte reports every 100 ms (±20% jitter
    when [rng] given). *)

val haptic :
  engine:Strovl_sim.Engine.t ->
  sender:Strovl.Client.sender ->
  ?rate_hz:int ->
  ?bytes:int ->
  ?count:int ->
  unit ->
  t
(** Remote-manipulation control/feedback; default 1 kHz × 64 bytes. *)
