open Strovl_sim

type t = {
  net : Strovl.Net.t;
  node : int;
  port : int;
  ingest_group : int;
  client : Strovl.Client.t;
  delay : Time.t;
  out_scale : float;
  out_group : int;
  out_service : Strovl.Packet.service;
  mutable n_processed : int;
  mutable live : bool;
}

(* Re-originate a transformed packet. The output keeps the *original* flow
   source and sequence number (it is the same application flow, transformed)
   so that downstream receivers see one continuous stream across facility
   failovers; only the destination group changes. *)
let emit t (pkt : Strovl.Packet.t) =
  let flow =
    { pkt.Strovl.Packet.flow with Strovl.Packet.f_dest = Strovl.Packet.To_group t.out_group }
  in
  let out =
    Strovl.Packet.make ~flow ~routing:Strovl.Packet.Link_state
      ~service:t.out_service ~seq:pkt.Strovl.Packet.seq
      ~sent_at:pkt.Strovl.Packet.sent_at
      ~bytes:
        (max 1
           (int_of_float (float_of_int pkt.Strovl.Packet.bytes *. t.out_scale)))
      ~tag:pkt.Strovl.Packet.tag ()
  in
  ignore (Strovl.Node.originate (Strovl.Net.node t.net t.node) out)

let create ~net ~node ~port ~ingest_group ~out_group ?(delay = Time.ms 5)
    ?(out_scale = 0.5) ?(out_service = Strovl.Packet.Best_effort) () =
  let client = Strovl.Client.attach (Strovl.Net.node net node) ~port in
  let t =
    {
      net;
      node;
      port;
      ingest_group;
      client;
      delay;
      out_scale;
      out_group;
      out_service;
      n_processed = 0;
      live = true;
    }
  in
  Strovl.Client.set_receiver client (fun pkt ->
      if t.live then begin
        t.n_processed <- t.n_processed + 1;
        ignore
          (Engine.schedule (Strovl.Net.engine net) ~delay:t.delay (fun () ->
               if t.live then emit t pkt))
      end);
  Strovl.Client.join client ~group:ingest_group;
  t

let shutdown t =
  t.live <- false;
  Strovl.Client.leave t.client ~group:t.ingest_group

let processed t = t.n_processed
let node_id t = t.node
