(** Compound flows: in-network transformation (§V-C).

    A transcoding facility is an overlay client that joins an *ingest*
    anycast/multicast group, transforms each received packet (modeled as a
    fixed processing delay and an output-size scaling), and re-originates
    the result toward an *output* group — e.g. the stadium feed transcoded
    for CDN/mobile delivery.

    Re-originated packets keep the original sequence number and origin
    timestamp, so receiver-side measurement spans the whole compound flow
    "including its transformation" (§V-C). Several facilities can join the
    same ingest group at different sites; because the source sends to the
    group by *anycast*, rerouting — including after a facility or site
    failure — picks a different facility automatically. *)

type t

val create :
  net:Strovl.Net.t ->
  node:int ->
  port:int ->
  ingest_group:int ->
  out_group:int ->
  ?delay:Strovl_sim.Time.t ->
  ?out_scale:float ->
  ?out_service:Strovl.Packet.service ->
  unit ->
  t
(** [delay] defaults to 5 ms per packet; [out_scale] scales payload size
    (default 0.5 — transcoding down); output defaults to Best_effort. *)

val shutdown : t -> unit
(** Leaves the ingest group (facility offline): subsequent anycast traffic
    fails over to the remaining facilities. *)

val processed : t -> int
val node_id : t -> int
