(** Per-flow receiver-side measurement.

    Plugs into a {!Strovl.Client} receive callback and records what the
    paper's applications care about: delivery latency and jitter (video,
    §III-A), on-time fraction against a deadline (live TV §IV-A, remote
    manipulation §V-A), delivery gaps (service-interruption measurement for
    the rerouting comparison, §II-A), and sequence holes. *)

type t

val create :
  ?deadline:Strovl_sim.Time.t -> Strovl_sim.Engine.t -> unit -> t
(** With [deadline], each packet counts as on-time iff it is handed to the
    application within the deadline of its origin timestamp. *)

val receiver : t -> Strovl.Packet.t -> unit
(** The callback to register with [Client.set_receiver]. *)

val attach : t -> Strovl.Client.t -> ?reorder:bool -> unit -> unit
(** Convenience: registers {!receiver} on the client. *)

val received : t -> int
val on_time : t -> int
val late : t -> int

val latencies_ms : t -> Strovl_sim.Stats.Series.t
(** Origin-to-application latency of every delivered packet, ms. *)

val gaps_ms : t -> Strovl_sim.Stats.Series.t
(** Interarrival gaps, ms — the max gap during a failure is the measured
    service interruption. *)

val max_gap_ms : t -> float
val mean_ms : t -> float
val p99_ms : t -> float
val max_ms : t -> float
val jitter_ms : t -> float

val on_time_fraction : t -> sent:int -> float
(** On-time deliveries over packets sent (missing packets count against). *)

val delivery_rate : t -> sent:int -> float

val holes : t -> int
(** Distinct sequence numbers skipped (per flow, summed). *)

val reset_window : t -> unit
(** Clears latency/gap series and counters (sequence tracking is kept);
    useful to measure only a post-warm-up window. *)
