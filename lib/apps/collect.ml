open Strovl_sim

module FlowMap = Map.Make (struct
  type t = Strovl.Packet.flow

  let compare = Strovl.Packet.flow_compare
end)

type t = {
  engine : Engine.t;
  deadline : Time.t option;
  lat : Stats.Series.t;
  gaps : Stats.Series.t;
  mutable last_arrival : Time.t option;
  mutable n_received : int;
  mutable n_on_time : int;
  mutable n_late : int;
  mutable next_seq : int FlowMap.t; (* expected next seq per flow *)
  mutable n_holes : int;
}

let create ?deadline engine () =
  {
    engine;
    deadline;
    lat = Stats.Series.create ();
    gaps = Stats.Series.create ();
    last_arrival = None;
    n_received = 0;
    n_on_time = 0;
    n_late = 0;
    next_seq = FlowMap.empty;
    n_holes = 0;
  }

let receiver t pkt =
  let now = Engine.now t.engine in
  let latency = Time.sub now pkt.Strovl.Packet.sent_at in
  t.n_received <- t.n_received + 1;
  Stats.Series.add t.lat (Time.to_ms_float latency);
  (match t.last_arrival with
  | Some prev -> Stats.Series.add t.gaps (Time.to_ms_float (Time.sub now prev))
  | None -> ());
  t.last_arrival <- Some now;
  (match t.deadline with
  | Some d ->
    if latency <= d then t.n_on_time <- t.n_on_time + 1
    else t.n_late <- t.n_late + 1
  | None -> t.n_on_time <- t.n_on_time + 1);
  let flow = pkt.Strovl.Packet.flow in
  let expected = Option.value ~default:0 (FlowMap.find_opt flow t.next_seq) in
  let seq = pkt.Strovl.Packet.seq in
  if seq > expected then t.n_holes <- t.n_holes + (seq - expected);
  if seq >= expected then t.next_seq <- FlowMap.add flow (seq + 1) t.next_seq

let attach t client ?reorder () =
  Strovl.Client.set_receiver client ?reorder (receiver t)

let received t = t.n_received
let on_time t = t.n_on_time
let late t = t.n_late
let latencies_ms t = t.lat
let gaps_ms t = t.gaps
let max_gap_ms t = Stats.Series.max t.gaps
let mean_ms t = Stats.Series.mean t.lat
let p99_ms t = Stats.Series.percentile t.lat 99.
let max_ms t = Stats.Series.max t.lat
let jitter_ms t = Stats.Series.jitter t.lat
let on_time_fraction t ~sent = Stats.ratio t.n_on_time (max sent 1)
let delivery_rate t ~sent = Stats.ratio t.n_received (max sent 1)
let holes t = t.n_holes

let reset_window t =
  Stats.Series.clear t.lat;
  Stats.Series.clear t.gaps;
  t.last_arrival <- None;
  t.n_received <- 0;
  t.n_on_time <- 0;
  t.n_late <- 0
