(** An overlay link: the logical edge between two overlay nodes, realized
    over one ISP's backbone path (§II-A).

    Adds to {!Underlay} what the endpoints' access infrastructure
    contributes: serialization at a finite bandwidth and a finite FIFO
    output queue (tail-drop). The resource-consumption attacks of §IV-B are
    only meaningful because this queue is finite.

    A link is *multihomed*: both endpoints connect to several ISPs, so the
    link can be switched to "a different combination of ISPs" (§II-A)
    without involving Internet routing — [set_isp] takes effect on the next
    packet. We model on-net selection (same provider at both ends), which
    the paper notes is the normal preference.

    A direct Internet path used by the end-to-end baselines is the same
    object: a [Link] between two far-apart sites simply rides the ISP's
    multi-hop routed path. *)

type t

type config = {
  bandwidth_bps : int;  (** access bandwidth, e.g. 1_000_000_000 *)
  queue_cap : Strovl_sim.Time.t;
      (** max queued backlog per direction, as serialization time *)
  overhead_bytes : int;  (** per-packet header overhead added on the wire *)
}

val default_config : config
(** 1 Gbit/s, 50 ms queue, 40 bytes overhead. *)

val create :
  ?config:config -> Underlay.t -> a:int -> b:int -> isp:int -> t
(** A duplex link between sites [a] and [b], initially on [isp]. *)

val a : t -> int
val b : t -> int
val other : t -> int -> int
(** [other t site] is the opposite endpoint.
    @raise Invalid_argument if [site] is neither endpoint. *)

val current_isp : t -> int
val set_isp : t -> int -> unit
(** On-net: the same provider at both endpoints. *)

val set_isp_pair : t -> int -> int -> unit
(** Off-net: provider for the [a]-side and the [b]-side; traffic crosses a
    peering point between them (§II-A: "any combination of the available
    providers may be used"). Equal arguments mean on-net. *)

val current_isp_pair : t -> int * int

val available_isps : t -> int list
(** ISPs whose routing view currently connects the endpoints. *)

val probe_delay : t -> Strovl_sim.Time.t option
(** One-way delay on the current ISP's routed path, [None] when the ISP
    cannot currently connect the endpoints. *)

val send : t -> src:int -> bytes:int -> deliver:(unit -> unit) -> unit
(** Queues a packet at endpoint [src] for the opposite endpoint. [deliver]
    fires at the receiver after serialization + path delay, unless the
    packet is tail-dropped at the queue or lost in the underlay. *)

val sent : t -> int
val queue_drops : t -> int
val backlog : t -> src:int -> Strovl_sim.Time.t
(** Current queued backlog (serialization time) at an endpoint. *)
