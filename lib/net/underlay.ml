open Strovl_sim
module Gen = Strovl_topo.Gen
module Graph = Strovl_topo.Graph
module Dijkstra = Strovl_topo.Dijkstra

type t = {
  engine : Engine.t;
  spec : Gen.spec;
  seg_up : bool array; (* actual state, changes immediately *)
  routing_up : bool array; (* what routing believes, lags by convergence *)
  seg_loss : Loss.t array;
  convergence : Time.t;
  isp_graph : Graph.t array; (* per ISP; link l of isp graph = segment isp_seg.(isp).(l) *)
  isp_seg : int array array;
  (* Route cache: per ISP, per source site, the Dijkstra result under the
     current routing view. Invalidated by bumping the epoch. *)
  mutable epoch : int;
  cache : (int * int, int * Dijkstra.result) Hashtbl.t; (* (isp,src) -> (epoch, result) *)
  presence : bool array array; (* isp -> site -> has fiber *)
  mutable peering_delay : Time.t;
  mutable peering_loss : Loss.t;
}

let engine t = t.engine
let spec t = t.spec
let nsites t = Array.length t.spec.Gen.sites
let nsegments t = Array.length t.spec.Gen.segments

let create ?(convergence = Time.sec 40) engine spec =
  let nseg = Array.length spec.Gen.segments in
  let nsite = Array.length spec.Gen.sites in
  let isp_graph = Array.init spec.Gen.nisps (fun _ -> Graph.create ~n:nsite) in
  let isp_seg = Array.make spec.Gen.nisps [||] in
  let tmp = Array.make spec.Gen.nisps [] in
  Array.iteri
    (fun si s ->
      let g = isp_graph.(s.Gen.seg_isp) in
      ignore (Graph.add_link g s.Gen.seg_a s.Gen.seg_b);
      tmp.(s.Gen.seg_isp) <- si :: tmp.(s.Gen.seg_isp))
    spec.Gen.segments;
  Array.iteri (fun isp l -> isp_seg.(isp) <- Array.of_list (List.rev l)) tmp;
  let presence =
    Array.init spec.Gen.nisps (fun isp ->
        Array.init nsite (fun site -> Graph.degree isp_graph.(isp) site > 0))
  in
  {
    engine;
    spec;
    seg_up = Array.make nseg true;
    routing_up = Array.make nseg true;
    seg_loss = Array.make nseg Loss.perfect;
    convergence;
    isp_graph;
    isp_seg;
    epoch = 0;
    cache = Hashtbl.create 64;
    presence;
    peering_delay = Time.ms 2;
    peering_loss =
      Loss.bernoulli (Rng.split_named (Engine.rng engine) "peering") ~p:0.01;
  }

let m_seg_fail = Strovl_obs.Metrics.counter "strovl_underlay_segment_failures_total"
let m_seg_repair = Strovl_obs.Metrics.counter "strovl_underlay_segment_repairs_total"
let m_lost = Strovl_obs.Metrics.counter "strovl_underlay_lost_total"

(* A wire loss is a drop in flight: charge it to the sending site so the
   flight recorder shows where the packet vanished. *)
let note_lost src =
  Strovl_obs.Metrics.Counter.incr m_lost;
  if !Strovl_obs.Trace.on then
    Strovl_obs.Trace.emit ~node:src
      (Strovl_obs.Trace.Drop Strovl_obs.Trace.Wire_loss)

let set_segment_loss t si loss =
  if si < 0 || si >= nsegments t then invalid_arg "Underlay.set_segment_loss";
  t.seg_loss.(si) <- loss

let set_all_segment_loss t f =
  Array.iteri (fun si s -> t.seg_loss.(si) <- f si s) t.spec.Gen.segments

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  Hashtbl.reset t.cache

let fail_segment t si =
  if si < 0 || si >= nsegments t then invalid_arg "Underlay.fail_segment";
  if t.seg_up.(si) then begin
    t.seg_up.(si) <- false;
    Strovl_obs.Metrics.Counter.incr m_seg_fail;
    ignore
      (Engine.schedule t.engine ~delay:t.convergence (fun () ->
           (* Convergence: routing stops using the segment — unless it was
              repaired in the meantime. *)
           if not t.seg_up.(si) then begin
             t.routing_up.(si) <- false;
             bump_epoch t
           end))
  end

let repair_segment t si =
  if si < 0 || si >= nsegments t then invalid_arg "Underlay.repair_segment";
  if not t.seg_up.(si) then begin
    t.seg_up.(si) <- true;
    Strovl_obs.Metrics.Counter.incr m_seg_repair;
    ignore
      (Engine.schedule t.engine ~delay:t.convergence (fun () ->
           if t.seg_up.(si) then begin
             t.routing_up.(si) <- true;
             bump_epoch t
           end))
  end

let segment_up t si = t.seg_up.(si)

let segments_between t a b =
  let acc = ref [] in
  Array.iteri
    (fun si s ->
      if (s.Gen.seg_a = a && s.Gen.seg_b = b) || (s.Gen.seg_a = b && s.Gen.seg_b = a)
      then acc := si :: !acc)
    t.spec.Gen.segments;
  List.rev !acc

let routes t ~isp ~src =
  match Hashtbl.find_opt t.cache (isp, src) with
  | Some (e, r) when e = t.epoch -> r
  | _ ->
    let g = t.isp_graph.(isp) in
    let seg_of l = t.isp_seg.(isp).(l) in
    let weight l = t.spec.Gen.segments.(seg_of l).Gen.seg_delay in
    let usable l = t.routing_up.(seg_of l) in
    let r = Dijkstra.run ~usable ~weight g src in
    Hashtbl.replace t.cache (isp, src) (t.epoch, r);
    r

let routed_path t ~isp ~src ~dst =
  if isp < 0 || isp >= t.spec.Gen.nisps then invalid_arg "Underlay: bad isp";
  let r = routes t ~isp ~src in
  match Dijkstra.path_to r dst with
  | None -> None
  | Some links -> Some (List.map (fun l -> t.isp_seg.(isp).(l)) links)

let path_delay t ~isp ~src ~dst =
  match routed_path t ~isp ~src ~dst with
  | None -> None
  | Some segs ->
    Some
      (List.fold_left
         (fun acc si -> acc + t.spec.Gen.segments.(si).Gen.seg_delay)
         0 segs)

(* Fate of a packet injected now: walk the routed path accumulating delay;
   the packet dies at the first segment that is actually down or whose loss
   process fires at the crossing instant. *)
let transmit_result t ~isp ~src ~dst =
  match routed_path t ~isp ~src ~dst with
  | None -> `Lost
  | Some segs ->
    let now = Engine.now t.engine in
    let rec walk acc = function
      | [] -> `Delivered acc
      | si :: rest ->
        if
          t.seg_up.(si)
          && not (Loss.drops t.seg_loss.(si) ~now:(Time.add now acc))
        then walk (Time.add acc t.spec.Gen.segments.(si).Gen.seg_delay) rest
        else `Lost
    in
    walk Time.zero segs

let transmit t ~isp ~src ~dst ~deliver =
  match transmit_result t ~isp ~src ~dst with
  | `Lost -> note_lost src
  | `Delivered latency -> ignore (Engine.schedule t.engine ~delay:latency deliver)

(* --------------------------- off-net paths --------------------------- *)

let set_peering t ~delay ~loss =
  t.peering_delay <- delay;
  t.peering_loss <- loss

let isp_present t ~isp site = t.presence.(isp).(site)

let peering_sites t ~isp_a ~isp_b =
  let acc = ref [] in
  for s = Array.length t.spec.Gen.sites - 1 downto 0 do
    if t.presence.(isp_a).(s) && t.presence.(isp_b).(s) then acc := s :: !acc
  done;
  !acc

(* The best peering site under the current routing views. *)
let best_peering t ~isp_src ~isp_dst ~src ~dst =
  List.fold_left
    (fun best s ->
      match
        ( path_delay t ~isp:isp_src ~src ~dst:s,
          path_delay t ~isp:isp_dst ~src:s ~dst )
      with
      | Some d1, Some d2 -> begin
        let total = Time.add (Time.add d1 d2) t.peering_delay in
        match best with
        | Some (_, b) when b <= total -> best
        | _ -> Some (s, total)
      end
      | _ -> best)
    None
    (peering_sites t ~isp_a:isp_src ~isp_b:isp_dst)

let path_delay_pair t ~isp_src ~isp_dst ~src ~dst =
  if isp_src = isp_dst then path_delay t ~isp:isp_src ~src ~dst
  else Option.map snd (best_peering t ~isp_src ~isp_dst ~src ~dst)

(* Walk one leg's segments starting [acc] after packet injection. *)
let walk_leg t segs ~now acc0 =
  let rec walk acc = function
    | [] -> Some acc
    | si :: rest ->
      if
        t.seg_up.(si)
        && not (Loss.drops t.seg_loss.(si) ~now:(Time.add now acc))
      then walk (Time.add acc t.spec.Gen.segments.(si).Gen.seg_delay) rest
      else None
  in
  walk acc0 segs

let transmit_result_pair t ~isp_src ~isp_dst ~src ~dst =
  if isp_src = isp_dst then transmit_result t ~isp:isp_src ~src ~dst
  else begin
    match best_peering t ~isp_src ~isp_dst ~src ~dst with
    | None -> `Lost
    | Some (peer, _) -> begin
      let now = Engine.now t.engine in
      match
        ( routed_path t ~isp:isp_src ~src ~dst:peer,
          routed_path t ~isp:isp_dst ~src:peer ~dst )
      with
      | Some leg1, Some leg2 -> begin
        match walk_leg t leg1 ~now Time.zero with
        | None -> `Lost
        | Some acc ->
          if Loss.drops t.peering_loss ~now:(Time.add now acc) then `Lost
          else begin
            let acc = Time.add acc t.peering_delay in
            match walk_leg t leg2 ~now acc with
            | None -> `Lost
            | Some total -> `Delivered total
          end
      end
      | _ -> `Lost
    end
  end

let transmit_pair t ~isp_src ~isp_dst ~src ~dst ~deliver =
  match transmit_result_pair t ~isp_src ~isp_dst ~src ~dst with
  | `Lost -> note_lost src
  | `Delivered latency -> ignore (Engine.schedule t.engine ~delay:latency deliver)
