open Strovl_sim
module Gen = Strovl_topo.Gen
module Graph = Strovl_topo.Graph
module Dijkstra = Strovl_topo.Dijkstra

type t = {
  engine : Engine.t;
  spec : Gen.spec;
  seg_up : bool array; (* actual state, changes immediately *)
  routing_up : bool array; (* what routing believes, lags by convergence *)
  seg_loss : Loss.t array;
  convergence : Time.t;
  isp_graph : Graph.t array; (* per ISP; link l of isp graph = segment isp_seg.(isp).(l) *)
  isp_seg : int array array;
  (* Route cache: per ISP, per source site, the Dijkstra result under the
     current routing view. Invalidated by bumping the epoch. *)
  mutable epoch : int;
  cache : (int * int, int * Dijkstra.result) Hashtbl.t; (* (isp,src) -> (epoch, result) *)
  (* Per-transmission fast path: flat segment arrays for routed paths and
     resolved peering choices, keyed by packed ints and validated against
     the epoch, so steady-state wire transmissions never re-walk Dijkstra
     parents or re-fold peering sites. *)
  seg_cache : (int, int * int array option) Hashtbl.t;
      (* isp,src,dst -> epoch, segments *)
  peer_cache : (int, int * int * int) Hashtbl.t;
      (* isps,src,dst -> epoch, peer site (-1 none), total delay *)
  presence : bool array array; (* isp -> site -> has fiber *)
  mutable peering_delay : Time.t;
  mutable peering_loss : Loss.t;
  (* Metric handles from this domain's registry, bound at [create] time so
     they belong to the run that owns this underlay (see Strovl_obs.Ctx). *)
  m_seg_fail : Strovl_obs.Metrics.Counter.t;
  m_seg_repair : Strovl_obs.Metrics.Counter.t;
  m_lost : Strovl_obs.Metrics.Counter.t;
}

let engine t = t.engine
let spec t = t.spec
let nsites t = Array.length t.spec.Gen.sites
let nsegments t = Array.length t.spec.Gen.segments

let create ?(convergence = Time.sec 40) engine spec =
  let nseg = Array.length spec.Gen.segments in
  let nsite = Array.length spec.Gen.sites in
  let isp_graph = Array.init spec.Gen.nisps (fun _ -> Graph.create ~n:nsite) in
  let isp_seg = Array.make spec.Gen.nisps [||] in
  let tmp = Array.make spec.Gen.nisps [] in
  Array.iteri
    (fun si s ->
      let g = isp_graph.(s.Gen.seg_isp) in
      ignore (Graph.add_link g s.Gen.seg_a s.Gen.seg_b);
      tmp.(s.Gen.seg_isp) <- si :: tmp.(s.Gen.seg_isp))
    spec.Gen.segments;
  Array.iteri (fun isp l -> isp_seg.(isp) <- Array.of_list (List.rev l)) tmp;
  let presence =
    Array.init spec.Gen.nisps (fun isp ->
        Array.init nsite (fun site -> Graph.degree isp_graph.(isp) site > 0))
  in
  {
    engine;
    spec;
    seg_up = Array.make nseg true;
    routing_up = Array.make nseg true;
    seg_loss = Array.make nseg Loss.perfect;
    convergence;
    isp_graph;
    isp_seg;
    epoch = 0;
    cache = Hashtbl.create 64;
    seg_cache = Hashtbl.create 256;
    peer_cache = Hashtbl.create 64;
    presence;
    peering_delay = Time.ms 2;
    peering_loss =
      Loss.bernoulli (Rng.split_named (Engine.rng engine) "peering") ~p:0.01;
    m_seg_fail =
      Strovl_obs.Metrics.counter "strovl_underlay_segment_failures_total";
    m_seg_repair =
      Strovl_obs.Metrics.counter "strovl_underlay_segment_repairs_total";
    m_lost = Strovl_obs.Metrics.counter "strovl_underlay_lost_total";
  }

(* A wire loss is a drop in flight: charge it to the sending site so the
   flight recorder shows where the packet vanished. *)
let note_lost t src =
  Strovl_obs.Metrics.Counter.incr t.m_lost;
  if Strovl_obs.Trace.armed () then
    Strovl_obs.Trace.emit ~node:src
      (Strovl_obs.Trace.Drop Strovl_obs.Trace.Wire_loss)

let set_segment_loss t si loss =
  if si < 0 || si >= nsegments t then invalid_arg "Underlay.set_segment_loss";
  t.seg_loss.(si) <- loss

let set_all_segment_loss t f =
  Array.iteri (fun si s -> t.seg_loss.(si) <- f si s) t.spec.Gen.segments

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  Hashtbl.reset t.cache

let fail_segment t si =
  if si < 0 || si >= nsegments t then invalid_arg "Underlay.fail_segment";
  if t.seg_up.(si) then begin
    t.seg_up.(si) <- false;
    Strovl_obs.Metrics.Counter.incr t.m_seg_fail;
    ignore
      (Engine.schedule t.engine ~delay:t.convergence (fun () ->
           (* Convergence: routing stops using the segment — unless it was
              repaired in the meantime. *)
           if not t.seg_up.(si) then begin
             t.routing_up.(si) <- false;
             bump_epoch t
           end))
  end

let repair_segment t si =
  if si < 0 || si >= nsegments t then invalid_arg "Underlay.repair_segment";
  if not t.seg_up.(si) then begin
    t.seg_up.(si) <- true;
    Strovl_obs.Metrics.Counter.incr t.m_seg_repair;
    ignore
      (Engine.schedule t.engine ~delay:t.convergence (fun () ->
           if t.seg_up.(si) then begin
             t.routing_up.(si) <- true;
             bump_epoch t
           end))
  end

let segment_up t si = t.seg_up.(si)

let segments_between t a b =
  let acc = ref [] in
  Array.iteri
    (fun si s ->
      if (s.Gen.seg_a = a && s.Gen.seg_b = b) || (s.Gen.seg_a = b && s.Gen.seg_b = a)
      then acc := si :: !acc)
    t.spec.Gen.segments;
  List.rev !acc

let routes t ~isp ~src =
  match Hashtbl.find_opt t.cache (isp, src) with
  | Some (e, r) when e = t.epoch -> r
  | _ ->
    let g = t.isp_graph.(isp) in
    let seg_of l = t.isp_seg.(isp).(l) in
    let weight l = t.spec.Gen.segments.(seg_of l).Gen.seg_delay in
    let usable l = t.routing_up.(seg_of l) in
    let r = Dijkstra.run ~usable ~weight g src in
    Hashtbl.replace t.cache (isp, src) (t.epoch, r);
    r

let routed_path t ~isp ~src ~dst =
  if isp < 0 || isp >= t.spec.Gen.nisps then invalid_arg "Underlay: bad isp";
  let r = routes t ~isp ~src in
  match Dijkstra.path_to r dst with
  | None -> None
  | Some links -> Some (List.map (fun l -> t.isp_seg.(isp).(l)) links)

(* Cached flat-array form of [routed_path], revalidated by epoch. *)
let routed_segs_slow t key ~isp ~src ~dst =
  let segs =
    match routed_path t ~isp ~src ~dst with
    | None -> None
    | Some l -> Some (Array.of_list l)
  in
  Hashtbl.replace t.seg_cache key (t.epoch, segs);
  segs

let routed_segs t ~isp ~src ~dst =
  let ns = nsites t in
  let key = (((isp * ns) + src) * ns) + dst in
  match Hashtbl.find t.seg_cache key with
  | e, segs when e = t.epoch -> segs
  | _ -> routed_segs_slow t key ~isp ~src ~dst
  | exception Not_found -> routed_segs_slow t key ~isp ~src ~dst

(* Sum of segment delays; [min_int] when unreachable. *)
let path_delay_int t ~isp ~src ~dst =
  match routed_segs t ~isp ~src ~dst with
  | None -> min_int
  | Some segs ->
    let rec sum i acc =
      if i >= Array.length segs then acc
      else sum (i + 1) (acc + t.spec.Gen.segments.(segs.(i)).Gen.seg_delay)
    in
    sum 0 0

let path_delay t ~isp ~src ~dst =
  match path_delay_int t ~isp ~src ~dst with
  | d when d = min_int -> None
  | d -> Some d

(* Fate of a packet injected now: walk the routed path accumulating delay;
   the packet dies at the first segment that is actually down or whose loss
   process fires at the crossing instant. [min_int] means lost. Loss is
   sampled segment by segment in path order (the RNG stream is part of the
   simulation's determinism contract). *)
let rec walk_segs t segs i acc ~now =
  if i >= Array.length segs then acc
  else begin
    let si = segs.(i) in
    if t.seg_up.(si) && not (Loss.drops t.seg_loss.(si) ~now:(Time.add now acc))
    then
      walk_segs t segs (i + 1)
        (Time.add acc t.spec.Gen.segments.(si).Gen.seg_delay)
        ~now
    else min_int
  end

let transmit_latency t ~isp ~src ~dst =
  match routed_segs t ~isp ~src ~dst with
  | None -> min_int
  | Some segs -> walk_segs t segs 0 Time.zero ~now:(Engine.now t.engine)

let transmit_result t ~isp ~src ~dst =
  match transmit_latency t ~isp ~src ~dst with
  | d when d = min_int -> `Lost
  | d -> `Delivered d

let transmit t ~isp ~src ~dst ~deliver =
  match transmit_latency t ~isp ~src ~dst with
  | d when d = min_int -> note_lost t src
  | d -> ignore (Engine.schedule t.engine ~delay:d deliver)

(* --------------------------- off-net paths --------------------------- *)

let set_peering t ~delay ~loss =
  t.peering_delay <- delay;
  t.peering_loss <- loss

let isp_present t ~isp site = t.presence.(isp).(site)

let peering_sites t ~isp_a ~isp_b =
  let acc = ref [] in
  for s = Array.length t.spec.Gen.sites - 1 downto 0 do
    if t.presence.(isp_a).(s) && t.presence.(isp_b).(s) then acc := s :: !acc
  done;
  !acc

(* The best peering site under the current routing views: [(peer, total)]
   with [peer = -1] when the ISPs share no usable path. Cached by epoch —
   the fold over peering sites is pure (no loss sampling), so caching it
   cannot perturb the RNG stream. *)
let best_peering_slow t key ~isp_src ~isp_dst ~src ~dst =
  let best =
    List.fold_left
      (fun ((_, bd) as best) s ->
        let d1 = path_delay_int t ~isp:isp_src ~src ~dst:s in
        let d2 = path_delay_int t ~isp:isp_dst ~src:s ~dst in
        if d1 = min_int || d2 = min_int then best
        else begin
          let total = Time.add (Time.add d1 d2) t.peering_delay in
          if bd >= 0 && bd <= total then best else (s, total)
        end)
      (-1, -1)
      (peering_sites t ~isp_a:isp_src ~isp_b:isp_dst)
  in
  let peer, total = best in
  Hashtbl.replace t.peer_cache key (t.epoch, peer, total);
  best

let best_peering_int t ~isp_src ~isp_dst ~src ~dst =
  let ns = nsites t in
  let key =
    ((((isp_src * t.spec.Gen.nisps) + isp_dst) * ns + src) * ns) + dst
  in
  match Hashtbl.find t.peer_cache key with
  | e, peer, total when e = t.epoch -> (peer, total)
  | _ -> best_peering_slow t key ~isp_src ~isp_dst ~src ~dst
  | exception Not_found -> best_peering_slow t key ~isp_src ~isp_dst ~src ~dst

let path_delay_pair t ~isp_src ~isp_dst ~src ~dst =
  if isp_src = isp_dst then path_delay t ~isp:isp_src ~src ~dst
  else begin
    match best_peering_int t ~isp_src ~isp_dst ~src ~dst with
    | -1, _ -> None
    | _, total -> Some total
  end

let transmit_latency_pair t ~isp_src ~isp_dst ~src ~dst =
  if isp_src = isp_dst then transmit_latency t ~isp:isp_src ~src ~dst
  else begin
    let peer, _ = best_peering_int t ~isp_src ~isp_dst ~src ~dst in
    if peer < 0 then min_int
    else begin
      match routed_segs t ~isp:isp_src ~src ~dst:peer with
      | None -> min_int
      | Some leg1 -> (
        match routed_segs t ~isp:isp_dst ~src:peer ~dst with
        | None -> min_int
        | Some leg2 ->
          let now = Engine.now t.engine in
          let acc = walk_segs t leg1 0 Time.zero ~now in
          if acc = min_int then min_int
          else if Loss.drops t.peering_loss ~now:(Time.add now acc) then
            min_int
          else walk_segs t leg2 0 (Time.add acc t.peering_delay) ~now)
    end
  end

let transmit_result_pair t ~isp_src ~isp_dst ~src ~dst =
  match transmit_latency_pair t ~isp_src ~isp_dst ~src ~dst with
  | d when d = min_int -> `Lost
  | d -> `Delivered d

let transmit_pair t ~isp_src ~isp_dst ~src ~dst ~deliver =
  match transmit_latency_pair t ~isp_src ~isp_dst ~src ~dst with
  | d when d = min_int -> note_lost t src
  | d -> ignore (Engine.schedule t.engine ~delay:d deliver)
