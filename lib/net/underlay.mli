(** The underlying Internet: per-ISP backbones with propagation delay,
    loss, failures, and BGP-style convergence.

    Each ISP backbone is an independent graph of fiber *segments* between
    data-center sites (from {!Strovl_topo.Gen.spec}); routing inside an ISP
    is shortest-path. The crucial dynamic the paper contrasts against
    (§II-A) is convergence: when a segment fails, Internet routing keeps
    forwarding into the failure ("blackholing") until BGP converges — "40
    seconds to minutes" — whereas the overlay's own connectivity-graph
    maintenance reroutes in under a second. We model this with a *routing
    view* per ISP that lags reality by a configurable convergence delay.

    Transmission between two sites on one ISP follows the ISP's *current
    routing view*; the packet is lost if any traversed segment is actually
    down or its loss process fires at the crossing instant. *)

type t

val create :
  ?convergence:Strovl_sim.Time.t ->
  Strovl_sim.Engine.t ->
  Strovl_topo.Gen.spec ->
  t
(** [convergence] defaults to 40 s (the paper's BGP figure). *)

val engine : t -> Strovl_sim.Engine.t
val spec : t -> Strovl_topo.Gen.spec
val nsites : t -> int
val nsegments : t -> int

val set_segment_loss : t -> int -> Strovl_sim.Loss.t -> unit
(** Attach a loss process to a fiber segment (default: perfect). *)

val set_all_segment_loss : t -> (int -> Strovl_topo.Gen.segment -> Strovl_sim.Loss.t) -> unit

val fail_segment : t -> int -> unit
(** The segment drops all traffic immediately; each ISP's routing view
    notices only after the convergence delay. *)

val repair_segment : t -> int -> unit
(** The segment carries traffic again immediately; routing views re-adopt
    it after the convergence delay. *)

val segment_up : t -> int -> bool

val segments_between : t -> int -> int -> int list
(** All segment indices directly joining two sites (any ISP). *)

val path_delay : t -> isp:int -> src:int -> dst:int -> Strovl_sim.Time.t option
(** One-way delay of the ISP's *currently routed* path, [None] if the
    routing view has no path. This is what a measurement (ping) between the
    sites would report. *)

val routed_path : t -> isp:int -> src:int -> dst:int -> int list option
(** Segment indices of the currently routed path. *)

val transmit :
  t ->
  isp:int ->
  src:int ->
  dst:int ->
  deliver:(unit -> unit) ->
  unit
(** Injects one packet. If the routing view yields a path and every
    traversed segment is up and lossless at its crossing instant, [deliver]
    runs after the path delay; otherwise the packet vanishes (no
    notification — exactly what IP gives you). *)

val transmit_result :
  t -> isp:int -> src:int -> dst:int -> [ `Delivered of Strovl_sim.Time.t | `Lost ]
(** Like {!transmit} but synchronous: evaluates the fate and latency of a
    packet sent now, without scheduling. Used by tests and fast-path
    experiments. *)

(** {2 Off-net paths (§II-A)}

    An overlay link normally uses the same provider at both endpoints
    ("on-net"), but "any combination of the available providers may be
    used": an off-net path rides provider A from the source to a peering
    site where both providers have presence, crosses the (congested,
    best-effort) public peering, and continues on provider B. The paper
    notes on-net "generally results in better performance" — the peering
    penalty below is why. *)

val set_peering : t -> delay:Strovl_sim.Time.t -> loss:Strovl_sim.Loss.t -> unit
(** Configures the peering-point penalty (defaults: 2 ms, 1% Bernoulli
    derived from the engine seed). *)

val isp_present : t -> isp:int -> int -> bool
(** Whether the ISP has fiber touching the site. *)

val peering_sites : t -> isp_a:int -> isp_b:int -> int list
(** Sites where both providers are present (candidate peering points). *)

val path_delay_pair :
  t -> isp_src:int -> isp_dst:int -> src:int -> dst:int -> Strovl_sim.Time.t option
(** Delay of the best currently routed off-net path (min over peering
    sites), including the peering penalty. Equals {!path_delay} when the
    providers coincide. *)

val transmit_result_pair :
  t ->
  isp_src:int ->
  isp_dst:int ->
  src:int ->
  dst:int ->
  [ `Delivered of Strovl_sim.Time.t | `Lost ]

val transmit_pair :
  t ->
  isp_src:int ->
  isp_dst:int ->
  src:int ->
  dst:int ->
  deliver:(unit -> unit) ->
  unit
