open Strovl_sim

type config = {
  bandwidth_bps : int;
  queue_cap : Time.t;
  overhead_bytes : int;
}

let default_config =
  { bandwidth_bps = 1_000_000_000; queue_cap = Time.ms 50; overhead_bytes = 40 }

type half = { mutable last_departure : Time.t; mutable drops : int }

type t = {
  underlay : Underlay.t;
  cfg : config;
  ea : int;
  eb : int;
  mutable isp : int; (* provider at the a-side *)
  mutable isp_b : int; (* provider at the b-side (= isp when on-net) *)
  ab : half; (* direction a -> b *)
  ba : half;
  mutable sent : int;
  (* Per-link labelled metric handles, created once per link. *)
  m_tx_pkts : Strovl_obs.Metrics.Counter.t;
  m_tx_bytes : Strovl_obs.Metrics.Counter.t;
  m_qdrops : Strovl_obs.Metrics.Counter.t;
  m_backlog : Strovl_obs.Metrics.Histogram.t;
  (* Time-series twins (Strovl_obs.Series; off by default). *)
  s_tx : Strovl_obs.Series.ch;
  s_backlog : Strovl_obs.Series.ch;
  s_qdrops : Strovl_obs.Series.ch;
}

let create ?(config = default_config) underlay ~a ~b ~isp =
  if a = b then invalid_arg "Link.create: endpoints equal";
  let labels = [ ("link", Printf.sprintf "%d-%d" a b) ] in
  {
    underlay;
    cfg = config;
    ea = a;
    eb = b;
    isp;
    isp_b = isp;
    ab = { last_departure = Time.zero; drops = 0 };
    ba = { last_departure = Time.zero; drops = 0 };
    sent = 0;
    m_tx_pkts = Strovl_obs.Metrics.counter ~labels "strovl_link_tx_packets_total";
    m_tx_bytes = Strovl_obs.Metrics.counter ~labels "strovl_link_tx_bytes_total";
    m_qdrops = Strovl_obs.Metrics.counter ~labels "strovl_link_queue_drops_total";
    m_backlog = Strovl_obs.Metrics.histogram ~labels "strovl_link_backlog_us";
    s_tx = Strovl_obs.Series.channel ~labels "strovl_link_tx_packets";
    s_backlog = Strovl_obs.Series.channel ~labels "strovl_link_backlog_us";
    s_qdrops = Strovl_obs.Series.channel ~labels "strovl_link_queue_drops";
  }

let a t = t.ea
let b t = t.eb

let other t site =
  if site = t.ea then t.eb
  else if site = t.eb then t.ea
  else invalid_arg "Link.other: not an endpoint"

let current_isp t = t.isp

let set_isp t isp =
  t.isp <- isp;
  t.isp_b <- isp

let set_isp_pair t ia ib =
  t.isp <- ia;
  t.isp_b <- ib

let current_isp_pair t = (t.isp, t.isp_b)

let available_isps t =
  let spec = Underlay.spec t.underlay in
  let rec isps i acc =
    if i < 0 then acc
    else begin
      let acc =
        match Underlay.path_delay t.underlay ~isp:i ~src:t.ea ~dst:t.eb with
        | Some _ -> i :: acc
        | None -> acc
      in
      isps (i - 1) acc
    end
  in
  isps (spec.Strovl_topo.Gen.nisps - 1) []

let probe_delay t =
  Underlay.path_delay_pair t.underlay ~isp_src:t.isp ~isp_dst:t.isp_b ~src:t.ea
    ~dst:t.eb

let half_for t src =
  if src = t.ea then t.ab
  else if src = t.eb then t.ba
  else invalid_arg "Link.send: not an endpoint"

(* Serialization time of a packet on the access bandwidth, in microseconds
   (at least 1). *)
let tx_time t bytes =
  let bits = (bytes + t.cfg.overhead_bytes) * 8 in
  max 1 (int_of_float (Float.round (float_of_int bits *. 1e6 /. float_of_int t.cfg.bandwidth_bps)))

let send t ~src ~bytes ~deliver =
  let h = half_for t src in
  let engine = Underlay.engine t.underlay in
  let now = Engine.now engine in
  let start = Time.max now h.last_departure in
  let departure = Time.add start (tx_time t bytes) in
  if Time.sub departure now > t.cfg.queue_cap then begin
    h.drops <- h.drops + 1;
    Strovl_obs.Metrics.Counter.incr t.m_qdrops;
    if Strovl_obs.Series.armed () then Strovl_obs.Series.incr t.s_qdrops;
    if Strovl_obs.Trace.armed () then
      Strovl_obs.Trace.emit ~node:src
        (Strovl_obs.Trace.Drop Strovl_obs.Trace.Queue_full)
  end
  else begin
    h.last_departure <- departure;
    t.sent <- t.sent + 1;
    Strovl_obs.Metrics.Counter.incr t.m_tx_pkts;
    Strovl_obs.Metrics.Counter.add t.m_tx_bytes (bytes + t.cfg.overhead_bytes);
    Strovl_obs.Metrics.Histogram.observe t.m_backlog (Time.sub start now);
    if Strovl_obs.Series.armed () then begin
      Strovl_obs.Series.incr t.s_tx;
      Strovl_obs.Series.add t.s_backlog (Time.sub start now)
    end;
    let dst = other t src in
    (* Direction determines which provider is the source side. *)
    let isp_src = if src = t.ea then t.isp else t.isp_b in
    let isp_dst = if src = t.ea then t.isp_b else t.isp in
    ignore
      (Engine.schedule_at engine ~at:departure (fun () ->
           Underlay.transmit_pair t.underlay ~isp_src ~isp_dst ~src ~dst ~deliver))
  end

let sent t = t.sent
let queue_drops t = t.ab.drops + t.ba.drops

let backlog t ~src =
  let h = half_for t src in
  let now = Engine.now (Underlay.engine t.underlay) in
  Time.max Time.zero (Time.sub h.last_departure now)
