(** The simulated Internet the overlay is deployed over: per-ISP backbones
    with propagation delay, bursty loss, failures and BGP-style convergence
    ({!Underlay}), and multihomed overlay links with finite access bandwidth
    and queues ({!Link}). *)

module Underlay = Underlay
module Link = Link
