(** disjoint-k: §IV-B redundant dissemination.

    "By using k node-disjoint paths, a source can protect against up to
    k−1 compromised nodes anywhere in the network (since each compromised
    node can disrupt at most one of the k paths). Alternatively ...
    constrained flooding ensures that messages are successfully delivered
    as long as at least one path of correct nodes exists."

    Worst-case adversary: for each scheme, the compromised nodes are placed
    *on the scheme's own paths* (one blackholing router per path), which is
    exactly the placement the k−1 bound is tight against. Authentication is
    on, so the compromised nodes can drop but not forge.

    Testbed: the circulant C_12(1,2) — vertex connectivity 4, so 3 disjoint
    paths exist and flooding still has a correct path with 3 compromised
    routers. (A US-style backbone with degree-2 edge sites cannot host the
    k=3 claim: its min cuts are the limiting factor — that in itself is the
    paper's argument for designing the overlay topology deliberately.) *)

module Gen = Strovl_topo.Gen
module Dissem = Strovl_topo.Dissem
module Disjoint = Strovl_topo.Disjoint

let nnodes = 12
let src = 0
let dst = 6
let spec () = Gen.circulant ~n:nnodes ~jumps:[ 1; 2 ] ~hop_delay:(Strovl_sim.Time.ms 10)

let schemes =
  [
    ("single-path", Dissem.Single_path, 1);
    ("2-disjoint", Dissem.Two_disjoint, 2);
    ("3-disjoint", Dissem.K_disjoint 3, 3);
    ("flooding", Dissem.Flooding, 3);
  ]

(* Interior nodes of the scheme's paths, one per path, adversary-ordered. *)
let victims sim k =
  let g = Strovl.Net.graph sim.Common.net in
  let weight l = Strovl.Net.link_metric sim.Common.net l in
  let paths = Disjoint.paths ~weight ~k g src dst in
  List.filter_map
    (fun p ->
      match Disjoint.path_nodes g src p with
      | _ :: (mid :: _ as rest) when List.length rest > 1 -> Some mid
      | _ -> None)
    paths

let run_case ~seed ~count (name, scheme, k) c =
  let config = { Strovl.Net.default_config with Strovl.Net.authenticate = true } in
  let sim = Common.build ~config ~seed (spec ()) in
  let vs = List.filteri (fun i _ -> i < c) (victims sim (max k 3)) in
  Strovl_attack.Scenario.compromise_set ~net:sim.Common.net ~rng:sim.Common.rng
    ~nodes:vs Strovl_attack.Behavior.Blackhole;
  let collect, sent =
    Common.flow_stats sim ~src ~dst
      ~service:(Strovl.Packet.It_priority 1)
      ~route:(Strovl.Client.Scheme scheme) ~count ()
  in
  [
    name;
    string_of_int c;
    Table.cell_pct (Strovl_apps.Collect.delivery_rate collect ~sent);
    Table.cell_ms (Strovl_apps.Collect.mean_ms collect);
  ]

let run ?(quick = false) ~seed () =
  let count = if quick then 100 else 400 in
  let compromised = if quick then [ 0; 1; 2 ] else [ 0; 1; 2; 3 ] in
  let rows =
    List.concat_map
      (fun s -> List.map (run_case ~seed ~count s) compromised)
      schemes
  in
  Table.make ~id:"disjoint-k"
    ~title:
      "Delivery under c blackholing compromised routers placed on the \
       dissemination paths (C12(1,2) overlay, auth on)"
    ~header:[ "scheme"; "compromised"; "delivered"; "mean latency" ]
    ~notes:
      [
        "paper: k disjoint paths tolerate k-1 compromised nodes anywhere \
         (SIV-B)";
        "flooding delivers while any correct path exists";
        "single-path collapses at c=1; 2-disjoint at c=2; 3-disjoint at c=3";
      ]
    rows
