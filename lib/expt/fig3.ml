(** fig3-recovery: Figure 3 / §III-A.

    A 50 ms continental path as five 10 ms overlay links. The same ARQ
    machinery runs (a) end-to-end across the whole path, (b) hop-by-hop on
    each overlay link with out-of-order forwarding, and (c) hop-by-hop with
    the out-of-order ablation disabled. The paper's claim: a recovered
    packet costs ≥100 ms extra end-to-end (total ≥150 ms) but only ~20 ms
    extra hop-by-hop (total ~70 ms), and hop-by-hop delivery is smoother. *)

open Strovl_sim
module Gen = Strovl_topo.Gen

let hop = Time.ms 10
let hops = 5

let spec () = Gen.chain ~n:(hops + 1) ~hop_delay:hop

let interval = Time.ms 5

(* End-to-end baseline: the direct Internet path (all five segments) with
   the identical reliable protocol spanning it once. *)
let run_e2e ~seed ~p ~count =
  let engine = Engine.create ~seed () in
  let underlay = Strovl_net.Underlay.create engine (spec ()) in
  let rng = Rng.split_named (Engine.rng engine) "e2e" in
  Strovl_net.Underlay.set_all_segment_loss underlay (fun si _ ->
      Loss.bernoulli (Rng.split_named rng (Printf.sprintf "loss/%d" si)) ~p);
  let link = Strovl_net.Link.create underlay ~a:0 ~b:hops ~isp:0 in
  let collect = Strovl_apps.Collect.create engine () in
  let e2e =
    Strovl.E2e.create engine link
      ~service:(Strovl.E2e.Reliable Strovl.Reliable_link.default_config)
      ~deliver:(Strovl_apps.Collect.receiver collect)
  in
  let sent = ref 0 in
  let rec pump () =
    if !sent < count then begin
      Strovl.E2e.send e2e ();
      incr sent;
      ignore (Engine.schedule engine ~delay:interval pump)
    end
  in
  pump ();
  Engine.run ~until:(interval * count + Time.sec 5) engine;
  (collect, !sent)

let run_overlay ~seed ~p ~count ~in_order =
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        {
          Strovl.Node.default_config with
          Strovl.Node.reliable =
            {
              Strovl.Reliable_link.default_config with
              Strovl.Reliable_link.in_order_forwarding = in_order;
            };
        };
    }
  in
  let sim = Common.build ~config ~seed (spec ()) in
  Common.bernoulli_loss sim ~p;
  Common.flow_stats sim ~src:0 ~dst:hops ~service:Strovl.Packet.Reliable
    ~interval ~count ~drain:(Time.sec 5) ()

let row name p (collect, sent) =
  [
    Printf.sprintf "%.1f%%" (100. *. p);
    name;
    Table.cell_pct (Strovl_apps.Collect.delivery_rate collect ~sent);
    Table.cell_ms (Strovl_apps.Collect.mean_ms collect);
    Table.cell_ms (Strovl_apps.Collect.p99_ms collect);
    Table.cell_ms (Strovl_apps.Collect.max_ms collect);
    Table.cell_ms (Strovl_apps.Collect.jitter_ms collect);
  ]

(* The whole sweep runs under the online invariant auditor (no duplicate
   delivery, loops, or blown recovery budgets slip by unnoticed); when an
   outer auditor is already armed (strovl_mon audit), this is a no-op
   passthrough. *)
let run ?(quick = false) ~seed () =
  Strovl_obs.Audit.checked ~label:"fig3-recovery" @@ fun () ->
  let count = if quick then 400 else 4000 in
  let losses = if quick then [ 0.01 ] else [ 0.001; 0.01; 0.02; 0.05 ] in
  let rows =
    List.concat_map
      (fun p ->
        [
          row "e2e-arq" p (run_e2e ~seed ~p ~count);
          row "hop-by-hop" p (run_overlay ~seed ~p ~count ~in_order:false);
          row "hbh-in-order" p (run_overlay ~seed ~p ~count ~in_order:true);
        ])
      losses
  in
  Table.make ~id:"fig3-recovery"
    ~title:
      "50ms path: end-to-end ARQ vs five 10ms overlay links with hop-by-hop \
       recovery (per-segment Bernoulli loss)"
    ~header:[ "seg-loss"; "scheme"; "delivered"; "mean"; "p99"; "max"; "jitter" ]
    ~notes:
      [
        "paper: e2e recovery >= 150ms total; hop-by-hop ~70ms (Figure 3)";
        "p99/max capture recovered packets once loss*count >= ~100";
        "hbh-in-order ablates out-of-order forwarding (SIII-A smoothing)";
        "mean exceeds the propagation floor because in-order delivery \
         head-of-line-blocks packets behind a recovery; hop-by-hop's \
         faster recovery shrinks exactly that";
      ]
    rows
