(** backpressure: §IV-B IT-Reliable.

    "Reliable messaging maintains storage per source-destination flow (so a
    compromised destination cannot block a source) ... When a node's
    storage for a particular flow fills, it stops accepting new messages
    for that flow, creating backpressure (potentially all the way back to
    the source)."

    SEA runs two IT-Reliable flows: one to a blackholed destination (MIA,
    compromised: swallows data, never takes responsibility) and one to a
    healthy destination (BOS). The blocked flow must fill its own per-flow
    buffers and push refusals back to the sending client, while the healthy
    flow keeps 100% goodput. *)

open Strovl_sim
module Gen = Strovl_topo.Gen

let src = 0 (* SEA *)
let blocked_dst = 8 (* MIA, blackholed *)
let healthy_dst = 11 (* BOS *)

let run ?(quick = false) ~seed () =
  let duration = if quick then Time.sec 5 else Time.sec 15 in
  let config = { Strovl.Net.default_config with Strovl.Net.authenticate = true } in
  let sim = Common.build ~config ~seed (Gen.us_backbone ()) in
  Strovl_attack.Behavior.apply sim.net ~rng:sim.rng ~node:blocked_dst
    Strovl_attack.Behavior.Blackhole;
  let mk_flow dst =
    let tx = Strovl.Client.attach (Strovl.Net.node sim.net src) ~port:(800 + dst) in
    let rx = Strovl.Client.attach (Strovl.Net.node sim.net dst) ~port:900 in
    let collect = Strovl_apps.Collect.create sim.engine () in
    Strovl_apps.Collect.attach collect rx ();
    let sender =
      Strovl.Client.sender tx ~service:Strovl.Packet.It_reliable
        ~dest:(Strovl.Packet.To_node dst) ~dport:900 ()
    in
    let source =
      Strovl_apps.Source.start ~engine:sim.engine ~sender ~interval:(Time.ms 20)
        ~bytes:600 ()
    in
    (dst, collect, source)
  in
  let flows = [ mk_flow blocked_dst; mk_flow healthy_dst ] in
  Common.run_for sim duration;
  let rows =
    List.map
      (fun (dst, collect, source) ->
        let sent = Strovl_apps.Source.sent source in
        let refused = Strovl_apps.Source.refused source in
        [
          (if dst = blocked_dst then "SEA->MIA (dst compromised)"
           else "SEA->BOS (healthy)");
          string_of_int sent;
          string_of_int refused;
          Table.cell_pct (Strovl_apps.Collect.delivery_rate collect ~sent);
          Table.cell_ms (Strovl_apps.Collect.mean_ms collect);
        ])
      flows
  in
  Table.make ~id:"backpressure"
    ~title:
      "IT-Reliable per-flow buffers: a blackholed destination stalls only \
       its own flow"
    ~header:[ "flow"; "accepted"; "refused(bp)"; "delivered"; "mean latency" ]
    ~notes:
      [
        "paper: per source-destination storage means a compromised \
         destination cannot block the source's other flows (SIV-B)";
        "refusals are the backpressure signal reaching the sending client";
        "the blocked flow's accepted-but-undelivered packets sit in \
         per-flow buffers awaiting the (never-coming) ack";
      ]
    rows
