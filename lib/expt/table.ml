type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows = { id; title; header; rows; notes }

let cell_f x = Printf.sprintf "%.2f" x
let cell_pct x = Printf.sprintf "%.1f%%" (100. *. x)
let cell_ms x = Printf.sprintf "%.2fms" x

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

let json_list items = "[" ^ String.concat "," items ^ "]"

let to_json t =
  Printf.sprintf
    "{\"id\":%s,\"title\":%s,\"header\":%s,\"rows\":%s,\"notes\":%s}"
    (json_str t.id) (json_str t.title)
    (json_list (List.map json_str t.header))
    (json_list (List.map (fun row -> json_list (List.map json_str row)) t.rows))
    (json_list (List.map json_str t.notes))

let print ppf t =
  let all = t.header :: t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_row row =
    let cells =
      List.mapi (fun c w -> pad (Option.value ~default:"" (List.nth_opt row c)) w) widths
    in
    String.concat "  " cells
  in
  Format.fprintf ppf "@.== %s: %s ==@." t.id t.title;
  Format.fprintf ppf "%s@." (render_row t.header);
  Format.fprintf ppf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf ppf "%s@." (render_row row)) t.rows;
  List.iter (fun n -> Format.fprintf ppf "  note: %s@." n) t.notes
