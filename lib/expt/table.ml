type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows = { id; title; header; rows; notes }

let cell_f x = Printf.sprintf "%.2f" x
let cell_pct x = Printf.sprintf "%.1f%%" (100. *. x)
let cell_ms x = Printf.sprintf "%.2fms" x

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

let json_list items = "[" ^ String.concat "," items ^ "]"

let to_json t =
  Printf.sprintf
    "{\"id\":%s,\"title\":%s,\"header\":%s,\"rows\":%s,\"notes\":%s}"
    (json_str t.id) (json_str t.title)
    (json_list (List.map json_str t.header))
    (json_list (List.map (fun row -> json_list (List.map json_str row)) t.rows))
    (json_list (List.map json_str t.notes))

let print ppf t =
  let all = t.header :: t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_row row =
    let cells =
      List.mapi (fun c w -> pad (Option.value ~default:"" (List.nth_opt row c)) w) widths
    in
    String.concat "  " cells
  in
  Format.fprintf ppf "@.== %s: %s ==@." t.id t.title;
  Format.fprintf ppf "%s@." (render_row t.header);
  Format.fprintf ppf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf ppf "%s@." (render_row row)) t.rows;
  List.iter (fun n -> Format.fprintf ppf "  note: %s@." n) t.notes

(* ------------------------- seed-sweep aggregation ------------------------- *)

(* A numeric cell as the experiments format them: a float body plus an
   optional unit suffix ([cell_pct] / [cell_ms]). [had_dot] distinguishes
   integer-formatted cells so integral stats can render without a spurious
   ".00". *)
type numcell = { value : float; suffix : string; had_dot : bool }

let parse_cell s =
  let n = String.length s in
  let suffix, body =
    if n > 2 && String.sub s (n - 2) 2 = "ms" then ("ms", String.sub s 0 (n - 2))
    else if n > 1 && s.[n - 1] = '%' then ("%", String.sub s 0 (n - 1))
    else ("", s)
  in
  match float_of_string_opt body with
  | Some value when body <> "" ->
    Some { value; suffix; had_dot = String.contains body '.' }
  | _ -> None

let format_stat ~like v =
  match like.suffix with
  | "%" -> Printf.sprintf "%.1f%%" v
  | "ms" -> Printf.sprintf "%.2fms" v
  | _ ->
    if (not like.had_dot) && Float.is_integer v then
      Printf.sprintf "%d" (int_of_float v)
    else Printf.sprintf "%.2f" v

let aggregate = function
  | [] -> invalid_arg "Table.aggregate: no tables"
  | first :: _ as tables ->
    let n = List.length tables in
    List.iter
      (fun t ->
        if
          t.id <> first.id
          || t.header <> first.header
          || List.length t.rows <> List.length first.rows
        then invalid_arg "Table.aggregate: tables have different shapes")
      tables;
    let nth_row r t = List.nth t.rows r in
    let stat_rows r =
      let rows = List.map (nth_row r) tables in
      let width =
        List.fold_left (fun acc row -> max acc (List.length row)) 0 rows
      in
      let cell reduce =
        List.init width (fun c ->
            let cells =
              List.map
                (fun row -> Option.value ~default:"" (List.nth_opt row c))
                rows
            in
            match List.map parse_cell cells with
            | parsed when List.for_all Option.is_some parsed ->
              let nums = List.filter_map Fun.id parsed in
              let like = List.hd nums in
              let vs = List.map (fun x -> x.value) nums in
              format_stat ~like (reduce vs)
            | _ ->
              (* Non-numeric column (labels): keep only when constant. *)
              let v0 = List.hd cells in
              if List.for_all (( = ) v0) cells then v0 else "…")
      in
      let cell stat reduce = stat :: cell reduce in
      let mean vs = List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs) in
      [
        cell "mean" mean;
        cell "min" (fun vs -> List.fold_left Float.min Float.infinity vs);
        cell "max" (fun vs -> List.fold_left Float.max Float.neg_infinity vs);
      ]
    in
    let rows =
      List.concat (List.init (List.length first.rows) stat_rows)
    in
    {
      first with
      header = "stat" :: first.header;
      rows;
      notes =
        first.notes
        @ [ Printf.sprintf "aggregated over %d runs: per-row mean/min/max" n ];
    }
