(** lossy-link: §II-B link-quality state.

    The connectivity graph shares "the current loss and latency
    characteristics of the overlay links", not just up/down. This
    experiment shows why: a link on the best path degrades to ~15%
    persistent loss but stays alive (hellos keep arriving), so up/down
    routing never reacts. With loss-aware routing the hello-measured loss
    rate is flooded in LSUs and the effective metric steers the flow onto
    a clean, slightly longer path.

    Ablation pair: identical scenario, routing metric = latency-only vs
    loss-inflated. *)

open Strovl_sim
module Gen = Strovl_topo.Gen

let src = 0 (* SEA *)
let dst = 8 (* MIA *)
let loss_rate = 0.15

let run_mode ~seed ~count loss_aware =
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        { Strovl.Node.default_config with Strovl.Node.loss_aware_routing = loss_aware };
    }
  in
  let sim = Common.build ~config ~seed (Gen.us_backbone ()) in
  (* Degrade the middle link of the current best path, on every ISP. *)
  let path = Common.current_path_links sim ~src ~dst in
  let victim = List.nth path (List.length path / 2) in
  let a, b = Strovl_topo.Graph.endpoints (Strovl.Net.graph sim.net) victim in
  let underlay = Strovl.Net.underlay sim.net in
  List.iter
    (fun si ->
      Strovl_net.Underlay.set_segment_loss underlay si
        (Loss.bernoulli
           (Rng.split_named sim.rng (Printf.sprintf "deg/%d" si))
           ~p:loss_rate))
    (Strovl_net.Underlay.segments_between underlay a b);
  (* Let the hello-based loss estimate converge and flood (EWMA over 20-hello
     windows at 100ms). *)
  Common.run_for sim (Time.sec 15);
  let collect, sent =
    Common.flow_stats sim ~src ~dst ~service:Strovl.Packet.Best_effort
      ~interval:(Time.ms 10) ~count ()
  in
  let detoured =
    not (List.mem victim (Common.current_path_links sim ~src ~dst))
  in
  [
    (if loss_aware then "loss-aware metric" else "latency-only metric");
    Table.cell_pct (Strovl_apps.Collect.delivery_rate collect ~sent);
    Table.cell_ms (Strovl_apps.Collect.mean_ms collect);
    (if detoured then "yes" else "no");
  ]

let run ?(quick = false) ~seed () =
  let count = if quick then 300 else 2000 in
  let rows = [ run_mode ~seed ~count false; run_mode ~seed ~count true ] in
  Table.make ~id:"lossy-link"
    ~title:
      "A 15%-lossy (but alive) link on the best SEA->MIA path: routing on \
       latency vs on shared loss+latency state"
    ~header:[ "routing metric"; "delivered"; "mean latency"; "detoured" ]
    ~notes:
      [
        "paper: the connectivity graph shares loss AND latency \
         characteristics (SII-B)";
        "up/down detection never fires (hellos still get through); only \
         the shared loss estimate can trigger the detour";
      ]
    rows
