(** node-capacity: §II-D cost and deployment.

    "Depending on the traffic load, a single computer may not be able to
    provide the necessary processing at line speed. To deal with this
    issue, additional processing resources can be deployed as clusters of
    computers running in the data centers."

    A relay node with a finite CPU (5,000 packets/s per computer) forwards
    an offered load swept past its capacity; its data-center cluster is
    then grown. Goodput should track min(offered, 5000 × cluster) and
    latency should stay flat once the cluster absorbs the load. *)

open Strovl_sim
module Gen = Strovl_topo.Gen

let per_computer_pps = 5_000

let run_case ~seed ~duration ~offered_pps ~cluster =
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        {
          Strovl.Node.default_config with
          Strovl.Node.proc_rate_pps = Some per_computer_pps;
          cluster_size = cluster;
        };
    }
  in
  let sim = Common.build ~config ~seed (Gen.chain ~n:3 ~hop_delay:(Time.ms 10)) in
  let tx = Strovl.Client.attach (Strovl.Net.node sim.net 0) ~port:1 in
  let rx = Strovl.Client.attach (Strovl.Net.node sim.net 2) ~port:2 in
  let collect = Strovl_apps.Collect.create sim.engine () in
  Strovl_apps.Collect.attach collect rx ();
  let sender =
    Strovl.Client.sender tx ~dest:(Strovl.Packet.To_node 2) ~dport:2 ()
  in
  let source =
    Strovl_apps.Source.start ~engine:sim.engine ~sender
      ~interval:(max 1 (1_000_000 / offered_pps))
      ~bytes:400 ()
  in
  Common.run_for sim duration;
  Strovl_apps.Source.stop source;
  Common.run_for sim (Time.sec 1);
  let sent = Strovl_apps.Source.sent source in
  let relay = Strovl.Node.counters (Strovl.Net.node sim.net 1) in
  [
    string_of_int offered_pps;
    string_of_int cluster;
    Table.cell_pct (Strovl_apps.Collect.delivery_rate collect ~sent);
    Table.cell_ms (Strovl_apps.Collect.mean_ms collect);
    string_of_int relay.Strovl.Node.dropped_overload;
  ]

let run ?(quick = false) ~seed () =
  let duration = if quick then Time.sec 2 else Time.sec 5 in
  let cases =
    if quick then [ (4_000, 1); (12_000, 1); (12_000, 4) ]
    else
      [
        (4_000, 1);
        (8_000, 1);
        (8_000, 2);
        (16_000, 1);
        (16_000, 2);
        (16_000, 4);
      ]
  in
  let rows =
    List.map (fun (pps, cluster) -> run_case ~seed ~duration ~offered_pps:pps ~cluster) cases
  in
  Table.make ~id:"node-capacity"
    ~title:
      (Printf.sprintf
         "Relay node at %d pkt/s per computer: offered load vs cluster size \
          (SII-D)"
         per_computer_pps)
    ~header:[ "offered pps"; "cluster"; "delivered"; "mean latency"; "cpu drops" ]
    ~notes:
      [
        "paper: clusters of computers absorb line-speed processing (SII-D)";
        "goodput ~ min(offered, rate x cluster); latency stays flat once \
         the cluster absorbs the load";
      ]
    rows
