(** Shared scenario plumbing for the experiment suite. *)

open Strovl_sim

type sim = {
  engine : Engine.t;
  net : Strovl.Net.t;
  rng : Rng.t;
}

val build :
  ?config:Strovl.Net.config ->
  ?settle:Time.t ->
  seed:int64 ->
  Strovl_topo.Gen.spec ->
  sim
(** Engine + overlay, started and settled. *)

val bernoulli_loss : sim -> p:float -> unit
(** Independent per-packet loss with probability [p] on every fiber
    segment. *)

val gilbert_loss :
  sim -> mean_loss:float -> burst:Time.t -> unit
(** Bursty Gilbert–Elliott loss on every segment: bad-state bursts of mean
    duration [burst] dropping everything, good state clean, with state
    durations tuned so the long-run loss rate is [mean_loss]. *)

val run_for : sim -> Time.t -> unit

val flow_stats :
  sim ->
  src:int ->
  dst:int ->
  service:Strovl.Packet.service ->
  ?route:Strovl.Client.route_pref ->
  ?deadline:Time.t ->
  ?interval:Time.t ->
  ?bytes:int ->
  ?count:int ->
  ?warmup:Time.t ->
  ?drain:Time.t ->
  unit ->
  Strovl_apps.Collect.t * int
(** Runs one src→dst flow to completion and returns (collector, sent).
    [warmup] runs the source that long before resetting the measurement
    window; [drain] extends the run after the source stops (default 2 s). *)

val fail_link_everywhere : sim -> link:int -> unit
(** Fails every fiber segment directly joining the link's endpoints, on all
    ISPs — the overlay link is irrecoverably down until repaired. *)

val fail_link_on_isp : sim -> link:int -> isp:int -> unit

val current_path_links : sim -> src:int -> dst:int -> int list
(** Overlay links on the current min-latency route (node 0's view). *)
