(** reroute-bgp: §II-A.

    "The ability to route around problems at a sub-second scale ... in
    contrast to the 40 seconds to minutes that BGP may take to converge."

    A continuous SEA→MIA flow; at a known instant a fiber segment on the
    path fails. Three recoveries are measured by the longest delivery gap:

    - overlay, single-ISP fault: hellos time out (~350 ms), the link is
      advertised down (LSU flood) while multihoming rotates the link to
      another provider (§II-A);
    - overlay, all-ISP link fault: same detection, repaired purely by
      rerouting around the dead link;
    - direct Internet path: packets blackhole until the BGP convergence
      timer (40 s) lets the ISP's routing find the way around. *)

open Strovl_sim
module Gen = Strovl_topo.Gen

let src = 0 (* SEA *)
let dst = 8 (* MIA *)
let interval = Time.ms 5

let overlay_scenario ?(hello_timeout = Strovl.Node.default_config.Strovl.Node.hello_timeout)
    ~seed ~all_isps () =
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        { Strovl.Node.default_config with Strovl.Node.hello_timeout };
    }
  in
  let sim = Common.build ~config ~seed (Gen.us_backbone ()) in
  let path = Common.current_path_links sim ~src ~dst in
  let victim = List.nth path (List.length path / 2) in
  let tx = Strovl.Client.attach (Strovl.Net.node sim.net src) ~port:100 in
  let rx = Strovl.Client.attach (Strovl.Net.node sim.net dst) ~port:200 in
  let collect = Strovl_apps.Collect.create sim.engine () in
  Strovl_apps.Collect.attach collect rx ();
  let sender =
    Strovl.Client.sender tx ~service:Strovl.Packet.Best_effort
      ~dest:(Strovl.Packet.To_node dst) ~dport:200 ()
  in
  let _source =
    Strovl_apps.Source.start ~engine:sim.engine ~sender ~interval ~bytes:400 ()
  in
  Common.run_for sim (Time.sec 5);
  Strovl_apps.Collect.reset_window collect;
  if all_isps then Common.fail_link_everywhere sim ~link:victim
  else begin
    let isp = Strovl_net.Link.current_isp (Strovl.Net.net_link sim.net victim) in
    Common.fail_link_on_isp sim ~link:victim ~isp
  end;
  Common.run_for sim (Time.sec 10);
  Strovl_apps.Collect.max_gap_ms collect

let bgp_scenario ~seed ~convergence =
  let engine = Engine.create ~seed () in
  let spec = Gen.us_backbone () in
  let underlay = Strovl_net.Underlay.create ~convergence engine spec in
  let link = Strovl_net.Link.create underlay ~a:src ~b:dst ~isp:0 in
  let collect = Strovl_apps.Collect.create engine () in
  let seq = ref 0 in
  let flow =
    { Strovl.Packet.f_src = src; f_sport = 0; f_dest = Strovl.Packet.To_node dst; f_dport = 0 }
  in
  let rec pump () =
    let pkt =
      Strovl.Packet.make ~flow ~routing:Strovl.Packet.Link_state
        ~service:Strovl.Packet.Best_effort ~seq:!seq ~sent_at:(Engine.now engine)
        ~bytes:400 ()
    in
    incr seq;
    Strovl_net.Link.send link ~src ~bytes:440 ~deliver:(fun () ->
        Strovl_apps.Collect.receiver collect pkt);
    ignore (Engine.schedule engine ~delay:interval pump)
  in
  pump ();
  Engine.run ~until:(Time.sec 5) engine;
  Strovl_apps.Collect.reset_window collect;
  (* Fail a mid-path segment actually used by the routed Internet path. *)
  (match Strovl_net.Underlay.routed_path underlay ~isp:0 ~src ~dst with
  | Some segs when segs <> [] ->
    Strovl_net.Underlay.fail_segment underlay (List.nth segs (List.length segs / 2))
  | _ -> ());
  Engine.run ~until:(Time.add (Time.sec 10) convergence) engine;
  Strovl_apps.Collect.max_gap_ms collect

(* Audited end to end: the reroute-budget invariant is this experiment's
   own claim (link-down LSUs propagate overlay-wide within the budget). *)
let run ?(quick = false) ~seed () =
  Strovl_obs.Audit.checked ~label:"reroute-bgp" @@ fun () ->
  let convergence = if quick then Time.sec 8 else Time.sec 40 in
  (* Ablation: the detection knob behind "sub-second" — a faster hello
     timeout buys a faster reroute, bounded below by the flood+recompute. *)
  let timeout_rows =
    if quick then []
    else
      List.map
        (fun ht ->
          [
            Printf.sprintf "overlay reroute (hello timeout %dms)" (ht / 1000);
            Table.cell_ms (overlay_scenario ~hello_timeout:ht ~seed ~all_isps:true ());
          ])
        [ Time.ms 150; Time.ms 700 ]
  in
  let rows =
    [
      [
        "overlay multihoming (1-ISP fault)";
        Table.cell_ms (overlay_scenario ~seed ~all_isps:false ());
      ];
      [
        "overlay reroute (all-ISP link fault)";
        Table.cell_ms (overlay_scenario ~seed ~all_isps:true ());
      ];
    ]
    @ timeout_rows
    @ [
        [
          Printf.sprintf "direct IP (BGP convergence %ds)" (convergence / 1_000_000);
          Table.cell_ms (bgp_scenario ~seed ~convergence);
        ];
      ]
  in
  Table.make ~id:"reroute-bgp"
    ~title:"Service interruption after a fiber-segment failure (SEA->MIA flow)"
    ~header:[ "recovery mechanism"; "interruption" ]
    ~notes:
      [
        "paper: overlay reroutes sub-second; BGP takes 40s to minutes (SII-A)";
        "overlay detection = hello timeout (default 350ms) + LSU flood";
        "the ablation rows sweep the hello timeout: reroute time tracks \
         detection, not routing computation";
      ]
    rows
