(** fairness: §IV-B resource-consumption attack.

    Three correct sources (SEA, SFO, LAX) send modest It-Priority telemetry
    to MIA while a compromised source at DEN floods the shared bottleneck
    at up to line rate. With the baseline FIFO forwarding the flood drowns
    the correct traffic; with the paper's per-source buffers and
    round-robin scheduling "a compromised source cannot consume the
    resources of other sources to prevent their messages from being
    forwarded". Links are 10 Mbit/s so the contention is real. *)

open Strovl_sim
module Gen = Strovl_topo.Gen

let correct_sources = [ 0; 1; 2 ] (* SEA SFO LAX *)
let attacker = 4 (* DEN *)
let sink = 8 (* MIA *)

let config ~mode =
  {
    Strovl.Net.default_config with
    Strovl.Net.link =
      {
        Strovl_net.Link.default_config with
        Strovl_net.Link.bandwidth_bps = 10_000_000;
      };
    node =
      {
        Strovl.Node.default_config with
        Strovl.Node.it_priority =
          { Strovl.It_priority.default_config with Strovl.It_priority.mode };
      };
  }

let run_case ~seed ~duration ~attack_pps mode_name mode =
  let sim = Common.build ~config:(config ~mode) ~seed (Gen.us_backbone ()) in
  (* Correct sources: 100 pps x 400 B = 320 kbit/s each. *)
  let flows =
    List.map
      (fun s ->
        let tx = Strovl.Client.attach (Strovl.Net.node sim.net s) ~port:600 in
        let rx =
          Strovl.Client.attach (Strovl.Net.node sim.net sink) ~port:(700 + s)
        in
        let collect = Strovl_apps.Collect.create sim.engine () in
        Strovl_apps.Collect.attach collect rx ();
        let sender =
          Strovl.Client.sender tx
            ~service:(Strovl.Packet.It_priority 1)
            ~dest:(Strovl.Packet.To_node sink) ~dport:(700 + s) ()
        in
        let src =
          Strovl_apps.Source.start ~engine:sim.engine ~sender
            ~interval:(Time.ms 10) ~bytes:400 ()
        in
        (s, collect, src))
      correct_sources
  in
  if attack_pps > 0 then
    ignore
      (Strovl_attack.Scenario.flooder ~net:sim.net ~node:attacker ~port:601
         ~dest:(Strovl.Packet.To_node sink) ~dport:999
         ~service:(Strovl.Packet.It_priority 1) ~rate_pps:attack_pps
         ~bytes:1200);
  Common.run_for sim duration;
  List.map
    (fun (s, collect, src) ->
      let sent = Strovl_apps.Source.sent src in
      [
        string_of_int attack_pps;
        mode_name;
        Printf.sprintf "node%d" s;
        Table.cell_pct (Strovl_apps.Collect.delivery_rate collect ~sent);
        Table.cell_ms (Strovl_apps.Collect.mean_ms collect);
      ])
    flows

let run ?(quick = false) ~seed () =
  let duration = if quick then Time.sec 3 else Time.sec 10 in
  let rates = if quick then [ 0; 5000 ] else [ 0; 1000; 5000; 20000 ] in
  let rows =
    List.concat_map
      (fun pps ->
        run_case ~seed ~duration ~attack_pps:pps "fifo" Strovl.It_priority.Fifo
        @ run_case ~seed ~duration ~attack_pps:pps "round-robin"
            Strovl.It_priority.Round_robin)
      rates
  in
  Table.make ~id:"fairness"
    ~title:
      "Correct-source goodput under a flooding compromised source (10 \
       Mbit/s links, IT-Priority)"
    ~header:[ "attack pps"; "scheduler"; "source"; "delivered"; "mean latency" ]
    ~notes:
      [
        "paper: fair buffer allocation + round robin stop resource \
         consumption attacks (SIV-B)";
        "attacker floods 1200B packets from DEN toward MIA; correct \
         sources need 320 kbit/s each";
      ]
    rows
