(** fig4-nmstrikes: Figure 4 / §IV-A.

    Live TV: one-way deadline 200 ms across a 40 ms continental path, under
    *bursty* (Gilbert–Elliott) loss — the regime NM-Strikes is built for.
    Compares best-effort, a single-strike protocol (N=1, M=1: one request,
    one retransmission — the VoIP predecessor [6,7]), naive NM with
    back-to-back spacing, and full NM-Strikes (N=3, M=3, spread).

    Reported: on-time fraction (within the 200 ms deadline) and data-wire
    overhead, to check the paper's 1+Mp cost formula. *)

open Strovl_sim
module Gen = Strovl_topo.Gen

let path_delay = Time.ms 40
let deadline = Time.ms 200
let budget = Time.ms 160 (* 200 - 40 (SIV-A) *)
let interval = Time.us 1316 (* ~8 Mbit/s of 1316B packets *)

type variant = { name : string; service : Strovl.E2e.service }

let rt ?rs ?ms n m =
  {
    Strovl.Realtime_link.n_requests = n;
    m_retrans = m;
    budget;
    history = 65536;
    request_spacing = rs;
    retrans_spacing = ms;
  }

let variants =
  [
    { name = "best-effort"; service = Strovl.E2e.Best_effort };
    {
      (* Proactive redundancy (OverQoS-style, SVI): zero recovery RTT but a
         fixed r/k overhead, and bursts longer than r per block defeat it. *)
      name = "fec(8,2)";
      service =
        Strovl.E2e.Fec { Strovl.Fec_link.k = 8; r = 2; flush = Time.ms 20 };
    };
    { name = "1-strike"; service = Strovl.E2e.Realtime (rt 1 1) };
    {
      name = "nm-back2back";
      service =
        Strovl.E2e.Realtime (rt ~rs:(Time.ms 2) ~ms:(Time.ms 1) 3 3);
    };
    { name = "nm-strikes(3,3)"; service = Strovl.E2e.Realtime (rt 3 3) };
  ]

let run_variant ~seed ~mean_loss ~burst ~count v =
  let engine = Engine.create ~seed () in
  let spec = Gen.chain ~n:2 ~hop_delay:path_delay in
  let underlay = Strovl_net.Underlay.create engine spec in
  let rng = Rng.split_named (Engine.rng engine) "nm" in
  (* Bad state drops 90% of packets: enough get through that losses are
     *detected inside the burst*, but a recovery attempt launched
     immediately almost certainly falls inside the same correlated-loss
     window and dies — the situation NM-Strikes' spacing is designed
     around. Long-run loss rate = bad_fraction x 0.9 = mean_loss. *)
  let p_bad = 0.9 in
  let bad = float_of_int (burst : Time.t) in
  let good = bad *. ((p_bad /. mean_loss) -. 1.) in
  Strovl_net.Underlay.set_all_segment_loss underlay (fun si _ ->
      Loss.gilbert_elliott
        (Rng.split_named rng (Printf.sprintf "ge/%d" si))
        ~p_good_loss:0. ~p_bad_loss:p_bad ~mean_good:(int_of_float good)
        ~mean_bad:(int_of_float bad));
  let link = Strovl_net.Link.create underlay ~a:0 ~b:1 ~isp:0 in
  let collect = Strovl_apps.Collect.create ~deadline engine () in
  let e2e =
    Strovl.E2e.create engine link ~service:v.service
      ~deliver:(Strovl_apps.Collect.receiver collect)
  in
  let sent = ref 0 in
  let rec pump () =
    if !sent < count then begin
      Strovl.E2e.send e2e ();
      incr sent;
      ignore (Engine.schedule engine ~delay:interval pump)
    end
  in
  pump ();
  Engine.run ~until:(interval * count + Time.sec 2) engine;
  let on_time = Strovl_apps.Collect.on_time_fraction collect ~sent:!sent in
  let overhead =
    1.
    +. (float_of_int (Strovl.E2e.retransmissions e2e) /. float_of_int !sent)
  in
  (on_time, overhead)

(* The same NM-Strikes machinery as an overlay *link* protocol (Figure 2):
   five 8 ms links each running per-hop recovery, under the same end-to-end
   loss budget (per-segment rate = mean/5). Detection and recovery both
   happen at the scale of one short link. *)
let run_overlay_hbh ~seed ~mean_loss ~burst ~count =
  let sim = Common.build ~seed (Gen.chain ~n:6 ~hop_delay:(Time.of_ms_float 8.)) in
  let p_bad = 0.9 in
  let seg_loss = mean_loss /. 5. in
  let bad = float_of_int (burst : Time.t) in
  let good = bad *. ((p_bad /. seg_loss) -. 1.) in
  Strovl_net.Underlay.set_all_segment_loss (Strovl.Net.underlay sim.Common.net)
    (fun si _ ->
      Loss.gilbert_elliott
        (Rng.split_named sim.Common.rng (Printf.sprintf "hbh/%d" si))
        ~p_good_loss:0. ~p_bad_loss:p_bad ~mean_good:(int_of_float good)
        ~mean_bad:(int_of_float bad));
  let collect, sent =
    Common.flow_stats sim ~src:0 ~dst:5
      ~service:(Strovl.Packet.Realtime { deadline; n_requests = 3; m_retrans = 3 })
      ~deadline ~interval ~bytes:1316 ~count ()
  in
  Strovl_apps.Collect.on_time_fraction collect ~sent

let run ?(quick = false) ~seed () =
  (* Burst durations are chosen in the regime the protocol targets: longer
     than the path RTT (so an immediate retry lands inside the burst) but
     shorter than the 160 ms budget (so spaced retries can escape it). *)
  let count = if quick then 8_000 else 60_000 in
  let conditions =
    if quick then [ (0.02, Time.ms 100) ]
    else
      [ (0.01, Time.ms 60); (0.01, Time.ms 100); (0.025, Time.ms 100); (0.05, Time.ms 100) ]
  in
  let rows =
    List.concat_map
      (fun (mean_loss, burst) ->
        let hbh_row =
          let on_time = run_overlay_hbh ~seed ~mean_loss ~burst ~count in
          [
            Printf.sprintf "%.1f%%/%dms" (100. *. mean_loss) (burst / 1000);
            "nm-hbh-overlay";
            Table.cell_pct on_time;
            "-";
            "-";
          ]
        in
        (List.map
          (fun v ->
            let on_time, overhead =
              run_variant ~seed ~mean_loss ~burst ~count v
            in
            let predicted =
              match v.service with
              | Strovl.E2e.Realtime cfg ->
                1. +. (float_of_int cfg.Strovl.Realtime_link.m_retrans *. mean_loss)
              | Strovl.E2e.Fec cfg ->
                1.
                +. (float_of_int cfg.Strovl.Fec_link.r
                   /. float_of_int cfg.Strovl.Fec_link.k)
              | Strovl.E2e.Best_effort | Strovl.E2e.Reliable _ -> 1.
            in
            [
              Printf.sprintf "%.1f%%/%dms" (100. *. mean_loss)
                (burst / 1000);
              v.name;
              Table.cell_pct on_time;
              Table.cell_f overhead;
              Table.cell_f predicted;
            ])
          variants)
        @ [ hbh_row ])
      conditions
  in
  Table.make ~id:"fig4-nmstrikes"
    ~title:
      "Live TV over a 40ms path, 200ms one-way deadline, bursty \
       (Gilbert-Elliott) loss"
    ~header:[ "loss/burst"; "protocol"; "on-time"; "overhead"; "predicted" ]
    ~notes:
      [
        "paper: NM-Strikes guarantees timeliness at cost ~1+Mp (SIV-A)";
        "spread requests dodge the loss-correlation window; back-to-back \
         requests die inside the same burst";
        "overhead counts data retransmissions / parity (requests are ~8B); \
         predicted = 1+Mp for NM, 1+r/k for FEC";
        "FEC pays its overhead at zero loss and collapses when a burst \
         exceeds r symbols per block - the reactive/proactive tradeoff";
        "nm-hbh-overlay runs the same protocol per 8ms overlay link; at a \
         200ms deadline both variants fit, and the hop-by-hop advantage \
         appears at tight deadlines (see remote-manip) and for jitter \
         (see fig3)";
      ]
    rows
