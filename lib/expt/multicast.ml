(** multicast: §III-B.

    Overlay multicast "constructs the most efficient multicast tree" while
    only receivers join and each endpoint makes a single connection. The
    baseline is what an application must do on the multicast-less Internet:
    one unicast stream per destination. Measured: data transmissions placed
    on the wire per application packet (counted at the nodes), against the
    analytic tree/unicast link costs. *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module Graph = Strovl_topo.Graph
module Mcast = Strovl_topo.Mcast

let source = 0 (* SEA *)

(* Receivers in a deterministic spread order across the US topology. *)
let member_order = [ 8; 11; 2; 6; 9; 4; 3; 7; 10; 5; 1 ]

let total_forwarded net =
  let acc = ref 0 in
  for i = 0 to Strovl.Net.nnodes net - 1 do
    acc := !acc + (Strovl.Node.counters (Strovl.Net.node net i)).Strovl.Node.forwarded
  done;
  !acc

let run_size ~seed ~count size =
  let sim = Common.build ~seed (Gen.us_backbone ()) in
  let members = List.filteri (fun i _ -> i < size) member_order in
  let group = 42 in
  let rxs =
    List.map
      (fun m ->
        let c = Strovl.Client.attach (Strovl.Net.node sim.net m) ~port:300 in
        Strovl.Client.join c ~group;
        let got = ref 0 in
        Strovl.Client.set_receiver c (fun _ -> incr got);
        (c, got))
      members
  in
  Common.run_for sim (Time.sec 1);
  let tx = Strovl.Client.attach (Strovl.Net.node sim.net source) ~port:301 in
  let sender =
    Strovl.Client.sender tx ~dest:(Strovl.Packet.To_group group) ~dport:300 ()
  in
  let before = total_forwarded sim.net in
  for _ = 1 to count do
    ignore (Strovl.Client.send sender ~bytes:1316 ());
    Common.run_for sim (Time.ms 2)
  done;
  Common.run_for sim (Time.sec 1);
  let tree_tx_per_pkt =
    float_of_int (total_forwarded sim.net - before) /. float_of_int count
  in
  let delivered =
    List.fold_left (fun acc (_, got) -> acc + !got) 0 rxs
  in
  (* Analytic costs on the same (healthy) topology. *)
  let g = Strovl.Net.graph sim.net in
  let weight l = Strovl.Net.link_metric sim.net l in
  let tree = Mcast.shortest_path_tree ~weight g ~source ~members in
  let unicast = Mcast.unicast_link_cost ~weight g ~source ~members in
  [
    string_of_int size;
    Table.cell_f tree_tx_per_pkt;
    string_of_int (Mcast.link_cost tree);
    string_of_int unicast;
    Table.cell_f (float_of_int unicast /. float_of_int (max 1 (Mcast.link_cost tree)));
    Table.cell_pct (Stats.ratio delivered (count * size));
  ]

let run ?(quick = false) ~seed () =
  let count = if quick then 50 else 300 in
  let sizes = if quick then [ 4 ] else [ 2; 4; 6; 8; 11 ] in
  let rows = List.map (run_size ~seed ~count) sizes in
  Table.make ~id:"multicast"
    ~title:
      "Overlay multicast tree vs per-receiver unicast (SEA source, US \
       backbone)"
    ~header:
      [
        "receivers";
        "tx/pkt (measured)";
        "tree links";
        "unicast links";
        "savings x";
        "delivered";
      ]
    ~notes:
      [
        "paper: overlay builds the most efficient tree to nodes with \
         members (SIII-B)";
        "measured tx/pkt should match the analytic tree size";
      ]
    rows
