(** compound-flow: §V-C in-network transformation.

    A live video feed from SEA is sent to a transcoding *anycast* group;
    facilities at CHI and ATL join it. The chosen facility transcodes
    (5 ms, halving the bitrate) and re-originates into the delivery
    multicast group that NYC and MIA have joined. Mid-run the active
    facility fails — gracefully (leaves the group) or by crashing — and
    the flow must re-select a facility: "network conditions and failures
    may lead to rerouting that can include the selection of a transcoding
    facility at a different location".

    Measured at the receivers: delivery rate, mean glass-to-glass latency
    (source timestamp through transcoding), and the failover gap. *)

open Strovl_sim
module Gen = Strovl_topo.Gen

let source = 0 (* SEA *)
let facilities = [ 6; 7 ] (* CHI, ATL *)
let receivers = [ 10; 8 ] (* NYC, MIA *)
let ingest_group = 50
let out_group = 51

let run_case ~seed ~duration ~crash =
  let sim = Common.build ~seed (Gen.us_backbone ()) in
  let trans =
    List.map
      (fun node ->
        Strovl_apps.Transcode.create ~net:sim.net ~node ~port:70 ~ingest_group
          ~out_group ())
      facilities
  in
  let rxs =
    List.map
      (fun node ->
        let c = Strovl.Client.attach (Strovl.Net.node sim.net node) ~port:71 in
        Strovl.Client.join c ~group:out_group;
        let collect = Strovl_apps.Collect.create sim.engine () in
        Strovl_apps.Collect.attach collect c ();
        (node, collect))
      receivers
  in
  Common.run_for sim (Time.sec 1);
  let tx = Strovl.Client.attach (Strovl.Net.node sim.net source) ~port:72 in
  let sender =
    Strovl.Client.sender tx ~dest:(Strovl.Packet.Any_of_group ingest_group)
      ~dport:70 ()
  in
  let src =
    Strovl_apps.Source.video ~engine:sim.engine ~sender ~mbps:4.0 ()
  in
  Common.run_for sim (duration / 2);
  (* Fail whichever facility has been doing the work. *)
  let active =
    List.fold_left
      (fun best f ->
        match best with
        | Some b
          when Strovl_apps.Transcode.processed b
               >= Strovl_apps.Transcode.processed f ->
          best
        | _ -> Some f)
      None trans
  in
  (match active with
  | Some f ->
    if crash then
      Strovl_attack.Behavior.apply sim.net ~rng:sim.rng
        ~node:(Strovl_apps.Transcode.node_id f)
        Strovl_attack.Behavior.Crash
    else Strovl_apps.Transcode.shutdown f
  | None -> ());
  Common.run_for sim (duration / 2);
  Strovl_apps.Source.stop src;
  Common.run_for sim (Time.sec 1);
  let sent = Strovl_apps.Source.sent src in
  let processed = List.map Strovl_apps.Transcode.processed trans in
  List.map
    (fun (node, collect) ->
      [
        (if crash then "facility crash" else "graceful shutdown");
        Printf.sprintf "rx@%d" node;
        Table.cell_pct (Strovl_apps.Collect.delivery_rate collect ~sent);
        Table.cell_ms (Strovl_apps.Collect.mean_ms collect);
        Table.cell_ms (Strovl_apps.Collect.max_gap_ms collect);
        String.concat "/" (List.map string_of_int processed);
      ])
    rxs

let run ?(quick = false) ~seed () =
  let duration = if quick then Time.sec 4 else Time.sec 10 in
  let rows =
    run_case ~seed ~duration ~crash:false @ run_case ~seed ~duration ~crash:true
  in
  Table.make ~id:"compound-flow"
    ~title:
      "Compound flow: SEA video -> anycast transcoder (CHI/ATL) -> multicast \
       delivery (NYC, MIA) with mid-run facility failover"
    ~header:
      [ "scenario"; "receiver"; "delivered"; "mean g2g"; "max gap"; "processed" ]
    ~notes:
      [
        "paper: failures may reroute the flow to a transcoding facility at \
         a different location (SV-C)";
        "graceful failover = membership flood (~10s of ms gap); crash \
         failover = hello timeout (~400ms gap)";
        "latency includes the 5ms transcode; 'processed' = packets per \
         facility, showing the switch";
      ]
    rows
