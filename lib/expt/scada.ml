(** scada-timeliness: §V-B monitoring and control of critical infrastructure.

    SCADA requires a control command to be delivered and executed within
    100-200 ms of the monitoring data that triggered it, *including* an
    intrusion-tolerant agreement among control replicas; and "the
    cryptography required to support intrusion tolerance today becomes a
    barrier to timely message delivery as the size of the system grows".

    Model: field devices at LAX report (IT-Priority) to a control site at
    CHI; four co-located replicas run a 3-round authenticated agreement
    (1 ms LAN per round); the command returns (IT-Reliable) to LAX. Network
    legs are *measured* on the overlay; cryptographic time is charged per
    the cost model: every replica verifies every device report, plus the
    agreement's own signatures. Compared: RSA-style signatures vs
    MAC-based authentication. *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module Auth = Strovl_crypto.Auth

let field = 2 (* LAX *)
let control = 6 (* CHI *)
let rounds = 3
let replicas = 4
let lan_round = Time.ms 1

let measured_legs ~seed ~count =
  let config = { Strovl.Net.default_config with Strovl.Net.authenticate = true } in
  let sim = Common.build ~config ~seed (Gen.us_backbone ()) in
  let mon, _ =
    Common.flow_stats sim ~src:field ~dst:control
      ~service:(Strovl.Packet.It_priority 2)
      ~interval:(Time.ms 5) ~bytes:200 ~count ()
  in
  let cmd, _ =
    Common.flow_stats sim ~src:control ~dst:field
      ~service:Strovl.Packet.It_reliable ~interval:(Time.ms 5) ~bytes:200
      ~count ()
  in
  (Strovl_apps.Collect.mean_ms mon, Strovl_apps.Collect.mean_ms cmd)

let crypto_ms ~n ~verify ~sign =
  (* Ingest: each replica verifies every device report for the decision
     window; agreement: per round each replica signs once and verifies the
     other replicas' messages. *)
  let ingest = float_of_int (n * verify) in
  let agreement =
    float_of_int (rounds * ((replicas * sign) + (replicas * (replicas - 1) * verify)))
  in
  (ingest +. agreement) /. 1000.

let run ?(quick = false) ~seed () =
  let count = if quick then 50 else 200 in
  let mon_ms, cmd_ms = measured_legs ~seed ~count in
  let lan_ms = Time.to_ms_float (rounds * lan_round) in
  let sizes = if quick then [ 100; 1000 ] else [ 10; 100; 1000; 3000; 10000 ] in
  let mk name ~verify ~sign n =
    let total = mon_ms +. cmd_ms +. lan_ms +. crypto_ms ~n ~verify ~sign in
    [
      string_of_int n;
      name;
      Table.cell_ms total;
      (if total <= 200. then "yes" else "NO");
    ]
  in
  let rows =
    List.concat_map
      (fun n ->
        [
          mk "rsa-style" ~verify:Auth.verify_sign_cost ~sign:Auth.sign_cost n;
          mk "mac-based" ~verify:Auth.mac_cost ~sign:Auth.mac_cost n;
        ])
      sizes
  in
  Table.make ~id:"scada-timeliness"
    ~title:
      (Printf.sprintf
         "SCADA command round: measured legs mon=%.1fms cmd=%.1fms + 3-round \
          agreement + crypto vs #devices"
         mon_ms cmd_ms)
    ~header:[ "devices"; "auth"; "total"; "<=200ms" ]
    ~notes:
      [
        "paper: crypto cost x system size becomes the timeliness barrier \
         (SV-B)";
        "signature verify 20us, sign 120us; MAC 1us (Auth cost model)";
        "network legs measured on the authenticated overlay (SEA topology)";
      ]
    rows
