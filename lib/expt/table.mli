(** Plain-text result tables: the harness's equivalent of the paper's
    figures. Each experiment returns one table; the bench binary prints them
    all. *)

type t = {
  id : string;  (** experiment id from DESIGN.md, e.g. "fig3-recovery" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** expectations from the paper, caveats *)
}

val make :
  id:string ->
  title:string ->
  header:string list ->
  ?notes:string list ->
  string list list ->
  t

val print : Format.formatter -> t -> unit
(** Aligned ASCII rendering with the id, title and notes. *)

val to_json : t -> string
(** The table as one JSON object ([id], [title], [header], [rows],
    [notes]) for mechanical consumers. *)

val cell_f : float -> string
(** Formats a float with 2 decimals. *)

val cell_pct : float -> string
(** Formats a [0,1] fraction as a percentage. *)

val cell_ms : float -> string

val aggregate : t list -> t
(** [aggregate tables] folds same-shaped tables (one per seed of a sweep)
    into a summary: every row becomes three rows — per-column mean, min
    and max over the inputs, with unit suffixes ([%], [ms]) preserved.
    Non-numeric columns keep their (constant) value, the first one tagged
    with the statistic's name. Raises [Invalid_argument] on an empty list
    or mismatched shapes. *)
