open Strovl_sim
module Gen = Strovl_topo.Gen
module Graph = Strovl_topo.Graph
module Underlay = Strovl_net.Underlay

type sim = { engine : Engine.t; net : Strovl.Net.t; rng : Rng.t }

let build ?config ?(settle = Time.sec 2) ~seed spec =
  let engine = Engine.create ~seed () in
  let net = Strovl.Net.create ?config engine spec in
  Strovl.Net.start net;
  Strovl.Net.settle ~duration:settle net;
  { engine; net; rng = Rng.split_named (Engine.rng engine) "expt" }

let bernoulli_loss sim ~p =
  Underlay.set_all_segment_loss (Strovl.Net.underlay sim.net) (fun si _ ->
      Loss.bernoulli
        (Rng.split_named sim.rng (Printf.sprintf "loss/%d" si))
        ~p)

let gilbert_loss sim ~mean_loss ~burst =
  (* Bad state drops everything for ~[burst]; good-state duration chosen so
     that burst/(burst+good) = mean_loss. *)
  if mean_loss <= 0. || mean_loss >= 1. then invalid_arg "gilbert_loss";
  let bad = float_of_int burst in
  let good = bad *. ((1. /. mean_loss) -. 1.) in
  Underlay.set_all_segment_loss (Strovl.Net.underlay sim.net) (fun si _ ->
      Loss.gilbert_elliott
        (Rng.split_named sim.rng (Printf.sprintf "ge/%d" si))
        ~p_good_loss:0. ~p_bad_loss:1. ~mean_good:(int_of_float good)
        ~mean_bad:(int_of_float bad))

let run_for sim d = Engine.run ~until:(Time.add (Engine.now sim.engine) d) sim.engine

let flow_stats sim ~src ~dst ~service ?(route = Strovl.Client.Table) ?deadline
    ?(interval = Time.ms 10) ?(bytes = 1200) ?(count = 500)
    ?(warmup = Time.zero) ?(drain = Time.sec 2) () =
  let sport = 4000 + src and dport = 5000 + dst in
  let tx = Strovl.Client.attach (Strovl.Net.node sim.net src) ~port:sport in
  let rx = Strovl.Client.attach (Strovl.Net.node sim.net dst) ~port:dport in
  let collect = Strovl_apps.Collect.create ?deadline sim.engine () in
  Strovl_apps.Collect.attach collect rx ();
  let sender =
    Strovl.Client.sender tx ~service ~route ~dest:(Strovl.Packet.To_node dst)
      ~dport ()
  in
  let warmup_count =
    if warmup = Time.zero then 0 else max 0 (warmup / interval)
  in
  (* Note: the source emits its first packet synchronously inside [start],
     so the pre-window count must be snapshot via the warmup branch only. *)
  let source =
    Strovl_apps.Source.start ~engine:sim.engine ~sender ~interval ~bytes
      ~count:(count + warmup_count) ()
  in
  let sent_before =
    if warmup_count > 0 then begin
      run_for sim warmup;
      Strovl_apps.Collect.reset_window collect;
      Strovl_apps.Source.sent source
    end
    else 0
  in
  run_for sim (interval * count);
  run_for sim drain;
  let sent = Strovl_apps.Source.sent source - sent_before in
  Strovl.Client.detach tx;
  Strovl.Client.detach rx;
  (collect, sent)

let fail_link_on_isp sim ~link ~isp =
  let underlay = Strovl.Net.underlay sim.net in
  let spec = Strovl.Net.spec sim.net in
  let a, b = Graph.endpoints (Strovl.Net.graph sim.net) link in
  List.iter
    (fun si ->
      if spec.Gen.segments.(si).Gen.seg_isp = isp then
        Underlay.fail_segment underlay si)
    (Underlay.segments_between underlay a b)

let fail_link_everywhere sim ~link =
  let underlay = Strovl.Net.underlay sim.net in
  let a, b = Graph.endpoints (Strovl.Net.graph sim.net) link in
  List.iter
    (fun si -> Underlay.fail_segment underlay si)
    (Underlay.segments_between underlay a b)

let current_path_links sim ~src ~dst =
  let node = Strovl.Net.node sim.net src in
  Option.value ~default:[] (Strovl.Route.path (Strovl.Node.route node) ~dst)
