(** onnet-offnet: §II-A multihoming.

    "Multihoming ... allows most traffic to avoid BGP routing by traversing
    only on-net links (i.e. overlay links that use the same provider at
    both endpoints), which generally results in better performance
    (although any combination of the available providers may be used, if
    desired)."

    An off-net overlay link must detour through a peering site where both
    providers have presence and cross the (congested) public peering. The
    experiment runs the same SEA→MIA flow with every link on-net vs every
    link off-net (provider 0 at one end, provider 1 at the other), plus a
    static analysis of per-link delay inflation. *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module Graph = Strovl_topo.Graph
module Link = Strovl_net.Link
module Underlay = Strovl_net.Underlay

let src = 0 (* SEA *)
let dst = 8 (* MIA *)

let force_offnet sim =
  let g = Strovl.Net.graph sim.Common.net in
  let ok = ref 0 in
  for l = 0 to Graph.link_count g - 1 do
    let link = Strovl.Net.net_link sim.Common.net l in
    (* Only force links that CAN go off-net (both ISPs present at both
       ends). *)
    let a, b = Graph.endpoints g l in
    let u = Strovl.Net.underlay sim.Common.net in
    if
      Underlay.isp_present u ~isp:0 a
      && Underlay.isp_present u ~isp:1 b
      && Underlay.path_delay_pair u ~isp_src:0 ~isp_dst:1 ~src:a ~dst:b <> None
    then begin
      Link.set_isp_pair link 0 1;
      incr ok
    end
  done;
  !ok

let run_mode ~seed ~count offnet =
  let sim = Common.build ~seed (Gen.us_backbone ()) in
  if offnet then ignore (force_offnet sim);
  (* Let hello RTTs re-measure the (longer) off-net links so routing uses
     honest metrics. *)
  Common.run_for sim (Time.sec 3);
  let collect, sent =
    Common.flow_stats sim ~src ~dst ~service:Strovl.Packet.Best_effort
      ~interval:(Time.ms 10) ~count ()
  in
  [
    (if offnet then "all links off-net (ISP0|ISP1)" else "all links on-net");
    Table.cell_pct (Strovl_apps.Collect.delivery_rate collect ~sent);
    Table.cell_ms (Strovl_apps.Collect.mean_ms collect);
    Table.cell_ms (Strovl_apps.Collect.p99_ms collect);
  ]

let delay_inflation () =
  (* Static: per-link off-net delay vs on-net delay across the topology. *)
  let engine = Engine.create ~seed:1L () in
  let spec = Gen.us_backbone () in
  let u = Underlay.create engine spec in
  let g = Gen.overlay_graph spec in
  let infl = Stats.Series.create () in
  Graph.iter_links g (fun _ a b ->
      match
        ( Underlay.path_delay u ~isp:0 ~src:a ~dst:b,
          Underlay.path_delay_pair u ~isp_src:0 ~isp_dst:1 ~src:a ~dst:b )
      with
      | Some on, Some off when on > 0 ->
        Stats.Series.add infl (float_of_int off /. float_of_int on)
      | _ -> ());
  infl

let run ?(quick = false) ~seed () =
  let count = if quick then 300 else 2000 in
  let infl = delay_inflation () in
  let rows =
    [
      run_mode ~seed ~count false;
      run_mode ~seed ~count true;
      [
        "per-link delay inflation (off/on)";
        Printf.sprintf "mean %.2fx" (Stats.Series.mean infl);
        Printf.sprintf "max %.2fx" (Stats.Series.max infl);
        "";
      ];
    ]
  in
  Table.make ~id:"onnet-offnet"
    ~title:
      "On-net vs off-net provider combinations (SEA->MIA flow; peering = \
       +2ms, 1% loss)"
    ~header:[ "configuration"; "delivered"; "mean latency"; "p99" ]
    ~notes:
      [
        "paper: traversing only on-net links generally results in better \
         performance (SII-A)";
        "off-net links detour via a peering site and cross best-effort \
         public peering; on-net rides one provider's backbone end to end";
      ]
    rows
