(** The experiment suite: one module per paper figure/claim (see DESIGN.md's
    experiment index). Every experiment is a pure function of its seed and
    returns a {!Table.t}; [all] enumerates them in paper order. *)

module Table = Table
module Common = Common
module Fig3 = Fig3
module Nmstrikes = Nmstrikes
module Reroute = Reroute
module Coverage = Coverage
module Multicast = Multicast
module Disjoint = Disjoint
module Fairness = Fairness
module Backpressure = Backpressure
module Remote_manip = Remote_manip
module Scada = Scada
module Compound = Compound
module Lossy_link = Lossy_link
module Capacity = Capacity
module Onnet = Onnet

type experiment = {
  id : string;
  summary : string;
  run : ?quick:bool -> seed:int64 -> unit -> Table.t;
}

let all : experiment list =
  [
    {
      id = "arch-coverage";
      summary = "global coverage of a few tens of nodes (SII-A)";
      run = Coverage.run;
    };
    {
      id = "reroute-bgp";
      summary = "sub-second overlay reroute vs BGP convergence (SII-A)";
      run = Reroute.run;
    };
    {
      id = "onnet-offnet";
      summary = "on-net vs off-net provider combinations (SII-A)";
      run = Onnet.run;
    };
    {
      id = "lossy-link";
      summary = "routing on shared loss+latency link state (SII-B)";
      run = Lossy_link.run;
    };
    {
      id = "fig3-recovery";
      summary = "hop-by-hop vs end-to-end recovery (Figure 3, SIII-A)";
      run = Fig3.run;
    };
    {
      id = "multicast";
      summary = "overlay multicast tree vs unicast mesh (SIII-B)";
      run = Multicast.run;
    };
    {
      id = "fig4-nmstrikes";
      summary = "NM-Strikes timeliness under bursty loss (Figure 4, SIV-A)";
      run = Nmstrikes.run;
    };
    {
      id = "disjoint-k";
      summary = "k-disjoint paths vs compromised routers (SIV-B)";
      run = Disjoint.run;
    };
    {
      id = "fairness";
      summary = "IT-Priority fairness under flooding attack (SIV-B)";
      run = Fairness.run;
    };
    {
      id = "backpressure";
      summary = "IT-Reliable per-flow backpressure (SIV-B)";
      run = Backpressure.run;
    };
    {
      id = "remote-manip";
      summary = "65ms haptic flows over dissemination graphs (SV-A)";
      run = Remote_manip.run;
    };
    {
      id = "scada-timeliness";
      summary = "SCADA 200ms budget vs crypto cost x size (SV-B)";
      run = Scada.run;
    };
    {
      id = "compound-flow";
      summary = "transcoding compound flow with facility failover (SV-C)";
      run = Compound.run;
    };
    {
      id = "node-capacity";
      summary = "finite node CPU and data-center clusters (SII-D)";
      run = Capacity.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

(* One line per experiment, shared by every CLI's `list` subcommand so the
   catalogue renders identically everywhere. *)
let list_lines () =
  List.map (fun e -> Printf.sprintf "%-18s %s" e.id e.summary) all

let print_list () = List.iter print_endline (list_lines ())

(* --------------------- isolated / parallel running --------------------- *)

(* One experiment as a self-contained unit: runs inside a fresh
   observability context (Strovl_obs.Ctx.isolate) so it neither sees nor
   leaves behind domain state — the property that makes a pool-scheduled
   run's tables and trace digest independent of which domain executes it
   and what ran there before. With [traced], the flight recorder is armed
   for the duration and the run's trace digest is returned as a
   determinism fingerprint. *)
let run_isolated ?quick ?(traced = false) ~seed (e : experiment) =
  Strovl_obs.Ctx.isolate (fun () ->
      if traced then Strovl_obs.Trace.enable ();
      let table = e.run ?quick ~seed () in
      let digest = if traced then Some (Strovl_obs.Trace.digest ()) else None in
      (table, digest))

(* Fans experiments over a domain pool; the outcome array is in input
   order (Strovl_par.Pool's determinism contract), so printing it from the
   main domain reproduces the sequential catalogue order byte for byte. *)
let run_many ?jobs ?quick ?(traced = false) ~seed (es : experiment list) =
  Strovl_par.Pool.map ?jobs
    (fun _ e -> run_isolated ?quick ~traced ~seed e)
    (Array.of_list es)

(* One experiment across many seeds, one isolated run per seed. *)
let sweep ?jobs ?quick (e : experiment) ~seeds =
  Strovl_par.Pool.map ?jobs
    (fun _ seed ->
      let table, _ = run_isolated ?quick ~seed e in
      table)
    (Array.of_list seeds)
