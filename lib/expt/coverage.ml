(** arch-coverage: §II-A.

    "Placing overlay nodes about 10ms apart on the Internet provides the
    desired performance and resilience qualities, and about 150ms is
    sufficient to reach nearly any point on the globe"; "a few tens of well
    situated overlay nodes provide excellent global coverage"; and §II-D:
    the latency overhead of the multi-hop overlay path over the direct
    Internet path is small.

    Static analysis of the ~28-node global topology: link-latency
    distribution, overlay diameter, per-pair stretch of the overlay route
    (including per-hop processing cost) over the direct path estimate. *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module Graph = Strovl_topo.Graph
module Dijkstra = Strovl_topo.Dijkstra

let run ?quick:(_ = false) ~seed:(_ : int64) () =
  let spec = Gen.global_backbone () in
  let g = Gen.overlay_graph spec in
  let n = Graph.n g in
  let delay = Array.make (Graph.link_count g) 0 in
  Graph.iter_links g (fun l a b ->
      delay.(l) <-
        (match Gen.overlay_link_delay spec ~isp:0 a b with
        | Some d -> d
        | None -> Gen.geo_delay_us spec.Gen.sites.(a) spec.Gen.sites.(b)));
  let weight l = delay.(l) in
  let link_ms = Stats.Series.create () in
  Array.iter (fun d -> Stats.Series.add link_ms (Time.to_ms_float d)) delay;
  (* Per-pair overlay route (with 0.1ms per intermediate hop of processing,
     SII-D) versus the direct-path estimate. *)
  let proc = Time.us 100 in
  let stretch = Stats.Series.create () in
  let overlay_ms = Stats.Series.create () in
  let within_150 = ref 0 and pairs = ref 0 in
  for s = 0 to n - 1 do
    let r = Dijkstra.run ~weight g s in
    for d = 0 to n - 1 do
      if d > s && r.Dijkstra.dist.(d) <> max_int then begin
        incr pairs;
        let hops = List.length (Option.get (Dijkstra.path_to r d)) in
        let ov = r.Dijkstra.dist.(d) + (proc * max 0 (hops - 1)) in
        let direct = Gen.geo_delay_us spec.Gen.sites.(s) spec.Gen.sites.(d) in
        Stats.Series.add overlay_ms (Time.to_ms_float ov);
        if ov <= Time.ms 150 then incr within_150;
        if direct > 0 then
          Stats.Series.add stretch (float_of_int ov /. float_of_int direct)
      end
    done
  done;
  let rows =
    [
      [ "overlay nodes"; string_of_int n ];
      [ "overlay links"; string_of_int (Graph.link_count g) ];
      [ "median link latency"; Table.cell_ms (Stats.Series.median link_ms) ];
      [ "max link latency"; Table.cell_ms (Stats.Series.max link_ms) ];
      [
        "overlay diameter";
        Table.cell_ms (Time.to_ms_float (Dijkstra.diameter ~weight g));
      ];
      [ "mean pair latency"; Table.cell_ms (Stats.Series.mean overlay_ms) ];
      [ "p99 pair latency"; Table.cell_ms (Stats.Series.percentile overlay_ms 99.) ];
      [
        "pairs reachable <=150ms";
        Table.cell_pct (Stats.ratio !within_150 !pairs);
      ];
      [ "mean stretch vs direct"; Table.cell_f (Stats.Series.mean stretch) ];
      [ "max stretch vs direct"; Table.cell_f (Stats.Series.max stretch) ];
    ]
  in
  Table.make ~id:"arch-coverage"
    ~title:"Global coverage of a few tens of well-placed overlay nodes"
    ~header:[ "metric"; "value" ]
    ~notes:
      [
        "paper: ~10ms links, ~150ms global reach, few tens of nodes (SII-A)";
        "stretch folds in 0.1ms per-hop processing (SII-D: <1ms/hop)";
        "transoceanic links exceed 10ms by necessity; continental links \
         dominate the median";
      ]
    rows
