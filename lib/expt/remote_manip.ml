(** remote-manip: §V-A real-time remote manipulation.

    One-way budget 65 ms (130 ms round trip for natural interaction) —
    only ~20-25 ms of slack over continental propagation, too tight for
    multi-strike recovery. The paper's direction: a single-strike recovery
    protocol [6,7] combined with *dissemination graphs* [2] that add
    targeted redundancy where the trouble is.

    Scenario: a "problem area" around the source (every fiber segment
    incident to DFW suffers bursty loss); haptic traffic DFW→BOS. Compared:
    link-state single path, uniform 2-disjoint, the source-problem
    dissemination graph (fans out over all source-adjacent links), and
    constrained flooding — by on-time fraction and by edge cost (copies on
    the wire per packet). *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module Dissem = Strovl_topo.Dissem

let src = 5 (* DFW: degree 5, a fan-out-capable source *)
let dst = 11 (* BOS *)
let deadline = Time.ms 65

let single_strike =
  {
    Strovl.Realtime_link.n_requests = 1;
    m_retrans = 1;
    budget = Time.ms 20;
    history = 8192;
    request_spacing = None;
    retrans_spacing = None;
  }

let schemes =
  [
    ("single-path", Strovl.Client.Table);
    ("2-disjoint", Strovl.Client.Scheme Dissem.Two_disjoint);
    ("src-problem", Strovl.Client.Scheme Dissem.Source_problem);
    ("flooding", Strovl.Client.Scheme Dissem.Flooding);
  ]

let total_forwarded net =
  let acc = ref 0 in
  for i = 0 to Strovl.Net.nnodes net - 1 do
    acc := !acc + (Strovl.Node.counters (Strovl.Net.node net i)).Strovl.Node.forwarded
  done;
  !acc

let run_scheme ~seed ~count (name, route) =
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        { Strovl.Node.default_config with Strovl.Node.realtime = single_strike };
    }
  in
  let sim = Common.build ~config ~seed (Gen.us_backbone ()) in
  (* Problem area: bursty loss on every segment touching the source. *)
  let spec = Strovl.Net.spec sim.net in
  let rng = sim.rng in
  Strovl_net.Underlay.set_all_segment_loss (Strovl.Net.underlay sim.net)
    (fun si s ->
      if s.Gen.seg_a = src || s.Gen.seg_b = src then
        (* A severe problem area: each source-adjacent segment spends ~20%
           of the time in a total-loss burst of ~40ms — longer than the
           single-strike recovery can bridge on its own. *)
        Loss.gilbert_elliott
          (Rng.split_named rng (Printf.sprintf "pa/%d" si))
          ~p_good_loss:0. ~p_bad_loss:1. ~mean_good:(Time.ms 160)
          ~mean_bad:(Time.ms 40)
      else Loss.perfect);
  ignore spec;
  let before = total_forwarded sim.net in
  let collect, sent =
    Common.flow_stats sim ~src ~dst
      ~service:
        (Strovl.Packet.Realtime
           { deadline; n_requests = 1; m_retrans = 1 })
      ~route ~deadline ~interval:(Time.ms 2) ~bytes:64 ~count ()
  in
  let copies =
    float_of_int (total_forwarded sim.net - before) /. float_of_int (max 1 sent)
  in
  [
    name;
    Table.cell_pct (Strovl_apps.Collect.on_time_fraction collect ~sent);
    Table.cell_pct (Strovl_apps.Collect.delivery_rate collect ~sent);
    Table.cell_ms (Strovl_apps.Collect.p99_ms collect);
    Table.cell_f copies;
  ]

let run ?(quick = false) ~seed () =
  let count = if quick then 500 else 5000 in
  let rows = List.map (run_scheme ~seed ~count) schemes in
  Table.make ~id:"remote-manip"
    ~title:
      "65ms one-way haptic flow with a bursty problem area around the \
       source (DFW->BOS, single-strike recovery)"
    ~header:[ "scheme"; "on-time(65ms)"; "delivered"; "p99"; "copies/pkt" ]
    ~notes:
      [
        "paper: dissemination graphs add targeted redundancy in \
         problematic areas at a fraction of flooding's cost (SV-A)";
        "expected ordering: single < 2-disjoint < src-problem ~ flooding \
         on-time, with src-problem far cheaper than flooding";
      ]
    rows
