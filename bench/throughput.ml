(* Forwarding-plane macrobenchmark: packets forwarded per wall-clock second.

   The paper's deployability argument (§II-D, §V-B) is about per-hop compute:
   an intermediate overlay node must add well under 1 ms, and the per-packet
   constant factor — not routing — is what caps how much traffic one daemon
   can carry. This benchmark drives a mixed best-effort / reliable /
   multicast load through two whole overlays (the 12-site US backbone and a
   50-node generated topology) and reports how many forwarding operations
   per real second the simulator sustains, plus the minor-GC words allocated
   per forwarded packet (the allocation pressure the fast path imposes).

   Virtual (simulated) time is free: wall time is spent exclusively on the
   event engine and the forwarding plane, so packets-per-wall-second is a
   direct measure of the per-hop constant factor.

   Usage: dune exec bench/throughput.exe              (table on stdout)
          dune exec bench/throughput.exe -- --json BENCH.json
          dune exec bench/throughput.exe -- --quick   (shorter runs) *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module P = Strovl.Packet

type result = {
  r_name : string;
  r_wall_s : float;
  r_forwarded : int;
  r_delivered : int;
  r_minor_words_per_fwd : float;
  r_pkts_per_sec : float;
}

let total_forwarded net =
  let acc = ref 0 in
  for i = 0 to Strovl.Net.nnodes net - 1 do
    acc := !acc + (Strovl.Node.counters (Strovl.Net.node net i)).Strovl.Node.forwarded
  done;
  !acc

let total_delivered net =
  let acc = ref 0 in
  for i = 0 to Strovl.Net.nnodes net - 1 do
    acc := !acc + (Strovl.Node.counters (Strovl.Net.node net i)).Strovl.Node.delivered
  done;
  !acc

(* One scenario: build an overlay, attach the given flows, run [warmup_s]
   virtual seconds untimed, then [run_s] timed virtual seconds. *)
let run_scenario ~name ~spec ~flows ~quick () =
  let engine = Engine.create ~seed:11L () in
  let net = Strovl.Net.create engine spec in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let sources = flows ~engine ~net in
  let vsec s = Engine.run ~until:(Time.add (Engine.now engine) (Time.sec s)) engine in
  vsec 1 (* warmup: routing tables, protocol instances, allocator highwater *);
  let run_s = if quick then 4 else 16 in
  let fwd0 = total_forwarded net and del0 = total_delivered net in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  vsec run_s;
  let wall = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. minor0 in
  List.iter Strovl_apps.Source.stop sources;
  (* Drain in-flight work so the next scenario starts clean. *)
  vsec 2;
  let forwarded = total_forwarded net - fwd0 in
  let delivered = total_delivered net - del0 in
  {
    r_name = name;
    r_wall_s = wall;
    r_forwarded = forwarded;
    r_delivered = delivered;
    r_minor_words_per_fwd =
      (if forwarded = 0 then 0. else minor /. float_of_int forwarded);
    r_pkts_per_sec =
      (if wall <= 0. then 0. else float_of_int forwarded /. wall);
  }

(* Mixed load: two best-effort flows, one reliable flow, one multicast
   group — every forwarding code path (unicast table lookup, reliable link
   recovery machinery, shared-tree fan-out) exercised at once. *)
let mixed_flows ~pairs ~rel_pair ~mcast_src ~mcast_members ~interval ~engine ~net =
  let attach_rx node port =
    let rx = Strovl.Client.attach (Strovl.Net.node net node) ~port in
    Strovl.Client.set_receiver rx ignore;
    rx
  in
  let srcs = ref [] in
  List.iteri
    (fun i (a, b) ->
      ignore (attach_rx b (200 + i));
      let tx = Strovl.Client.attach (Strovl.Net.node net a) ~port:(100 + i) in
      let s = Strovl.Client.sender tx ~dest:(P.To_node b) ~dport:(200 + i) () in
      srcs :=
        Strovl_apps.Source.start ~engine ~sender:s ~interval ~bytes:1200 ()
        :: !srcs)
    pairs;
  (let a, b = rel_pair in
   ignore (attach_rx b 250);
   let tx = Strovl.Client.attach (Strovl.Net.node net a) ~port:150 in
   let s =
     Strovl.Client.sender tx ~service:P.Reliable ~dest:(P.To_node b) ~dport:250 ()
   in
   srcs :=
     Strovl_apps.Source.start ~engine ~sender:s ~interval ~bytes:1200 () :: !srcs);
  let group = 77 in
  List.iter
    (fun m ->
      let rx = attach_rx m 260 in
      Strovl.Client.join rx ~group)
    mcast_members;
  let tx = Strovl.Client.attach (Strovl.Net.node net mcast_src) ~port:160 in
  let s = Strovl.Client.sender tx ~dest:(P.To_group group) ~dport:260 () in
  srcs :=
    Strovl_apps.Source.start ~engine ~sender:s ~interval ~bytes:1200 () :: !srcs;
  !srcs

let us_backbone ~quick () =
  run_scenario ~name:"throughput-us-backbone" ~spec:(Gen.us_backbone ())
    ~flows:
      (mixed_flows
         ~pairs:[ (0, 8); (3, 11) ]
         ~rel_pair:(1, 10) ~mcast_src:0
         ~mcast_members:[ 2; 6; 8; 10 ]
         ~interval:(Time.us 200))
    ~quick ()

let geo_50 ~quick () =
  let spec =
    Gen.random_geometric (Rng.create 4242L) ~n:50 ~radius:0.24 ~nisps:3
  in
  run_scenario ~name:"throughput-geo-50" ~spec
    ~flows:
      (mixed_flows
         ~pairs:[ (0, 43); (7, 31) ]
         ~rel_pair:(12, 48) ~mcast_src:5
         ~mcast_members:[ 9; 20; 33; 41; 47 ]
         ~interval:(Time.us 200))
    ~quick ()

(* The 4-hop SEA->MIA forward path, wall-clock per packet — the same
   fixture as bench/main.exe's "forward-path-SEA-MIA-4hops" microbench and
   bench/smoke_overhead.exe's gate, so the three stay comparable.

   Measured as the best of several blocks after a [Gc.compact]: this
   benchmark runs after two 16-virtual-second scenario churns, and a single
   timed block right after that inherits their major-heap shape and pending
   GC debt — which once showed up as a phantom ~20% "regression" that no
   standalone run of the same fixture could reproduce. Min-of-blocks on a
   compacted heap measures the code, not the allocator history. *)
let forward_path_ns ~quick () =
  let engine = Engine.create () in
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        { Strovl.Node.default_config with Strovl.Node.proc_delay = 0 };
    }
  in
  let net = Strovl.Net.create ~config engine (Gen.us_backbone ()) in
  Strovl.Node.register_session (Strovl.Net.node net 8) ~port:9 ~deliver:ignore;
  let flow = { P.f_src = 0; f_sport = 1; f_dest = P.To_node 8; f_dport = 9 } in
  let seq = ref 0 in
  let one_packet () =
    incr seq;
    let pkt =
      P.make ~flow ~routing:P.Link_state ~service:P.Best_effort ~seq:!seq
        ~sent_at:(Engine.now engine) ~bytes:1200 ()
    in
    ignore (Strovl.Node.originate (Strovl.Net.node net 0) pkt);
    Engine.run engine
  in
  for _ = 1 to 1000 do
    one_packet ()
  done;
  Gc.compact ();
  let iters = if quick then 5_000 else 10_000 in
  let blocks = 5 in
  let best_ns = ref infinity in
  let total_words = ref 0. in
  for _ = 1 to blocks do
    let minor0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      one_packet ()
    done;
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
    total_words := !total_words +. (Gc.minor_words () -. minor0);
    if ns < !best_ns then best_ns := ns
  done;
  (!best_ns, !total_words /. float_of_int (blocks * iters))

(* --------------------- wall-clock runtime loopback -------------------- *)

(* The real-UDP analogues of the forwarding benchmarks: what the identical
   stack costs when datagrams cross actual kernel sockets instead of
   simulated links. Two numbers:

   - rt-udp-echo: raw socket + codec round trip (encode, sendto, select,
     recvfrom, decode, and back) between two loopback sockets — the floor
     any overlay hop pays before protocol work.

   - rt-loopback-forward: end-to-end packets/s through a 3-daemon line
     overlay (0-1-2) on one wall-clock runtime, session client to session
     client, reliable service — every real-path layer at once (datagram
     framing, select loop, link protocols, routing, session delivery). *)

type rt_bench = {
  rt_echo_rtt_us : float;
  rt_echo_per_sec : float;
  rt_fwd_delivered : int;
  rt_fwd_wall_s : float;
  rt_fwd_per_sec : float;
}

let rt_udp_echo ~quick () =
  let module Udp = Strovl_rt.Udp in
  let module Wire = Strovl.Wire in
  let a = Udp.bind ~host:"127.0.0.1" ~port:0 in
  let b = Udp.bind ~host:"127.0.0.1" ~port:0 in
  let addr s = Unix.ADDR_INET (Unix.inet_addr_loopback, Udp.port s) in
  let addr_a = addr a and addr_b = addr b in
  let await sock =
    match Unix.select [ Udp.fd sock ] [] [] 1.0 with
    | [], _, _ -> failwith "rt-udp-echo: datagram lost on loopback"
    | _ -> ()
  in
  let n = if quick then 2_000 else 10_000 in
  let roundtrip i =
    let ping =
      Wire.encode_datagram
        (Wire.Dg_msg
           { src = 0; link = 0; msg = Strovl.Msg.Probe { pseq = i; sent_at = i } })
    in
    ignore (Udp.sendto a addr_b ping);
    await b;
    (match Udp.recvfrom b with
    | Some (data, from) -> (
      match Wire.decode_datagram data with
      | Ok (Wire.Dg_msg { msg = Strovl.Msg.Probe { pseq; sent_at }; _ }) ->
        ignore
          (Udp.sendto b from
             (Wire.encode_datagram
                (Wire.Dg_msg
                   {
                     src = 1;
                     link = 0;
                     msg = Strovl.Msg.Probe_ack { pseq; echo = sent_at };
                   })))
      | _ -> failwith "rt-udp-echo: bad ping"
      )
    | None -> failwith "rt-udp-echo: empty read");
    await a;
    match Udp.recvfrom a with
    | Some (data, _) -> (
      match Wire.decode_datagram data with
      | Ok (Wire.Dg_msg { msg = Strovl.Msg.Probe_ack _; _ }) -> ()
      | _ -> failwith "rt-udp-echo: bad echo")
    | None -> failwith "rt-udp-echo: empty echo"
  in
  ignore addr_a;
  for i = 1 to 200 do
    roundtrip i
  done;
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    roundtrip i
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Udp.close a;
  Udp.close b;
  (wall *. 1e6 /. float_of_int n, float_of_int n /. wall)

let rt_loopback_forward ~quick () =
  let module Rt = Strovl_rt in
  let module Wire = Strovl.Wire in
  let free_ports n =
    List.init n (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        let port =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> assert false
        in
        Unix.close fd;
        port)
  in
  let topo =
    match
      Rt.Topofile.parse
        (String.concat "\n"
           (List.mapi
              (fun i p -> Printf.sprintf "node %d 127.0.0.1:%d" i p)
              (free_ports 3)
           @ [ "link 0 1 5 1000"; "link 1 2 5 1000" ]))
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let config =
    {
      Strovl.Node.default_config with
      Strovl.Node.hello_interval = Time.ms 30;
      hello_timeout = Time.ms 150;
      proc_delay = 0;
    }
  in
  let rt = Rt.Runtime.create () in
  let hosts =
    Array.init 3 (fun id -> Rt.Host.create ~config ~rt ~topo ~id ())
  in
  Array.iter Rt.Host.start hosts;
  let sock = Rt.Udp.bind ~host:"127.0.0.1" ~port:0 in
  let delivered = ref 0 and opened = ref 0 and acked = ref 0 in
  Rt.Runtime.watch rt (Rt.Udp.fd sock) (fun () ->
      Rt.Udp.drain sock ~f:(fun data _ ->
          match Wire.decode_datagram data with
          | Ok (Wire.Dg_session (Wire.Session.Deliver _)) -> incr delivered
          | Ok (Wire.Dg_session (Wire.Session.Open_ok _)) -> incr opened
          | Ok (Wire.Dg_session (Wire.Session.Sent _)) -> incr acked
          | _ -> ()));
  let tell node frame =
    ignore
      (Rt.Udp.sendto sock (Rt.Topofile.addr topo node)
         (Wire.encode_datagram (Wire.Dg_session frame)))
  in
  let run_until budget_ms cond =
    let deadline = Rt.Clock.now_us () + (budget_ms * 1000) in
    while (not (cond ())) && Rt.Clock.now_us () < deadline do
      Rt.Runtime.run_for rt (Time.ms 10)
    done;
    if not (cond ()) then failwith "rt-loopback-forward: timed out"
  in
  (* One client socket plays both roles: receiver session at node 2,
     sender session at node 0. *)
  tell 2 (Wire.Session.Open { sport = 9 });
  tell 0 (Wire.Session.Open { sport = 8 });
  run_until 3_000 (fun () -> !opened >= 2);
  let n = if quick then 1_000 else 4_000 in
  let batch = 100 in
  let sent = ref 0 in
  let t0 = Unix.gettimeofday () in
  while !sent < n do
    let upto = min n (!sent + batch) in
    while !sent < upto do
      tell 0
        (Wire.Session.Send
           {
             sport = 8;
             dest = P.To_node 2;
             dport = 9;
             service = P.Reliable;
             seq = !sent;
             bytes = 1200;
             tag = "";
           });
      incr sent
    done;
    (* Keep the pipe full but bounded: wait until the overlay is within a
       batch of the injected load before sending more. *)
    let floor = !sent - batch in
    run_until 5_000 (fun () -> !delivered >= floor)
  done;
  run_until 5_000 (fun () -> !delivered >= n);
  let wall = Unix.gettimeofday () -. t0 in
  Array.iter Rt.Host.close hosts;
  Rt.Udp.close sock;
  {
    rt_echo_rtt_us = 0.;
    rt_echo_per_sec = 0.;
    rt_fwd_delivered = !delivered;
    rt_fwd_wall_s = wall;
    rt_fwd_per_sec = float_of_int !delivered /. wall;
  }

let rt_loopback ~quick () =
  let rtt_us, per_sec = rt_udp_echo ~quick () in
  let fwd = rt_loopback_forward ~quick () in
  { fwd with rt_echo_rtt_us = rtt_us; rt_echo_per_sec = per_sec }

(* ------------------------- parallel sweep wall ------------------------ *)

(* Wall-clock of the quick experiment suite, sequential vs fanned over the
   domain pool: the end-to-end payoff of `strovl_run run all -j N`. Both
   passes go through the same Pool.map claim loop and per-run isolation
   (only the domain count differs), so the ratio isolates scheduling. The
   core count is recorded because the achievable speedup is bounded by it —
   on a single-core host the honest expectation is ~1.0x. *)
type sweep = {
  s_seq_wall : float;
  s_par_wall : float;
  s_jobs : int;
  s_cores : int;
  s_speedup : float;
}

let sweep_wall () =
  let seed = 7L in
  let time_suite jobs =
    let t0 = Unix.gettimeofday () in
    let outcomes = Strovl_expt.run_many ~jobs ~quick:true ~seed Strovl_expt.all in
    Array.iter
      (function
        | Strovl_par.Pool.Done _ -> ()
        | Strovl_par.Pool.Failed { exn; _ } ->
          Printf.eprintf "sweep-wall: experiment failed: %s\n" exn)
      outcomes;
    Unix.gettimeofday () -. t0
  in
  let cores = Strovl_par.Pool.default_jobs () in
  let jobs = max 2 cores in
  let seq = time_suite 1 in
  let par = time_suite jobs in
  {
    s_seq_wall = seq;
    s_par_wall = par;
    s_jobs = jobs;
    s_cores = cores;
    s_speedup = (if par <= 0. then 0. else seq /. par);
  }

(* ------------------------------- output ------------------------------- *)

let print_result r =
  Printf.printf
    "%-24s %10.0f pkts/s  (%d forwarded, %d delivered, %.1f minor words/pkt, \
     %.2fs wall)\n"
    r.r_name r.r_pkts_per_sec r.r_forwarded r.r_delivered
    r.r_minor_words_per_fwd r.r_wall_s

(* Pre-overhaul numbers, measured at commit 14aac68 (boxed heap entries,
   closure-per-event scheduler, List-building forwarding plane) with the
   identical scenarios, seeds and full 16 s runs on the same machine.
   Kept as constants so regenerating BENCH.json preserves the before/after
   trajectory. *)
let baseline_json =
  "  \"baseline\": {\n\
  \    \"commit\": \"14aac68 (pre fast-path overhaul)\",\n\
  \    \"throughput-us-backbone\": { \"pkts_per_wall_sec\": 387191, \
   \"minor_words_per_fwd\": 206.7 },\n\
  \    \"throughput-geo-50\": { \"pkts_per_wall_sec\": 334539, \
   \"minor_words_per_fwd\": 220.1 },\n\
  \    \"forward-path-SEA-MIA-4hops\": { \"ns_per_op\": 1423, \
   \"minor_words_per_op\": 713.0 }\n\
  \  },\n"

let print_sweep s =
  Printf.printf
    "%-24s %9.2fx speedup  (seq %.2fs, par %.2fs with -j %d on %d core%s)\n"
    "sweep-wall-quick-suite" s.s_speedup s.s_seq_wall s.s_par_wall s.s_jobs
    s.s_cores
    (if s.s_cores = 1 then "" else "s")

let print_rt rt =
  Printf.printf
    "%-24s %10.1f us RTT  (%.0f roundtrips/s raw socket+codec)\n"
    "rt-udp-echo" rt.rt_echo_rtt_us rt.rt_echo_per_sec;
  Printf.printf
    "%-24s %10.0f pkts/s  (%d delivered end-to-end, %.2fs wall)\n"
    "rt-loopback-forward" rt.rt_fwd_per_sec rt.rt_fwd_delivered rt.rt_fwd_wall_s

let json_of_results results (fwd_ns, fwd_words) rt sweep =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"strovl-bench-v1\",\n";
  Buffer.add_string b baseline_json;
  Buffer.add_string b "  \"benchmarks\": {\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "    \"%s\": { \"pkts_per_wall_sec\": %.0f, \"forwarded\": %d, \
            \"delivered\": %d, \"minor_words_per_fwd\": %.2f, \"wall_s\": \
            %.3f },\n"
           r.r_name r.r_pkts_per_sec r.r_forwarded r.r_delivered
           r.r_minor_words_per_fwd r.r_wall_s))
    results;
  Buffer.add_string b
    (Printf.sprintf
       "    \"forward-path-SEA-MIA-4hops\": { \"ns_per_op\": %.0f, \
        \"minor_words_per_op\": %.1f },\n"
       fwd_ns fwd_words);
  Buffer.add_string b
    (Printf.sprintf
       "    \"rt-udp-echo\": { \"rtt_us\": %.1f, \"roundtrips_per_sec\": \
        %.0f },\n"
       rt.rt_echo_rtt_us rt.rt_echo_per_sec);
  Buffer.add_string b
    (Printf.sprintf
       "    \"rt-loopback-forward\": { \"pkts_per_wall_sec\": %.0f, \
        \"delivered\": %d, \"wall_s\": %.3f },\n"
       rt.rt_fwd_per_sec rt.rt_fwd_delivered rt.rt_fwd_wall_s);
  Buffer.add_string b
    (Printf.sprintf
       "    \"sweep-wall-quick-suite\": { \"seq_wall_s\": %.3f, \
        \"par_wall_s\": %.3f, \"jobs\": %d, \"cores\": %d, \
        \"speedup\": %.2f }\n"
       sweep.s_seq_wall sweep.s_par_wall sweep.s_jobs sweep.s_cores
       sweep.s_speedup);
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let () =
  let quick = Array.exists (fun a -> a = "--quick" || a = "-q") Sys.argv in
  let json_path = ref None in
  Array.iteri
    (fun i a ->
      if a = "--json" && i + 1 < Array.length Sys.argv then
        json_path := Some Sys.argv.(i + 1))
    Sys.argv;
  let results = [ us_backbone ~quick (); geo_50 ~quick () ] in
  List.iter print_result results;
  let ((fwd_ns, fwd_words) as fwd) = forward_path_ns ~quick () in
  Printf.printf "%-24s %10.1f ns/op   (%.1f minor words/op)\n"
    "forward-path-4hops" fwd_ns fwd_words;
  let rt = rt_loopback ~quick () in
  print_rt rt;
  let sweep = sweep_wall () in
  print_sweep sweep;
  match !json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (json_of_results results fwd rt sweep);
    close_out oc;
    Printf.printf "wrote %s\n" path
