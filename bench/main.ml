(* Benchmark harness: regenerates every figure/claim of the paper.

   Part 1 — Bechamel microbenchmarks for the CPU-cost claims (§II-D: "less
   than 1 ms additional latency per intermediate overlay node"; §V-B:
   cryptography as the scaling barrier): real nanosecond costs of the
   forwarding path and its components on this machine.

   Part 2 — the simulation experiment tables (one per paper figure/claim,
   see DESIGN.md's experiment index), printed via strovl_expt.

   Usage: dune exec bench/main.exe            (full: a few minutes)
          dune exec bench/main.exe -- --quick (reduced sweeps)
          dune exec bench/main.exe -- -j N    (experiment tables on N domains;
                      the Bechamel microbenches stay pinned to this domain —
                      timing runs must not share cores with sibling work)
          dune exec bench/main.exe -- --json FILE
                      (also dump the microbench estimates as JSON, same
                       schema family as bench/throughput.exe's BENCH.json) *)

open Bechamel
open Toolkit
module Siphash = Strovl_crypto.Siphash
module Auth = Strovl_crypto.Auth
module Gen = Strovl_topo.Gen
module Graph = Strovl_topo.Graph
module Dijkstra = Strovl_topo.Dijkstra
module P = Strovl.Packet

(* ------------------------- microbench fixtures ----------------------- *)

let us_spec = Gen.us_backbone ()
let us_graph = Gen.overlay_graph us_spec

let us_weight =
  let w = Array.make (Graph.link_count us_graph) 0 in
  Graph.iter_links us_graph (fun l a b ->
      w.(l) <- Gen.geo_delay_us us_spec.Gen.sites.(a) us_spec.Gen.sites.(b));
  fun l -> w.(l)

let mac_key = Siphash.key_of_string "bench-key"
let payload_1316 = String.make 1316 'x'
let registry = Auth.create_registry ~master:"bench" ~nodes:12
let signed = Auth.sign registry ~node:0 "bench message"

let bench_siphash =
  Test.make ~name:"siphash-mac-1316B"
    (Staged.stage (fun () -> Siphash.hash mac_key payload_1316))

let bench_sign =
  Test.make ~name:"auth-sign"
    (Staged.stage (fun () -> Auth.sign registry ~node:0 "bench message"))

let bench_verify =
  Test.make ~name:"auth-verify"
    (Staged.stage (fun () ->
         Auth.verify_sign registry ~node:0 "bench message" signed))

let bench_dijkstra =
  Test.make ~name:"dijkstra-us-12"
    (Staged.stage (fun () -> Dijkstra.run ~weight:us_weight us_graph 0))

let bench_disjoint =
  Test.make ~name:"3-disjoint-paths-us"
    (Staged.stage (fun () ->
         Strovl_topo.Disjoint.paths ~weight:us_weight ~k:3 us_graph 0 8))

let bench_mcast_tree =
  Test.make ~name:"mcast-tree-us"
    (Staged.stage (fun () ->
         Strovl_topo.Mcast.shortest_path_tree ~weight:us_weight us_graph
           ~source:0 ~members:[ 2; 6; 8; 10 ]))

let bench_bitmask =
  let m = Strovl_topo.Bitmask.full ~nlinks:(Graph.link_count us_graph) in
  Test.make ~name:"bitmask-count+iter"
    (Staged.stage (fun () ->
         let acc = ref (Strovl_topo.Bitmask.count m) in
         Strovl_topo.Bitmask.iter m (fun l -> acc := !acc + l);
         !acc))

let bench_dedup =
  let d = Strovl.Dedup.create () in
  let flow = { P.f_src = 0; f_sport = 1; f_dest = P.To_node 1; f_dport = 2 } in
  let seq = ref 0 in
  Test.make ~name:"dedup-seen"
    (Staged.stage (fun () ->
         incr seq;
         Strovl.Dedup.seen d flow !seq))

(* The full forwarding path: a node receives a wire data message, charges
   routing, and hands it onward; downstream nodes repeat until the
   destination delivers. SEA->MIA is 4 overlay hops on this topology, so
   per-hop CPU cost = measured / ~4. Virtual (simulated) time is free; only
   real compute is measured. *)
let bench_forward =
  let engine = Strovl_sim.Engine.create () in
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        { Strovl.Node.default_config with Strovl.Node.proc_delay = 0 };
    }
  in
  let net = Strovl.Net.create ~config engine us_spec in
  (* No [start]: no hello traffic pollutes the measurement. *)
  Strovl.Node.register_session (Strovl.Net.node net 8) ~port:9 ~deliver:ignore;
  let flow = { P.f_src = 0; f_sport = 1; f_dest = P.To_node 8; f_dport = 9 } in
  let seq = ref 0 in
  Test.make ~name:"forward-path-SEA-MIA-4hops"
    (Staged.stage (fun () ->
         incr seq;
         let pkt =
           P.make ~flow ~routing:P.Link_state ~service:P.Best_effort ~seq:!seq
             ~sent_at:(Strovl_sim.Engine.now engine) ~bytes:1200 ()
         in
         ignore (Strovl.Node.originate (Strovl.Net.node net 0) pkt);
         Strovl_sim.Engine.run engine))

let microbenches =
  [
    bench_siphash;
    bench_sign;
    bench_verify;
    bench_dijkstra;
    bench_disjoint;
    bench_mcast_tree;
    bench_bitmask;
    bench_dedup;
    bench_forward;
  ]

let run_microbenches () =
  print_endline "== perhop-cost: Bechamel microbenchmarks (SII-D, SV-B) ==";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some (ns :: _) ->
            Printf.printf "%-28s %12.1f ns/op\n" name ns;
            estimates := (name, ns) :: !estimates
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        analyzed)
    microbenches;
  print_endline
    "  note: paper SII-D claims <1ms per intermediate overlay node: the \
     whole 4-hop forward path above must be well under 4,000,000 ns";
  print_newline ();
  List.rev !estimates

let write_json path estimates =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"strovl-bench-v1\",\n  \"microbench\": {\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    \"%s\": { \"ns_per_op\": %.1f }%s\n" name ns
        (if i = List.length estimates - 1 then "" else ","))
    estimates;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ----------------------------- experiments --------------------------- *)

let () =
  let quick = Array.exists (fun a -> a = "--quick" || a = "-q") Sys.argv in
  let json_path = ref None in
  let jobs = ref 1 in
  Array.iteri
    (fun i a ->
      if a = "--json" && i + 1 < Array.length Sys.argv then
        json_path := Some Sys.argv.(i + 1);
      if (a = "-j" || a = "--jobs") && i + 1 < Array.length Sys.argv then
        jobs := max 1 (int_of_string Sys.argv.(i + 1)))
    Sys.argv;
  let seed = 7L in
  (* Microbenchmarks always run here, alone, before any worker domain
     exists: a timing loop sharing its core with sibling experiments would
     measure the scheduler, not the code. *)
  let estimates = run_microbenches () in
  (match !json_path with
  | None -> ()
  | Some path -> write_json path estimates);
  if quick then print_endline "(quick mode: reduced packet counts and sweeps)";
  if !jobs <= 1 then
    List.iter
      (fun (e : Strovl_expt.experiment) ->
        let t0 = Unix.gettimeofday () in
        let table, _ = Strovl_expt.run_isolated ~quick ~seed e in
        Strovl_expt.Table.print Format.std_formatter table;
        Format.printf "  (generated in %.1fs)@.@." (Unix.gettimeofday () -. t0))
      Strovl_expt.all
  else begin
    let t0 = Unix.gettimeofday () in
    let outcomes = Strovl_expt.run_many ~jobs:!jobs ~quick ~seed Strovl_expt.all in
    List.iteri
      (fun i (e : Strovl_expt.experiment) ->
        match outcomes.(i) with
        | Strovl_par.Pool.Done (table, _) ->
          Strovl_expt.Table.print Format.std_formatter table
        | Strovl_par.Pool.Failed { exn; _ } ->
          Format.printf "@.== %s: FAILED: %s ==@." e.Strovl_expt.id exn)
      Strovl_expt.all;
    Format.printf "  (suite generated in %.1fs with -j %d)@.@."
      (Unix.gettimeofday () -. t0)
      !jobs
  end
