(* Disabled-observability overhead + perf-regression gate, run from the
   @smoke alias.

   With tracing disarmed and metrics off, each instrumentation site in the
   forwarding path must cost one ref dereference and a branch. This check
   measures the full 4-hop SEA->MIA forward path (same fixture as the
   perhop-cost bench) and fails if it exceeds a generous absolute bound, or
   if any trace event, time-series bucket, or link-probe state leaked out
   while the corresponding layer was off (probing is opt-in per node; the
   default config must produce zero probe traffic).

   It additionally gates against the committed BENCH.json trajectory
   (regenerate with `dune exec bench/throughput.exe -- --json BENCH.json`):
   a >25% regression of the forward path against the recorded
   forward-path-SEA-MIA-4hops entry fails the gate. Wall time is noisy on
   shared machines, so the ns/op side measures min-of-N (minimum over
   repeated blocks discards scheduler interference, the only noise that
   exists is additive) while minor words/op is deterministic and compared
   directly. It is a smoke gate against gross regressions, not a precision
   benchmark. *)

module P = Strovl.Packet
module Gen = Strovl_topo.Gen

(* --- minimal BENCH.json field extraction (no JSON dependency) --- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s

let find_from s pos sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go pos

(* Value of ["key": <number>] after position [pos]. *)
let number_field s pos key =
  match find_from s pos ("\"" ^ key ^ "\":") with
  | None -> None
  | Some p ->
    let n = String.length s in
    let rec skip i = if i < n && s.[i] = ' ' then skip (i + 1) else i in
    let start = skip p in
    let rec fin i =
      if i < n && (match s.[i] with '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true | _ -> false)
      then fin (i + 1)
      else i
    in
    let stop = fin start in
    if stop = start then None
    else float_of_string_opt (String.sub s start (stop - start))

(* The recorded current ("after") numbers live under "benchmarks"; the
   frozen pre-overhaul numbers under "baseline" reuse the same bench name,
   so anchor the scan past the "benchmarks" key. *)
let recorded_forward_path json =
  match find_from json 0 "\"benchmarks\"" with
  | None -> None
  | Some p -> (
    match find_from json p "\"forward-path-SEA-MIA-4hops\"" with
    | None -> None
    | Some q -> (
      match (number_field json q "ns_per_op", number_field json q "minor_words_per_op") with
      | Some ns, Some words -> Some (ns, words)
      | _ -> None))

(* The whole measurement runs on a dedicated, freshly spawned domain while
   the calling domain sits idle in [join]: the timing loop never shares its
   domain with anything else, and the zero-leak checks below inspect the
   measuring domain's own (domain-local) observability state — a fresh
   domain must start pristine, which is exactly the per-run isolation
   contract behind `-j N`. *)
let measure () =
  Strovl_obs.Trace.disable ();
  Strovl_obs.Metrics.set_enabled false;
  let engine = Strovl_sim.Engine.create () in
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        { Strovl.Node.default_config with Strovl.Node.proc_delay = 0 };
    }
  in
  let net = Strovl.Net.create ~config engine (Gen.us_backbone ()) in
  Strovl.Node.register_session (Strovl.Net.node net 8) ~port:9 ~deliver:ignore;
  let flow = { P.f_src = 0; f_sport = 1; f_dest = P.To_node 8; f_dport = 9 } in
  let seq = ref 0 in
  let one_packet () =
    incr seq;
    let pkt =
      P.make ~flow ~routing:P.Link_state ~service:P.Best_effort ~seq:!seq
        ~sent_at:(Strovl_sim.Engine.now engine) ~bytes:1200 ()
    in
    ignore (Strovl.Node.originate (Strovl.Net.node net 0) pkt);
    Strovl_sim.Engine.run engine
  in
  (* Warm up routing tables, protocol instances and the allocator. *)
  for _ = 1 to 1000 do
    one_packet ()
  done;
  (* Min-of-N blocks: minor words/op is deterministic, ns/op keeps the
     quietest block. *)
  let blocks = 5 and iters = 10_000 in
  let best_ns = ref infinity and best_words = ref infinity in
  for _ = 1 to blocks do
    let minor0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      one_packet ()
    done;
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
    let words = (Gc.minor_words () -. minor0) /. float_of_int iters in
    if ns < !best_ns then best_ns := ns;
    if words < !best_words then best_words := words
  done;
  let ns_per_op = !best_ns and words_per_op = !best_words in
  let delivered =
    (Strovl.Node.counters (Strovl.Net.node net 8)).Strovl.Node.delivered
  in
  Printf.printf
    "smoke-overhead: forward-path 4 hops: %.0f ns/op, %.1f minor words/op \
     (%d delivered)\n"
    ns_per_op words_per_op delivered;
  let failed = ref false in
  (* The paper's SII-D budget is <1ms per hop; the simulated path costs a
     few µs of real compute. 40µs/op (10µs per hop) only trips on a gross
     regression, not on machine noise. *)
  if ns_per_op > 40_000. then begin
    Printf.printf "FAIL: forward path %.0f ns/op exceeds 40000 ns/op bound\n"
      ns_per_op;
    failed := true
  end;
  (* 25% regression gate against the committed benchmark trajectory. *)
  (match read_file "BENCH.json" with
  | None ->
    print_endline
      "smoke-overhead: BENCH.json not found; skipping regression gate"
  | Some json -> (
    match recorded_forward_path json with
    | None ->
      print_endline
        "smoke-overhead: no forward-path-SEA-MIA-4hops entry in BENCH.json; \
         skipping regression gate";
    | Some (rec_ns, rec_words) ->
      Printf.printf
        "smoke-overhead: BENCH.json records %.0f ns/op, %.1f words/op\n"
        rec_ns rec_words;
      (* Minor words/op is exactly reproducible, so 25% is a strict gate —
         this is the one that catches a reintroduced per-event or per-hop
         allocation. The ns side keeps the 25% criterion under an absolute
         noise floor: on a dedicated domain with the rest of the process
         idle in [join], min-of-N blocks on this fixture stay under
         ~2.3 us/op even right after the @smoke experiments churned the
         heap, so anything below 3 us/op is machine state, not code
         (tightened from the pre-pool 4 us floor). *)
      let ns_bound = Float.max (1.25 *. rec_ns) 3_000. in
      if ns_per_op > ns_bound then begin
        Printf.printf
          "FAIL: forward path %.0f ns/op regressed >25%% vs BENCH.json \
           (%.0f ns/op, gate %.0f)\n"
          ns_per_op rec_ns ns_bound;
        failed := true
      end;
      if words_per_op > 1.25 *. rec_words then begin
        Printf.printf
          "FAIL: forward path %.1f minor words/op regressed >25%% vs \
           BENCH.json (%.1f words/op)\n"
          words_per_op rec_words;
        failed := true
      end));
  if Strovl_obs.Trace.total () <> 0 then begin
    Printf.printf "FAIL: %d trace events emitted while recorder disabled\n"
      (Strovl_obs.Trace.total ());
    failed := true
  end;
  if delivered = 0 then begin
    print_endline "FAIL: nothing delivered; fixture broken";
    failed := true
  end;
  (* Probing is opt-in: the default node config must not have created any
     prober (no health state, no probe wire traffic). *)
  if Strovl_obs.Health.all () <> [] then begin
    Printf.printf "FAIL: %d health entries exist with probing disabled\n"
      (List.length (Strovl_obs.Health.all ()));
    failed := true
  end;
  (* The time-series layer was never enabled: no channel may hold buckets. *)
  if Strovl_obs.Series.channels () <> [] then begin
    Printf.printf "FAIL: %d series channels collected buckets while off\n"
      (List.length (Strovl_obs.Series.channels ()));
    failed := true
  end;
  !failed

let () =
  let failed = Domain.join (Domain.spawn measure) in
  if failed then exit 1;
  print_endline "smoke-overhead: OK"
