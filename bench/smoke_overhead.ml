(* Disabled-observability overhead gate, run from the @smoke alias.

   With tracing disarmed and metrics off, each instrumentation site in the
   forwarding path must cost one ref dereference and a branch. This check
   measures the full 4-hop SEA->MIA forward path (same fixture as the
   perhop-cost bench) and fails if it exceeds a generous absolute bound, or
   if any trace event, time-series bucket, or link-probe state leaked out
   while the corresponding layer was off (probing is opt-in per node; the
   default config must produce zero probe traffic). It is a smoke gate
   against gross regressions (accidental allocation or formatting in a
   guard), not a precision benchmark. *)

module P = Strovl.Packet
module Gen = Strovl_topo.Gen

let () =
  Strovl_obs.Trace.disable ();
  Strovl_obs.Metrics.enabled := false;
  let engine = Strovl_sim.Engine.create () in
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        { Strovl.Node.default_config with Strovl.Node.proc_delay = 0 };
    }
  in
  let net = Strovl.Net.create ~config engine (Gen.us_backbone ()) in
  Strovl.Node.register_session (Strovl.Net.node net 8) ~port:9 ~deliver:ignore;
  let flow = { P.f_src = 0; f_sport = 1; f_dest = P.To_node 8; f_dport = 9 } in
  let seq = ref 0 in
  let one_packet () =
    incr seq;
    let pkt =
      P.make ~flow ~routing:P.Link_state ~service:P.Best_effort ~seq:!seq
        ~sent_at:(Strovl_sim.Engine.now engine) ~bytes:1200 ()
    in
    ignore (Strovl.Node.originate (Strovl.Net.node net 0) pkt);
    Strovl_sim.Engine.run engine
  in
  (* Warm up routing tables, protocol instances and the allocator. *)
  for _ = 1 to 1000 do
    one_packet ()
  done;
  let iters = 20_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    one_packet ()
  done;
  let ns_per_op = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  let delivered =
    (Strovl.Node.counters (Strovl.Net.node net 8)).Strovl.Node.delivered
  in
  Printf.printf "smoke-overhead: forward-path 4 hops: %.0f ns/op (%d delivered)\n"
    ns_per_op delivered;
  let failed = ref false in
  (* The paper's SII-D budget is <1ms per hop; the simulated path costs a
     few µs of real compute. 40µs/op (10µs per hop) only trips on a gross
     regression, not on machine noise. *)
  if ns_per_op > 40_000. then begin
    Printf.printf "FAIL: forward path %.0f ns/op exceeds 40000 ns/op bound\n"
      ns_per_op;
    failed := true
  end;
  if Strovl_obs.Trace.total () <> 0 then begin
    Printf.printf "FAIL: %d trace events emitted while recorder disabled\n"
      (Strovl_obs.Trace.total ());
    failed := true
  end;
  if delivered = 0 then begin
    print_endline "FAIL: nothing delivered; fixture broken";
    failed := true
  end;
  (* Probing is opt-in: the default node config must not have created any
     prober (no health state, no probe wire traffic). *)
  if Strovl_obs.Health.all () <> [] then begin
    Printf.printf "FAIL: %d health entries exist with probing disabled\n"
      (List.length (Strovl_obs.Health.all ()));
    failed := true
  end;
  (* The time-series layer was never enabled: no channel may hold buckets. *)
  if Strovl_obs.Series.channels () <> [] then begin
    Printf.printf "FAIL: %d series channels collected buckets while off\n"
      (List.length (Strovl_obs.Series.channels ()));
    failed := true
  end;
  if !failed then exit 1;
  print_endline "smoke-overhead: OK"
