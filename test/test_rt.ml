(* Wall-clock runtime integration test: three overlay daemons on real
   loopback UDP sockets — in one process, on one Strovl_rt.Runtime, which
   makes the test deterministic to schedule yet exercises the entire real
   path: datagram framing, non-blocking sockets, the select loop, session
   clients, and the unmodified protocol stack (hello, LSUs, probes,
   reliable links, routing, delivery).

   Topology is a square — two disjoint 2-hop paths 0-1-3 and 0-2-3 — and
   the flow runs 0 -> 3. The stack routes on *measured* latency (hello and
   probe RTTs), which on loopback is near-equal everywhere, so the test
   does not assume which relay wins: it discovers which middle node
   carried the first batch, kills that daemon (socket closed, node
   stopped), and shows the overlay reroutes onto the surviving relay
   within the liveness window and keeps delivering. Every phase has a
   bounded wall-clock budget; the whole test stays well under 10 s. *)

module Time = Strovl_sim.Time
module Node = Strovl.Node
module Wire = Strovl.Wire
module Packet = Strovl.Packet
module Rt = Strovl_rt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Three kernel-chosen free UDP ports, released before the daemons bind
   them. (A race with other processes is theoretically possible, real
   collisions are not: nothing else on the test host grabs ephemeral UDP
   ports in the microseconds between close and re-bind.) *)
let free_ports n =
  List.init n (fun _ ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      Unix.close fd;
      port)

(* Fast protocol timings so failure detection and rerouting fit a test
   budget: hello every 30 ms with a 120 ms timeout, probes every 25 ms
   with k=3 (both failure detectors race to ~75-120 ms). *)
let test_config =
  {
    Node.default_config with
    Node.hello_interval = Time.ms 30;
    hello_timeout = Time.ms 120;
    probe =
      Some
        {
          Strovl.Probe_link.period = Time.ms 25;
          k_missed = 3;
          loss_window = 20;
        };
    probe_routing = true;
  }

(* Drives the runtime in slices until [cond] holds or [budget_ms] elapses. *)
let run_until rt ~budget_ms cond =
  let deadline = Rt.Clock.now_us () + (budget_ms * 1000) in
  let rec go () =
    if cond () then true
    else if Rt.Clock.now_us () >= deadline then cond ()
    else begin
      Rt.Runtime.run_for rt (Time.ms 20);
      go ()
    end
  in
  go ()

(* An in-process session client: a plain UDP socket whose inbound session
   frames accumulate via the runtime's select loop. *)
type client = {
  sock : Rt.Udp.t;
  daemon : Unix.sockaddr;
  mutable frames : Wire.Session.frame list;  (** newest first *)
}

let client rt topo node =
  let sock = Rt.Udp.bind ~host:"127.0.0.1" ~port:0 in
  let c = { sock; daemon = Rt.Topofile.addr topo node; frames = [] } in
  Rt.Runtime.watch rt (Rt.Udp.fd sock) (fun () ->
      Rt.Udp.drain sock ~f:(fun data _ ->
          match Wire.decode_datagram data with
          | Ok (Wire.Dg_session f) -> c.frames <- f :: c.frames
          | Ok (Wire.Dg_msg _) | Error _ -> ()));
  c

let tell c frame =
  ignore
    (Rt.Udp.sendto c.sock c.daemon
       (Wire.encode_datagram (Wire.Dg_session frame)))

let count_delivers c =
  List.length
    (List.filter
       (function Wire.Session.Deliver _ -> true | _ -> false)
       c.frames)

let count_acks c =
  List.length
    (List.filter
       (function Wire.Session.Sent { accepted = true; _ } -> true | _ -> false)
       c.frames)

let opened c =
  List.exists (function Wire.Session.Open_ok _ -> true | _ -> false) c.frames

let overlay_survives_relay_death () =
  let ports = free_ports 4 in
  let topo_text =
    String.concat "\n"
      (List.mapi
         (fun i p -> Printf.sprintf "node %d 127.0.0.1:%d" i p)
         ports
      @ [ "link 0 1 5"; "link 1 3 5"; "link 0 2 5"; "link 2 3 5" ])
  in
  let topo =
    match Rt.Topofile.parse topo_text with
    | Ok t -> t
    | Error e -> Alcotest.failf "topofile: %s" e
  in
  let rt = Rt.Runtime.create () in
  let hosts =
    Array.init 4 (fun id ->
        Rt.Host.create ~config:test_config ~rt ~topo ~id ())
  in
  Array.iter Rt.Host.start hosts;

  (* Phase 1: clients attach — sender at node 0, receiver at node 3. *)
  let sender = client rt topo 0 in
  let receiver = client rt topo 3 in
  tell sender (Wire.Session.Open { sport = 8 });
  tell receiver (Wire.Session.Open { sport = 9 });
  check_bool "sessions open" true
    (run_until rt ~budget_ms:2000 (fun () -> opened sender && opened receiver));

  let send_batch lo n =
    for seq = lo to lo + n - 1 do
      tell sender
        (Wire.Session.Send
           {
             sport = 8;
             dest = Packet.To_node 3;
             dport = 9;
             service = Packet.Reliable;
             seq;
             bytes = 1000;
             tag = "t";
           })
    done
  in
  let forwarded id = (Node.counters (Rt.Host.node hosts.(id))).Node.forwarded in

  (* Phase 2: the overlay converges (hellos, probes, LSU floods) and
     delivers the flow end-to-end through one of the two relays. *)
  send_batch 0 5;
  check_bool "first batch delivered via overlay" true
    (run_until rt ~budget_ms:3000 (fun () ->
         count_delivers receiver >= 5 && count_acks sender >= 5));
  check_bool "a relay carried the first batch" true
    (forwarded 1 + forwarded 2 >= 5);

  (* Phase 3: kill the daemon that is actually on the path. Both failure
     detectors (hello timeout, k missed probes) see silence; the overlay
     must fail over to the surviving relay within the liveness window and
     keep delivering. *)
  let victim = if forwarded 1 >= forwarded 2 then 1 else 2 in
  let survivor = 3 - victim in
  let victim_forwarded = forwarded victim in
  let survivor_forwarded_before = forwarded survivor in
  Rt.Host.close hosts.(victim);
  Rt.Runtime.run_for rt (Time.ms 400) (* > hello_timeout + probe k*period *);
  send_batch 100 5;
  check_bool "rerouted after the active relay died" true
    (run_until rt ~budget_ms:3000 (fun () -> count_delivers receiver >= 10));
  check_int "dead relay saw none of the second batch" victim_forwarded
    (forwarded victim);
  check_bool "surviving relay carried the second batch" true
    (forwarded survivor >= survivor_forwarded_before + 5);

  (* Deliver stamps ride the shared monotonic clock: one-way latencies are
     non-negative and sub-second on loopback. *)
  List.iter
    (function
      | Wire.Session.Deliver { pkt; at; _ } ->
        let one_way = at - pkt.Packet.sent_at in
        check_bool "sane one-way latency" true
          (one_way >= 0 && one_way < 1_000_000)
      | _ -> ())
    receiver.frames;

  tell sender (Wire.Session.Close { sport = 8 });
  tell receiver (Wire.Session.Close { sport = 9 });
  let has_no_sessions () =
    (* stats_json ends with ,"sessions":N} — N must drop to 0 *)
    let j = Rt.Host.stats_json hosts.(3) in
    match String.index_opt j ':' with
    | None -> false
    | Some _ ->
      String.length j > 13
      && String.sub j (String.length j - 13) 13 = {|"sessions":0}|}
  in
  check_bool "daemon dropped the closed session" true
    (run_until rt ~budget_ms:500 has_no_sessions);
  Array.iter Rt.Host.close hosts;
  Rt.Udp.close sender.sock;
  Rt.Udp.close receiver.sock

let runtime_scheduling () =
  (* The Runtime satisfies the engine scheduling contract over the wall
     clock: timers fire in order, cancellation works, now() advances. *)
  let rt = Rt.Runtime.create () in
  let t0 = Rt.Runtime.now rt in
  let fired = ref [] in
  let e = Rt.Runtime.engine rt in
  ignore
    (Strovl_sim.Engine.schedule e ~delay:(Time.ms 10) (fun () ->
         fired := 10 :: !fired));
  ignore
    (Strovl_sim.Engine.schedule e ~delay:(Time.ms 30) (fun () ->
         fired := 30 :: !fired));
  let cancelled =
    Strovl_sim.Engine.schedule e ~delay:(Time.ms 20) (fun () ->
        fired := 20 :: !fired)
  in
  Strovl_sim.Engine.cancel e cancelled;
  Rt.Runtime.run_for rt (Time.ms 60);
  Alcotest.(check (list int)) "timers fired in wall-clock order" [ 30; 10 ]
    !fired;
  let elapsed = Rt.Runtime.now rt - t0 in
  check_bool "clock advanced with the wall" true
    (elapsed >= Time.ms 50 && elapsed < Time.sec 5)

let topofile_parsing () =
  let ok text =
    match Rt.Topofile.parse text with
    | Ok t -> t
    | Error e -> Alcotest.failf "unexpected parse error: %s" e
  in
  let err text =
    match Rt.Topofile.parse text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error e -> e
  in
  let t =
    ok
      "# comment\n\
       node 0 127.0.0.1:7000\n\
       node 1 127.0.0.1:7001  # trailing comment\n\
       link 0 1 5 1000\n"
  in
  check_int "nodes" 2 (Array.length t.Rt.Topofile.nodes);
  check_int "links" 1 (Array.length t.Rt.Topofile.links);
  check_int "metric us" 5000 (Rt.Topofile.metric t 0);
  check_int "bandwidth" 1_000_000_000 (Rt.Topofile.bandwidth_bps t 0);
  check_int "graph links" 1
    (Strovl_topo.Graph.link_count (Rt.Topofile.graph t));
  check_bool "no nodes" true (err "link 0 1" <> "");
  check_bool "gap in ids" true
    (err "node 0 a:1\nnode 2 b:2\nlink 0 2" <> "");
  check_bool "duplicate node" true (err "node 0 a:1\nnode 0 b:2" <> "");
  check_bool "self loop" true (err "node 0 a:1\nlink 0 0" <> "");
  check_bool "unknown endpoint" true (err "node 0 a:1\nlink 0 7" <> "");
  check_bool "duplicate link" true
    (err "node 0 a:1\nnode 1 b:2\nlink 0 1\nlink 1 0" <> "");
  check_bool "bad port" true (err "node 0 a:99999" <> "");
  check_bool "unknown directive" true (err "nodes 0 a:1" <> "")

let () =
  Alcotest.run "strovl_rt"
    [
      ( "rt",
        [
          Alcotest.test_case "topofile parsing" `Quick topofile_parsing;
          Alcotest.test_case "wall-clock scheduling" `Quick runtime_scheduling;
          Alcotest.test_case "loopback overlay survives relay death" `Quick
            overlay_survives_relay_death;
        ] );
    ]
