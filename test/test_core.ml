(* Tests for the core overlay data structures and shared-state components:
   packets, wire messages, de-duplication, destination reordering, the
   connectivity graph, group state, and the routing level. *)

open Strovl_sim
module P = Strovl.Packet
module Msg = Strovl.Msg
module Dedup = Strovl.Dedup
module Deliver = Strovl.Deliver
module Conn_graph = Strovl.Conn_graph
module Group = Strovl.Group
module Route = Strovl.Route
module Graph = Strovl_topo.Graph
module Bitmask = Strovl_topo.Bitmask

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let flow ?(src = 1) ?(sport = 10) ?(dest = P.To_node 2) ?(dport = 20) () =
  { P.f_src = src; f_sport = sport; f_dest = dest; f_dport = dport }

let packet ?(seq = 0) ?(service = P.Best_effort) ?(routing = P.Link_state)
    ?(sent_at = 0) ?(bytes = 100) ?flow:(f = flow ()) () =
  P.make ~flow:f ~routing ~service ~seq ~sent_at ~bytes ()

(* ------------------------------ Packet ------------------------------ *)

let packet_service_classes () =
  let classes =
    List.map P.service_class
      [
        P.Best_effort;
        P.Reliable;
        P.Realtime { deadline = 1; n_requests = 1; m_retrans = 1 };
        P.It_priority 3;
        P.It_reliable;
        P.Fec { fec_k = 8; fec_r = 2 };
      ]
  in
  check_int "distinct classes" P.class_count
    (List.length (List.sort_uniq compare classes));
  check_int "priority irrelevant to class" (P.service_class (P.It_priority 0))
    (P.service_class (P.It_priority 9))

let packet_flow_compare () =
  let a = flow ~src:1 () and b = flow ~src:2 () in
  check_bool "orders by src" true (P.flow_compare a b < 0);
  check_int "equal" 0 (P.flow_compare a (flow ~src:1 ()));
  let g1 = flow ~dest:(P.To_group 5) () and g2 = flow ~dest:(P.Any_of_group 5) () in
  check_bool "dest kinds distinct" true (P.flow_compare g1 g2 <> 0)

let packet_header_and_hops () =
  let p = packet () in
  check_int "plain header" 28 (P.header_bytes p);
  let mask = Bitmask.create ~nlinks:100 in
  let p2 = packet ~routing:(P.Source_mask mask) () in
  check_int "mask adds 2 words" (28 + 16) (P.header_bytes p2);
  check_int "hops start 0" 0 p.P.hops;
  check_int "next hop increments" 1 (P.next_hop_copy p).P.hops;
  check_int "ingress default" (-1) p.P.ingress;
  check_int "with_ingress" 7 (P.with_ingress p 7).P.ingress

let packet_signable_distinct () =
  check_bool "seq matters" true
    (P.signable (packet ~seq:1 ()) <> P.signable (packet ~seq:2 ()));
  check_bool "src matters" true
    (P.signable (packet ~flow:(flow ~src:1 ()) ())
    <> P.signable (packet ~flow:(flow ~src:2 ()) ()))

(* -------------------------------- Msg -------------------------------- *)

let msg_sizes () =
  let data = Msg.Data { cls = 0; lseq = 1; pkt = packet ~bytes:1000 (); auth = None } in
  check_bool "data includes payload" true (Msg.bytes data > 1000);
  let small = Msg.Data { cls = 0; lseq = 1; pkt = packet ~bytes:10 (); auth = None } in
  check_bool "payload monotone" true (Msg.bytes data > Msg.bytes small);
  check_bool "control small" true (Msg.bytes (Msg.Rt_request { lseq = 5 }) < 20);
  let lsu =
    Msg.Lsu { origin = 0; lsu_seq = 1; links = [ (0, { Msg.li_up = true; li_metric = 5; li_loss = 0 }) ]; auth = None }
  in
  let lsu2 =
    Msg.Lsu
      {
        origin = 0;
        lsu_seq = 1;
        links =
          [
            (0, { Msg.li_up = true; li_metric = 5; li_loss = 0 });
            (1, { Msg.li_up = false; li_metric = 9; li_loss = 0 });
          ];
        auth = None;
      }
  in
  check_bool "lsu grows with links" true (Msg.bytes lsu2 > Msg.bytes lsu)

let msg_signable () =
  let lsu links seq =
    Msg.Lsu { origin = 3; lsu_seq = seq; links; auth = None }
  in
  let l1 = [ (0, { Msg.li_up = true; li_metric = 5; li_loss = 0 }) ] in
  let l2 = [ (0, { Msg.li_up = false; li_metric = 5; li_loss = 0 }) ] in
  check_bool "state matters" true (Msg.signable (lsu l1 1) <> Msg.signable (lsu l2 1));
  check_bool "seq matters" true (Msg.signable (lsu l1 1) <> Msg.signable (lsu l1 2));
  Alcotest.check_raises "hop-local not signable"
    (Invalid_argument "Msg.signable: hop-local message") (fun () ->
      ignore (Msg.signable (Msg.Hello { hseq = 1; sent_at = 0 })))

(* ------------------------------- Dedup ------------------------------- *)

let dedup_basics () =
  let d = Dedup.create () in
  let f = flow () in
  check_bool "first fresh" false (Dedup.seen d f 0);
  check_bool "repeat seen" true (Dedup.seen d f 0);
  check_bool "next fresh" false (Dedup.seen d f 1);
  check_bool "peek does not record" false (Dedup.peek d f 2);
  check_bool "still fresh" false (Dedup.seen d f 2);
  check_int "one flow" 1 (Dedup.flows d)

let dedup_flows_independent () =
  let d = Dedup.create () in
  let f1 = flow ~src:1 () and f2 = flow ~src:2 () in
  check_bool "f1 seq0" false (Dedup.seen d f1 0);
  check_bool "f2 seq0 independent" false (Dedup.seen d f2 0);
  check_int "two flows" 2 (Dedup.flows d)

let dedup_window_slide () =
  let d = Dedup.create ~window:16 () in
  let f = flow () in
  ignore (Dedup.seen d f 0);
  ignore (Dedup.seen d f 100);
  (* seq 0 fell out of the window: conservatively seen. *)
  check_bool "old treated seen" true (Dedup.seen d f 0);
  (* In-window slots not recorded are fresh. *)
  check_bool "recent unrecorded fresh" false (Dedup.seen d f 95);
  (* And the slide must have cleared stale ring slots (100-16=84..99). *)
  check_bool "ring slot reused correctly" false (Dedup.seen d f 99)

let qcheck_dedup_exactly_once =
  QCheck.Test.make ~name:"each in-window seq reported fresh exactly once" ~count:200
    QCheck.(list (int_bound 63))
    (fun seqs ->
      let d = Dedup.create ~window:64 () in
      let f = flow () in
      let fresh = List.filter (fun s -> not (Dedup.seen d f s)) seqs in
      List.sort_uniq compare fresh = List.sort_uniq compare seqs
      && List.length fresh = List.length (List.sort_uniq compare seqs))

(* ------------------------------ Deliver ------------------------------ *)

let deliver_unordered () =
  let e = Engine.create () in
  let got = ref [] in
  let d = Deliver.create e Deliver.Unordered ~deliver:(fun p -> got := p.P.seq :: !got) in
  List.iter (fun s -> Deliver.push d (packet ~seq:s ())) [ 2; 0; 1 ];
  Alcotest.(check (list int)) "immediate" [ 2; 0; 1 ] (List.rev !got)

let deliver_ordered () =
  let e = Engine.create () in
  let got = ref [] in
  let d = Deliver.create e Deliver.Ordered ~deliver:(fun p -> got := p.P.seq :: !got) in
  List.iter (fun s -> Deliver.push d (packet ~seq:s ())) [ 0; 2; 3; 1; 1; 4 ];
  Alcotest.(check (list int)) "reordered, dup dropped" [ 0; 1; 2; 3; 4 ] (List.rev !got);
  check_int "delivered" 5 (Deliver.delivered d);
  check_int "pending" 0 (Deliver.pending d)

let deliver_ordered_stalls_on_gap () =
  let e = Engine.create () in
  let got = ref [] in
  let d = Deliver.create e Deliver.Ordered ~deliver:(fun p -> got := p.P.seq :: !got) in
  List.iter (fun s -> Deliver.push d (packet ~seq:s ())) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "held" [] !got;
  check_int "pending" 3 (Deliver.pending d);
  Deliver.push d (packet ~seq:0 ());
  Alcotest.(check (list int)) "drains" [ 0; 1; 2; 3 ] (List.rev !got)

let deliver_deadline_skips () =
  let e = Engine.create () in
  let got = ref [] in
  let d =
    Deliver.create e (Deliver.Deadline (Time.ms 100))
      ~deliver:(fun p -> got := p.P.seq :: !got)
  in
  Deliver.push d (packet ~seq:0 ~sent_at:0 ());
  (* seq 1 missing; seq 2 buffered with sent_at 10ms -> given up at 110ms. *)
  ignore (Engine.schedule e ~delay:(Time.ms 10) (fun () ->
      Deliver.push d (packet ~seq:2 ~sent_at:(Time.ms 10) ())));
  Engine.run e;
  Alcotest.(check (list int)) "gap skipped at deadline" [ 0; 2 ] (List.rev !got);
  check_int "skipped slots" 1 (Deliver.skipped d);
  check_int "clock advanced to give-up" (Time.ms 110) (Engine.now e);
  (* The straggler arrives after its slot was abandoned: discarded. *)
  Deliver.push d (packet ~seq:1 ~sent_at:0 ());
  Alcotest.(check (list int)) "late discarded" [ 0; 2 ] (List.rev !got);
  check_int "late count" 1 (Deliver.discarded_late d)

let deliver_deadline_recovery_in_time () =
  let e = Engine.create () in
  let got = ref [] in
  let d =
    Deliver.create e (Deliver.Deadline (Time.ms 100))
      ~deliver:(fun p -> got := p.P.seq :: !got)
  in
  Deliver.push d (packet ~seq:1 ~sent_at:0 ());
  ignore (Engine.schedule e ~delay:(Time.ms 50) (fun () ->
      Deliver.push d (packet ~seq:0 ~sent_at:0 ())));
  Engine.run e;
  Alcotest.(check (list int)) "recovered in order" [ 0; 1 ] (List.rev !got);
  check_int "nothing skipped" 0 (Deliver.skipped d)

(* ---------------------------- Conn_graph ----------------------------- *)

let triangle () =
  let g = Graph.create ~n:3 in
  let l01 = Graph.add_link g 0 1 in
  let l12 = Graph.add_link g 1 2 in
  let l02 = Graph.add_link g 0 2 in
  (g, l01, l12, l02)

let conn_initial_up () =
  let g, l01, _, _ = triangle () in
  let c = Conn_graph.create ~self:0 g ~metric:(fun _ -> 10) in
  check_bool "usable" true (Conn_graph.usable c l01);
  check_int "metric" 10 (Conn_graph.metric c l01);
  check_int "version 0" 0 (Conn_graph.version c)

let conn_set_local () =
  let g, l01, _, _ = triangle () in
  let c = Conn_graph.create ~self:0 g ~metric:(fun _ -> 10) in
  (match Conn_graph.set_local c ~link:l01 ~up:false with
  | Some (Msg.Lsu { origin = 0; links; _ }) ->
    check_bool "lsu lists the link down" true
      (List.exists (fun (l, i) -> l = l01 && not i.Msg.li_up) links)
  | _ -> Alcotest.fail "expected an LSU");
  check_bool "no longer usable" false (Conn_graph.usable c l01);
  check_bool "idempotent" true (Conn_graph.set_local c ~link:l01 ~up:false = None);
  check_bool "version bumped" true (Conn_graph.version c > 0)

let conn_apply_lsu_seq_filter () =
  let g, l01, _, _ = triangle () in
  let c = Conn_graph.create ~self:0 g ~metric:(fun _ -> 10) in
  let info up = [ (l01, { Msg.li_up = up; li_metric = 10; li_loss = 0 }) ] in
  check_bool "new lsu accepted" true (Conn_graph.apply_lsu c ~origin:1 ~lsu_seq:5 (info false));
  check_bool "link down (peer side)" false (Conn_graph.usable c l01);
  check_bool "stale rejected" false (Conn_graph.apply_lsu c ~origin:1 ~lsu_seq:4 (info true));
  check_bool "still down" false (Conn_graph.usable c l01);
  check_bool "newer accepted" true (Conn_graph.apply_lsu c ~origin:1 ~lsu_seq:6 (info true));
  check_bool "back up" true (Conn_graph.usable c l01);
  check_int "highest seq tracked" 6 (Conn_graph.highest_seq c 1)

let conn_lying_about_remote_links () =
  let g, _, l12, _ = triangle () in
  let c = Conn_graph.create ~self:0 g ~metric:(fun _ -> 10) in
  (* Node 0 (a would-be liar's victim view): origin 1 may speak about l12
     (it is an endpoint) but a claim from origin 0 about l12 is ignored —
     and here, a forged claim naming an unrelated origin. *)
  ignore (Conn_graph.apply_lsu c ~origin:2 ~lsu_seq:1
            [ (l12, { Msg.li_up = false; li_metric = 1; li_loss = 0 }) ]);
  check_bool "endpoint may report" false (Conn_graph.usable c l12);
  let c2 = Conn_graph.create ~self:0 g ~metric:(fun _ -> 10) in
  let g01 = Strovl_topo.Graph.find_link g 0 1 in
  ignore g01;
  ignore (Conn_graph.apply_lsu c2 ~origin:2 ~lsu_seq:1
            [ (Option.get (Graph.find_link g 0 1), { Msg.li_up = false; li_metric = 1; li_loss = 0 }) ]);
  check_bool "non-endpoint claim ignored" true
    (Conn_graph.usable c2 (Option.get (Graph.find_link g 0 1)))

let conn_metric_both_sides_max () =
  let g, l01, _, _ = triangle () in
  let c = Conn_graph.create ~self:0 g ~metric:(fun _ -> 10) in
  ignore (Conn_graph.set_local_metric c ~link:l01 ~metric:30);
  check_int "max of sides" 30 (Conn_graph.metric c l01);
  ignore (Conn_graph.apply_lsu c ~origin:1 ~lsu_seq:1
            [ (l01, { Msg.li_up = true; li_metric = 50; li_loss = 0 }) ]);
  check_int "peer larger" 50 (Conn_graph.metric c l01)

let conn_metric_small_change_silent () =
  let g, l01, _, _ = triangle () in
  let c = Conn_graph.create ~self:0 g ~metric:(fun _ -> 1000) in
  check_bool "5% change silent" true
    (Conn_graph.set_local_metric c ~link:l01 ~metric:1050 = None);
  check_bool "20% change floods" true
    (Conn_graph.set_local_metric c ~link:l01 ~metric:1300 <> None)

let conn_loss_and_effective_metric () =
  let g, l01, _, _ = triangle () in
  let c = Conn_graph.create ~self:0 g ~metric:(fun _ -> 1000) in
  check_int "initial loss 0" 0 (Conn_graph.loss c l01);
  check_int "weight = metric by default" 1000 (Conn_graph.weight c l01);
  check_bool "small loss change silent" true
    (Conn_graph.set_local_loss c ~link:l01 ~loss:10 = None);
  check_bool "large loss change floods" true
    (Conn_graph.set_local_loss c ~link:l01 ~loss:200 <> None);
  check_int "loss recorded" 200 (Conn_graph.loss c l01);
  (* effective = metric / (1-0.2)^2 = 1000/0.64 = 1562 *)
  check_int "effective inflates" 1562 (Conn_graph.effective_metric c l01);
  Conn_graph.use_effective_metric c true;
  check_int "weight switches" 1562 (Conn_graph.weight c l01);
  (* peer reports worse loss: max wins *)
  ignore
    (Conn_graph.apply_lsu c ~origin:1 ~lsu_seq:1
       [ (l01, { Msg.li_up = true; li_metric = 1000; li_loss = 500 }) ]);
  check_int "max of sides" 500 (Conn_graph.loss c l01);
  (* near-dead link becomes effectively unusable *)
  ignore (Conn_graph.set_local_loss c ~link:l01 ~loss:900);
  check_bool "80%+ loss = effectively infinite" true
    (Conn_graph.effective_metric c l01 > 1_000_000_000);
  check_bool "clamped" true
    (Conn_graph.set_local_loss c ~link:l01 ~loss:5000 = None
    || Conn_graph.loss c l01 <= 1000)

let conn_own_lsu_echo_ignored () =
  let g, l01, _, _ = triangle () in
  let c = Conn_graph.create ~self:0 g ~metric:(fun _ -> 10) in
  check_bool "own echo rejected" false
    (Conn_graph.apply_lsu c ~origin:0 ~lsu_seq:99
       [ (l01, { Msg.li_up = false; li_metric = 1; li_loss = 0 }) ])

(* ------------------------------- Group ------------------------------- *)

let group_join_leave () =
  let gr = Group.create ~self:0 ~nnodes:4 in
  check_bool "first join floods" true (Group.join_local gr ~group:7 ~port:1 <> None);
  check_bool "second port silent" true (Group.join_local gr ~group:7 ~port:2 = None);
  Alcotest.(check (list int)) "local ports" [ 1; 2 ] (Group.local_ports gr ~group:7);
  check_bool "leave one port silent" true (Group.leave_local gr ~group:7 ~port:1 = None);
  check_bool "last leave floods" true (Group.leave_local gr ~group:7 ~port:2 <> None);
  check_bool "no longer member" false (Group.has_local gr ~group:7)

let group_apply_update () =
  let gr = Group.create ~self:0 ~nnodes:4 in
  check_bool "accepted" true (Group.apply_update gr ~origin:2 ~gseq:1 [ (7, true) ]);
  Alcotest.(check (list int)) "members" [ 2 ] (Group.member_nodes gr ~group:7);
  check_bool "stale rejected" false (Group.apply_update gr ~origin:2 ~gseq:1 [ (7, false) ]);
  check_bool "newer accepted" true (Group.apply_update gr ~origin:2 ~gseq:2 [ (7, false) ]);
  Alcotest.(check (list int)) "gone" [] (Group.member_nodes gr ~group:7)

let group_snapshot_semantics () =
  let gr = Group.create ~self:0 ~nnodes:4 in
  ignore (Group.apply_update gr ~origin:2 ~gseq:1 [ (7, true); (8, true) ]);
  (* A later snapshot that only mentions 8 implies leaving 7. *)
  ignore (Group.apply_update gr ~origin:2 ~gseq:2 [ (8, true) ]);
  Alcotest.(check (list int)) "implicit leave" [] (Group.member_nodes gr ~group:7);
  Alcotest.(check (list int)) "kept" [ 2 ] (Group.member_nodes gr ~group:8);
  Alcotest.(check (list int)) "groups" [ 8 ] (Group.groups gr)

let group_version_bumps () =
  let gr = Group.create ~self:0 ~nnodes:4 in
  let v0 = Group.version gr in
  ignore (Group.join_local gr ~group:7 ~port:1);
  check_bool "join bumps" true (Group.version gr > v0);
  let v1 = Group.version gr in
  ignore (Group.apply_update gr ~origin:1 ~gseq:1 [ (7, true) ]);
  check_bool "remote join bumps" true (Group.version gr > v1)

(* ------------------------------- Route ------------------------------- *)

let route_fixture () =
  let g, l01, l12, l02 = triangle () in
  let c = Conn_graph.create ~self:0 g ~metric:(fun l -> if l = l02 then 30 else 10) in
  let gr = Group.create ~self:0 ~nnodes:3 in
  (Route.create c gr, c, gr, (l01, l12, l02))

let route_next_hop_and_reroute () =
  let r, c, _, (l01, l12, l02) = route_fixture () in
  ignore l12;
  (* 0->2: via 1 costs 20 < direct 30. *)
  Alcotest.(check (option (pair int int))) "via 1" (Some (1, l01)) (Route.next_hop r ~dst:2);
  Alcotest.(check (option int)) "distance" (Some 20) (Route.distance r ~dst:2);
  ignore (Conn_graph.set_local c ~link:l01 ~up:false);
  Alcotest.(check (option (pair int int))) "rerouted direct" (Some (2, l02))
    (Route.next_hop r ~dst:2);
  check_bool "reachable" true (Route.reachable r ~dst:2)

let route_unreachable () =
  let r, c, _, (l01, _, l02) = route_fixture () in
  ignore (Conn_graph.set_local c ~link:l01 ~up:false);
  ignore (Conn_graph.set_local c ~link:l02 ~up:false);
  Alcotest.(check (option (pair int int))) "no hop" None (Route.next_hop r ~dst:2);
  check_bool "unreachable" false (Route.reachable r ~dst:2)

let route_anycast_nearest () =
  let r, _, gr, _ = route_fixture () in
  ignore (Group.apply_update gr ~origin:1 ~gseq:1 [ (5, true) ]);
  ignore (Group.apply_update gr ~origin:2 ~gseq:1 [ (5, true) ]);
  Alcotest.(check (option int)) "nearest is 1" (Some 1) (Route.anycast_target r ~group:5);
  ignore (Group.join_local gr ~group:5 ~port:9);
  Alcotest.(check (option int)) "self wins" (Some 0) (Route.anycast_target r ~group:5)

let route_mcast_out_links () =
  let r, _, gr, (l01, l12, l02) = route_fixture () in
  ignore l02;
  ignore (Group.apply_update gr ~origin:1 ~gseq:1 [ (5, true) ]);
  ignore (Group.apply_update gr ~origin:2 ~gseq:1 [ (5, true) ]);
  (* Cheapest tree: 0 -10- 1 -10- 2 (the direct 0-2 link costs 30). *)
  Alcotest.(check (list int)) "root sends on l01" [ l01 ]
    (Route.mcast_out_links r ~source:0 ~group:5);
  check_int "tree links" 2 (List.length (Route.mcast_tree_links r ~source:0 ~group:5));
  check_bool "chain through node 1" true
    (List.mem l12 (Route.mcast_tree_links r ~source:0 ~group:5))

let route_usable_mask_tracks_state () =
  let r, c, _, (l01, _, _) = route_fixture () in
  check_int "all usable" 3 (Bitmask.count (Route.usable_mask r));
  ignore (Conn_graph.set_local c ~link:l01 ~up:false);
  check_int "one down" 2 (Bitmask.count (Route.usable_mask r));
  check_bool "down excluded" false (Bitmask.mem (Route.usable_mask r) l01)

let route_dissem_mask () =
  let r, _, _, (l01, l12, l02) = route_fixture () in
  let m = Route.dissem_mask r ~dst:2 Strovl_topo.Dissem.Two_disjoint in
  check_bool "uses both routes" true
    (Bitmask.mem m l02 && Bitmask.mem m l01 && Bitmask.mem m l12)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "strovl_core"
    [
      ( "packet",
        [
          Alcotest.test_case "service classes" `Quick packet_service_classes;
          Alcotest.test_case "flow compare" `Quick packet_flow_compare;
          Alcotest.test_case "header/hops/ingress" `Quick packet_header_and_hops;
          Alcotest.test_case "signable" `Quick packet_signable_distinct;
        ] );
      ( "msg",
        [
          Alcotest.test_case "sizes" `Quick msg_sizes;
          Alcotest.test_case "signable" `Quick msg_signable;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "basics" `Quick dedup_basics;
          Alcotest.test_case "flows independent" `Quick dedup_flows_independent;
          Alcotest.test_case "window slide" `Quick dedup_window_slide;
          q qcheck_dedup_exactly_once;
        ] );
      ( "deliver",
        [
          Alcotest.test_case "unordered" `Quick deliver_unordered;
          Alcotest.test_case "ordered" `Quick deliver_ordered;
          Alcotest.test_case "stalls on gap" `Quick deliver_ordered_stalls_on_gap;
          Alcotest.test_case "deadline skips" `Quick deliver_deadline_skips;
          Alcotest.test_case "deadline recovery" `Quick deliver_deadline_recovery_in_time;
        ] );
      ( "conn_graph",
        [
          Alcotest.test_case "initial up" `Quick conn_initial_up;
          Alcotest.test_case "set local" `Quick conn_set_local;
          Alcotest.test_case "lsu seq filter" `Quick conn_apply_lsu_seq_filter;
          Alcotest.test_case "remote-link lies ignored" `Quick conn_lying_about_remote_links;
          Alcotest.test_case "metric both sides" `Quick conn_metric_both_sides_max;
          Alcotest.test_case "metric threshold" `Quick conn_metric_small_change_silent;
          Alcotest.test_case "loss + effective metric" `Quick conn_loss_and_effective_metric;
          Alcotest.test_case "own echo ignored" `Quick conn_own_lsu_echo_ignored;
        ] );
      ( "group",
        [
          Alcotest.test_case "join/leave" `Quick group_join_leave;
          Alcotest.test_case "apply update" `Quick group_apply_update;
          Alcotest.test_case "snapshot semantics" `Quick group_snapshot_semantics;
          Alcotest.test_case "version bumps" `Quick group_version_bumps;
        ] );
      ( "route",
        [
          Alcotest.test_case "next hop + reroute" `Quick route_next_hop_and_reroute;
          Alcotest.test_case "unreachable" `Quick route_unreachable;
          Alcotest.test_case "anycast nearest" `Quick route_anycast_nearest;
          Alcotest.test_case "mcast out links" `Quick route_mcast_out_links;
          Alcotest.test_case "usable mask" `Quick route_usable_mask_tracks_state;
          Alcotest.test_case "dissem mask" `Quick route_dissem_mask;
        ] );
    ]
