(* Unit and property tests for the discrete-event simulation substrate. *)

open Strovl_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------- Time ------------------------------- *)

let time_units () =
  check_int "us" 7 (Time.us 7);
  check_int "ms" 3_000 (Time.ms 3);
  check_int "sec" 2_000_000 (Time.sec 2);
  check_int "of_ms_float rounds" 1_500 (Time.of_ms_float 1.5);
  check_int "of_sec_float" 250_000 (Time.of_sec_float 0.25);
  check_float "to_ms_float" 1.5 (Time.to_ms_float 1_500);
  check_float "to_sec_float" 0.25 (Time.to_sec_float 250_000)

let time_arith () =
  check_int "add" 30 (Time.add 10 20);
  check_int "sub may go negative" (-10) (Time.sub 10 20);
  check_int "min" 10 (Time.min 10 20);
  check_int "max" 20 (Time.max 10 20);
  check_bool "compare" true (Time.compare 1 2 < 0)

let time_pp () =
  Alcotest.(check string) "us" "42us" (Time.to_string 42);
  Alcotest.(check string) "ms" "1.5ms" (Time.to_string 1_500);
  Alcotest.(check string) "s" "2s" (Time.to_string 2_000_000);
  Alcotest.(check string) "inf" "inf" (Time.to_string Time.infinity)

(* -------------------------------- Rng ------------------------------- *)

let rng_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_split_named_stable () =
  let a = Rng.create 5L and b = Rng.create 5L in
  let ca = Rng.split_named a "x" and cb = Rng.split_named b "x" in
  Alcotest.(check int64) "same named child" (Rng.int64 ca) (Rng.int64 cb);
  let a = Rng.create 5L in
  let c1 = Rng.split_named a "x" in
  let a2 = Rng.create 5L in
  let c2 = Rng.split_named a2 "y" in
  check_bool "different names differ" true (Rng.int64 c1 <> Rng.int64 c2)

let rng_bernoulli_freq () =
  let rng = Rng.create 1L in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  check_bool "p=0.3 within 2%" true (Float.abs (f -. 0.3) < 0.02)

let rng_exponential_mean () =
  let rng = Rng.create 2L in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng 50.
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean ~50" true (Float.abs (mean -. 50.) < 2.)

let rng_shuffle_permutes () =
  let rng = Rng.create 3L in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted;
  check_bool "actually shuffled" true (arr <> Array.init 50 (fun i -> i))

let qcheck_rng_bounds =
  QCheck.Test.make ~name:"rng int/float bounds" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Rng.create (Int64.of_int seed) in
      let i = Rng.int rng bound in
      let f = Rng.float rng (float_of_int bound) in
      i >= 0 && i < bound && f >= 0. && f < float_of_int bound)

(* ------------------------------- Heap ------------------------------- *)

let heap_sorted_order () =
  let h = Heap.create () in
  List.iteri (fun i t -> Heap.push h ~time:t ~seq:i i) [ 5; 1; 9; 3; 7 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (t, _, _) ->
      order := t :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 1; 3; 5; 7; 9 ] (List.rev !order)

let heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:42 ~seq:i i
  done;
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo among equal times"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !order)

let heap_peek_size () =
  let h = Heap.create () in
  check_bool "empty" true (Heap.is_empty h);
  Heap.push h ~time:3 ~seq:0 "a";
  Heap.push h ~time:1 ~seq:1 "b";
  check_int "size" 2 (Heap.size h);
  (match Heap.peek h with
  | Some (1, 1, "b") -> ()
  | _ -> Alcotest.fail "peek should see minimum");
  check_int "peek does not remove" 2 (Heap.size h);
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let qcheck_heap_sorted =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list (pair (int_bound 1000) (int_bound 1000)))
    (fun items ->
      let h = Heap.create () in
      List.iteri (fun i (t, _) -> Heap.push h ~time:t ~seq:i t) items;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (t, _, _) -> drain (t :: acc)
      in
      let out = drain [] in
      out = List.sort compare out)

(* ------------------------------ Engine ------------------------------ *)

let engine_order_and_clock () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:30 (fun () -> log := (3, Engine.now e) :: !log));
  ignore (Engine.schedule e ~delay:10 (fun () -> log := (1, Engine.now e) :: !log));
  ignore (Engine.schedule e ~delay:20 (fun () -> log := (2, Engine.now e) :: !log));
  Engine.run e;
  Alcotest.(check (list (pair int int)))
    "ordered with clock" [ (1, 10); (2, 20); (3, 30) ] (List.rev !log)

let engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:5 (fun () -> fired := true) in
  Engine.cancel e h;
  check_bool "pending reports cancelled" false (Engine.is_pending e h);
  Engine.run e;
  check_bool "cancelled did not fire" false !fired

let engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter
    (fun d -> ignore (Engine.schedule e ~delay:d (fun () -> incr count)))
    [ 10; 20; 30; 40 ];
  Engine.run ~until:25 e;
  check_int "only events <= until" 2 !count;
  check_int "clock advances to until" 25 (Engine.now e);
  Engine.run e;
  check_int "drains the rest" 4 !count

let engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:10 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:5 (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_int "clock" 15 (Engine.now e)

let engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 5 do
    ignore (Engine.schedule e ~delay:7 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5 ] (List.rev !log)

let engine_errors () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:10 ignore);
  Engine.run e;
  Alcotest.check_raises "schedule_at in the past"
    (Invalid_argument "Engine.schedule_at: at=5 < now=10") (fun () ->
      ignore (Engine.schedule_at e ~at:5 ignore));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Engine.schedule e ~delay:(-1) ignore))

let engine_step_and_pending () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1 ignore);
  ignore (Engine.schedule e ~delay:2 ignore);
  check_int "pending" 2 (Engine.pending_events e);
  check_bool "step" true (Engine.step e);
  check_int "pending after step" 1 (Engine.pending_events e);
  Engine.clear e;
  check_bool "step empty" false (Engine.step e)

(* ------------------------------ Stats ------------------------------- *)

let stats_series_basics () =
  let s = Stats.Series.create () in
  check_bool "empty" true (Stats.Series.is_empty s);
  List.iter (Stats.Series.add s) [ 1.; 2.; 3.; 4.; 5. ];
  check_int "count" 5 (Stats.Series.count s);
  check_float "mean" 3. (Stats.Series.mean s);
  check_float "min" 1. (Stats.Series.min s);
  check_float "max" 5. (Stats.Series.max s);
  check_float "median" 3. (Stats.Series.median s);
  check_float "sum" 15. (Stats.Series.sum s);
  check_float "stddev" (sqrt 2.5) (Stats.Series.stddev s)

let stats_percentile_nearest_rank () =
  let s = Stats.Series.create () in
  for i = 1 to 100 do
    Stats.Series.add s (float_of_int i)
  done;
  check_float "p50" 50. (Stats.Series.percentile s 50.);
  check_float "p99" 99. (Stats.Series.percentile s 99.);
  check_float "p100" 100. (Stats.Series.percentile s 100.);
  check_float "p1" 1. (Stats.Series.percentile s 1.)

let stats_jitter () =
  let s = Stats.Series.create () in
  List.iter (Stats.Series.add s) [ 10.; 12.; 9.; 9. ];
  (* |12-10| + |9-12| + |9-9| = 5 over 3 gaps *)
  check_float "jitter" (5. /. 3.) (Stats.Series.jitter s)

let stats_clear_and_counter () =
  let s = Stats.Series.create () in
  Stats.Series.add s 1.;
  Stats.Series.clear s;
  check_int "cleared" 0 (Stats.Series.count s);
  check_float "empty mean" 0. (Stats.Series.mean s);
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  check_int "counter" 5 (Stats.Counter.get c);
  Stats.Counter.clear c;
  check_int "cleared counter" 0 (Stats.Counter.get c);
  check_float "ratio" 0.5 (Stats.ratio 1 2);
  check_float "ratio den 0" 0. (Stats.ratio 1 0)

(* Naive sort-based oracles for Series summary queries. *)
let oracle_percentile xs p =
  match xs with
  | [] -> 0.
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    a.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let oracle_jitter xs =
  match xs with
  | [] | [ _ ] -> 0.
  | x :: rest ->
    let diffs, _ =
      List.fold_left (fun (acc, prev) x -> (acc +. Float.abs (x -. prev), x)) (0., x) rest
    in
    diffs /. float_of_int (List.length rest)

let series_of xs =
  let s = Stats.Series.create () in
  List.iter (Stats.Series.add s) xs;
  s

let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs b)

let sample_gen =
  QCheck.(list_of_size Gen.(0 -- 60) (map float_of_int (int_range (-500) 500)))

let qcheck_percentile_oracle =
  QCheck.Test.make ~name:"percentile matches sort oracle" ~count:500
    QCheck.(pair sample_gen (float_bound_inclusive 100.))
    (fun (xs, p) ->
      close (Stats.Series.percentile (series_of xs) p) (oracle_percentile xs p))

let qcheck_median_oracle =
  QCheck.Test.make ~name:"median is nearest-rank p50" ~count:500 sample_gen
    (fun xs -> close (Stats.Series.median (series_of xs)) (oracle_percentile xs 50.))

let qcheck_jitter_oracle =
  QCheck.Test.make ~name:"jitter matches consecutive-diff oracle" ~count:500
    sample_gen (fun xs -> close (Stats.Series.jitter (series_of xs)) (oracle_jitter xs))

let stats_oracle_edges () =
  let empty = series_of [] in
  check_float "empty percentile" 0. (Stats.Series.percentile empty 99.);
  check_float "empty median" 0. (Stats.Series.median empty);
  check_float "empty jitter" 0. (Stats.Series.jitter empty);
  let one = series_of [ 42. ] in
  check_float "single p0" 42. (Stats.Series.percentile one 0.);
  check_float "single p100" 42. (Stats.Series.percentile one 100.);
  check_float "single median" 42. (Stats.Series.median one);
  check_float "single jitter" 0. (Stats.Series.jitter one)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min..max" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let s = Stats.Series.create () in
      List.iter (Stats.Series.add s) xs;
      let v = Stats.Series.percentile s p in
      v >= Stats.Series.min s && v <= Stats.Series.max s)

(* ------------------------------- Loss ------------------------------- *)

let loss_perfect_always () =
  check_bool "perfect" false (Loss.drops Loss.perfect ~now:0);
  check_bool "always" true (Loss.drops Loss.always ~now:0);
  check_float "perfect rate" 0. (Loss.mean_loss_rate Loss.perfect);
  check_float "always rate" 1. (Loss.mean_loss_rate Loss.always)

let loss_bernoulli_rate () =
  let l = Loss.bernoulli (Rng.create 7L) ~p:0.25 in
  let n = 20_000 in
  let drops = ref 0 in
  for i = 1 to n do
    if Loss.drops l ~now:i then incr drops
  done;
  let f = float_of_int !drops /. float_of_int n in
  check_bool "~0.25" true (Float.abs (f -. 0.25) < 0.02);
  check_float "analytic" 0.25 (Loss.mean_loss_rate l)

let loss_gilbert_rate () =
  let l =
    Loss.gilbert_elliott (Rng.create 11L) ~p_good_loss:0. ~p_bad_loss:1.
      ~mean_good:(Time.ms 90) ~mean_bad:(Time.ms 10)
  in
  check_float "analytic 10%" 0.1 (Loss.mean_loss_rate l);
  (* Empirical: sample a packet every 100us over 200 simulated seconds. *)
  let drops = ref 0 and n = ref 0 in
  let t = ref 0 in
  while !t < Time.sec 200 do
    incr n;
    if Loss.drops l ~now:!t then incr drops;
    t := !t + 100
  done;
  let f = float_of_int !drops /. float_of_int !n in
  check_bool "empirical ~10%" true (Float.abs (f -. 0.1) < 0.02)

let loss_gilbert_bursty () =
  (* Consecutive losses should be far more frequent than under Bernoulli at
     the same rate: P(loss | previous lost) >> p. *)
  let l =
    Loss.gilbert_elliott (Rng.create 13L) ~p_good_loss:0. ~p_bad_loss:1.
      ~mean_good:(Time.ms 95) ~mean_bad:(Time.ms 5)
  in
  let prev = ref false in
  let pairs = ref 0 and both = ref 0 in
  let t = ref 0 in
  while !t < Time.sec 100 do
    let d = Loss.drops l ~now:!t in
    if !prev then begin
      incr pairs;
      if d then incr both
    end;
    prev := d;
    t := !t + 100
  done;
  let cond = float_of_int !both /. float_of_int (max 1 !pairs) in
  check_bool "correlated (P(loss|loss) > 0.5)" true (cond > 0.5)

let loss_outage_window () =
  let l = Loss.periodic_outage ~period:(Time.ms 100) ~outage:(Time.ms 10) ~offset:(Time.ms 50) in
  check_bool "before offset" false (Loss.drops l ~now:0);
  check_bool "inside outage" true (Loss.drops l ~now:(Time.ms 55));
  check_bool "after outage" false (Loss.drops l ~now:(Time.ms 65));
  check_bool "next period" true (Loss.drops l ~now:(Time.ms 152));
  check_bool "in_burst" true (Loss.in_burst l ~now:(Time.ms 55));
  check_float "rate" 0.1 (Loss.mean_loss_rate l)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "strovl_sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick time_units;
          Alcotest.test_case "arith" `Quick time_arith;
          Alcotest.test_case "pp" `Quick time_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "split_named stable" `Quick rng_split_named_stable;
          Alcotest.test_case "bernoulli freq" `Quick rng_bernoulli_freq;
          Alcotest.test_case "exponential mean" `Quick rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick rng_shuffle_permutes;
          q qcheck_rng_bounds;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorted order" `Quick heap_sorted_order;
          Alcotest.test_case "fifo ties" `Quick heap_fifo_ties;
          Alcotest.test_case "peek/size/clear" `Quick heap_peek_size;
          q qcheck_heap_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "order and clock" `Quick engine_order_and_clock;
          Alcotest.test_case "cancel" `Quick engine_cancel;
          Alcotest.test_case "run until" `Quick engine_run_until;
          Alcotest.test_case "nested" `Quick engine_nested_scheduling;
          Alcotest.test_case "same-time fifo" `Quick engine_same_time_fifo;
          Alcotest.test_case "errors" `Quick engine_errors;
          Alcotest.test_case "step/pending" `Quick engine_step_and_pending;
        ] );
      ( "stats",
        [
          Alcotest.test_case "series basics" `Quick stats_series_basics;
          Alcotest.test_case "percentile" `Quick stats_percentile_nearest_rank;
          Alcotest.test_case "jitter" `Quick stats_jitter;
          Alcotest.test_case "clear/counter" `Quick stats_clear_and_counter;
          Alcotest.test_case "oracle edges" `Quick stats_oracle_edges;
          q qcheck_percentile_bounds;
          q qcheck_percentile_oracle;
          q qcheck_median_oracle;
          q qcheck_jitter_oracle;
        ] );
      ( "loss",
        [
          Alcotest.test_case "perfect/always" `Quick loss_perfect_always;
          Alcotest.test_case "bernoulli rate" `Quick loss_bernoulli_rate;
          Alcotest.test_case "gilbert rate" `Quick loss_gilbert_rate;
          Alcotest.test_case "gilbert bursty" `Quick loss_gilbert_bursty;
          Alcotest.test_case "outage window" `Quick loss_outage_window;
        ] );
    ]
