(* Wire-format tests: exact roundtrips for every message kind (including
   qcheck-generated arbitrary messages) and hostile-input rejection. *)

module P = Strovl.Packet
module Msg = Strovl.Msg
module Wire = Strovl.Wire
module Bitmask = Strovl_topo.Bitmask

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let roundtrip msg =
  match Wire.decode (Wire.encode msg) with
  | Ok m -> m
  | Error e -> Alcotest.failf "decode failed: %s" e

let sample_packet ?(routing = P.Link_state) ?(service = P.Best_effort)
    ?(auth = None) ?(hops = 0) ?(ingress = -1) ?(replay = false) () =
  let p =
    P.make
      ~flow:{ P.f_src = 3; f_sport = 4001; f_dest = P.To_group 17; f_dport = 88 }
      ~routing ~service ~seq:1234 ~sent_at:987654 ~bytes:1316 ~tag:"video"
      ?auth:(match auth with Some a -> Some a | None -> None)
      ()
  in
  let p = if ingress >= 0 then P.with_ingress p ingress else p in
  let p = if replay then P.as_replay p else p in
  let rec bump p n = if n = 0 then p else bump (P.next_hop_copy p) (n - 1) in
  bump p hops

let data_roundtrip () =
  let mask = Bitmask.of_links ~nlinks:100 [ 0; 13; 64; 99 ] in
  let pkt =
    sample_packet ~routing:(P.Source_mask mask)
      ~service:(P.Realtime { deadline = 65_000; n_requests = 1; m_retrans = 1 })
      ~auth:(Some 0x1234_5678_9abc_def0L) ~hops:3 ~ingress:7 ~replay:true ()
  in
  let msg = Msg.Data { cls = 2; lseq = 42; pkt; auth = Some (-1L) } in
  check_bool "exact roundtrip" true (roundtrip msg = msg)

let control_roundtrips () =
  let msgs =
    [
      Msg.Link_ack { cls = 1; cum = 999 };
      Msg.Link_nack { cls = 1; missing = [ 3; 7; 12 ] };
      Msg.Link_nack { cls = 4; missing = [] };
      Msg.Rt_request { lseq = 55 };
      Msg.It_ack { lseq = 0 };
      Msg.Hello { hseq = 17; sent_at = 1_000_000 };
      Msg.Hello_ack { hseq = 17; echo = 999_900 };
      Msg.Probe { pseq = 4242; sent_at = 123_456_789 };
      Msg.Probe_ack { pseq = 4242; echo = 123_450_000 };
      Msg.Lsu
        {
          origin = 4;
          lsu_seq = 12;
          links =
            [ (0, { Msg.li_up = true; li_metric = 10_700; li_loss = 0 });
              (5, { Msg.li_up = false; li_metric = 1; li_loss = 0 }) ];
          auth = Some 77L;
        };
      Msg.Group_update
        { origin = 9; gseq = 3; memb = [ (100, true); (200, false) ]; auth = None };
    ]
  in
  List.iter (fun m -> check_bool "roundtrip" true (roundtrip m = m)) msgs

let service_variants_roundtrip () =
  List.iter
    (fun service ->
      let msg =
        Msg.Data { cls = P.service_class service; lseq = 1;
                   pkt = sample_packet ~service (); auth = None }
      in
      check_bool "service roundtrip" true (roundtrip msg = msg))
    [
      P.Best_effort;
      P.Reliable;
      P.Realtime { deadline = 200_000; n_requests = 3; m_retrans = 3 };
      P.It_priority 9;
      P.It_reliable;
    ]

let dest_variants_roundtrip () =
  List.iter
    (fun dest ->
      let pkt =
        P.make
          ~flow:{ P.f_src = 0; f_sport = 1; f_dest = dest; f_dport = 2 }
          ~routing:P.Link_state ~service:P.Best_effort ~seq:0 ~sent_at:0
          ~bytes:0 ()
      in
      let msg = Msg.Data { cls = 0; lseq = 1; pkt; auth = None } in
      check_bool "dest roundtrip" true (roundtrip msg = msg))
    [ P.To_node 11; P.To_group 500; P.Any_of_group 500 ]

let size_accounting () =
  let pkt = sample_packet () in
  let msg = Msg.Data { cls = 0; lseq = 1; pkt; auth = None } in
  check_int "size = header + payload" (Wire.size msg)
    (String.length (Wire.encode msg) + 1316);
  check_int "control payload 0" 0 (Wire.payload_bytes (Msg.Rt_request { lseq = 1 }));
  (* The analytic estimate used by the bandwidth model stays within a small
     tolerance of the real encoding. *)
  let diff = abs (Msg.bytes msg - Wire.size msg) in
  check_bool "analytic estimate close" true (diff <= 32)

let multiword_mask_roundtrip () =
  (* A mask spanning three 64-bit words, with bits in every word, survives
     the word-wise encode/decode path exactly. *)
  let bits = [ 0; 63; 64; 100; 127; 128; 129 ] in
  let mask = Bitmask.of_links ~nlinks:130 bits in
  let pkt = sample_packet ~routing:(P.Source_mask mask) () in
  let msg = Msg.Data { cls = 0; lseq = 1; pkt; auth = None } in
  (match roundtrip msg with
  | Msg.Data { pkt = p; _ } -> (
    match p.P.routing with
    | P.Source_mask m ->
      check_bool "mask equal" true (Bitmask.equal m mask);
      check_int "links preserved" (List.length bits) (Bitmask.count m)
    | P.Link_state -> Alcotest.fail "routing kind changed")
  | _ -> Alcotest.fail "message kind changed");
  (* of_words mirrors words, and drops bits at or above nlinks. *)
  let rebuilt = Bitmask.of_words ~nlinks:130 (Bitmask.words mask) in
  check_bool "of_words inverse of words" true (Bitmask.equal rebuilt mask);
  let dirty = Bitmask.create ~nlinks:70 in
  Bitmask.set_word dirty 1 (-1L) (* bits 64..127, only 64..69 valid *);
  check_int "set_word drops high bits" 6 (Bitmask.count dirty);
  check_bool "word count mismatch rejected" true
    (match Bitmask.of_words ~nlinks:130 [| 0L |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let hostile_inputs_rejected () =
  let bad s =
    match Wire.decode s with Ok _ -> false | Error _ -> true
  in
  check_bool "empty" true (bad "");
  check_bool "unknown tag" true (bad "\xff");
  check_bool "truncated data" true (bad "\x01\x02");
  check_bool "truncated lsu" true (bad "\x08\x00\x01");
  (* Valid prefix with trailing garbage must be rejected too. *)
  let good = Wire.encode (Msg.Rt_request { lseq = 7 }) in
  check_bool "trailing bytes" true (bad (good ^ "x"));
  (* Oversized bitmask word count. *)
  check_bool "oversized mask" true
    (bad "\x01\x00\x00\x00\x00\x01\x00\x00\x03\x00\x10\x00\x00\x00\x00\x01\x00\x00\x00\x02\x01\xff\xff");
  (* A list whose claimed element count exceeds the bytes remaining in the
     buffer must be rejected up front, not by allocating 65535 cells and
     failing mid-read: Link_nack claiming 0xffff missing seqs with a 3-byte
     body, and an Lsu likewise. *)
  check_bool "nack list count beyond buffer" true (bad "\x03\x01\xff\xff\x00\x00\x00");
  check_bool "lsu list count beyond buffer" true
    (bad "\x08\x00\x04\x00\x00\x00\x0c\xff\xff\x00")

let corrupted_bytes_never_raise () =
  (* Flipping any single byte of a valid message must yield Ok or Error,
     never an exception. *)
  let msg =
    Msg.Lsu
      {
        origin = 4;
        lsu_seq = 12;
        links = [ (0, { Msg.li_up = true; li_metric = 10_700; li_loss = 0 }) ];
        auth = Some 77L;
      }
  in
  let s = Bytes.of_string (Wire.encode msg) in
  for i = 0 to Bytes.length s - 1 do
    let orig = Bytes.get s i in
    Bytes.set s i (Char.chr ((Char.code orig + 1) land 0xff));
    (match Wire.decode (Bytes.to_string s) with Ok _ | Error _ -> ());
    Bytes.set s i orig
  done;
  check_bool "survived all corruptions" true true

(* qcheck: arbitrary messages roundtrip exactly. *)

let gen_dest =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> P.To_node n) (int_bound 1000);
        map (fun g -> P.To_group g) (int_bound 100000);
        map (fun g -> P.Any_of_group g) (int_bound 100000);
      ])

let gen_service =
  QCheck.Gen.(
    oneof
      [
        return P.Best_effort;
        return P.Reliable;
        map3
          (fun d n m ->
            P.Realtime { deadline = d; n_requests = 1 + n; m_retrans = 1 + m })
          (int_bound 1_000_000) (int_bound 8) (int_bound 8);
        map (fun p -> P.It_priority p) (int_bound 100);
        return P.It_reliable;
        map2 (fun k r -> P.Fec { fec_k = 1 + k; fec_r = 1 + r })
          (int_bound 30) (int_bound 7);
      ])

let gen_routing =
  QCheck.Gen.(
    oneof
      [
        return P.Link_state;
        map
          (fun links ->
            P.Source_mask (Bitmask.of_links ~nlinks:200 links))
          (list_size (int_bound 20) (int_bound 199));
      ])

let gen_packet =
  QCheck.Gen.(
    let* f_src = int_bound 60000 in
    let* f_sport = int_bound 100000 in
    let* f_dest = gen_dest in
    let* f_dport = int_bound 100000 in
    let* routing = gen_routing in
    let* service = gen_service in
    let* seq = int_bound 1_000_000 in
    let* sent_at = int_bound 1_000_000_000 in
    let* bytes = int_bound 65536 in
    let* tag = string_size (int_bound 32) in
    let* auth = opt (map Int64.of_int (int_bound 1_000_000)) in
    let* hops = int_bound 63 in
    let* ingress = int_range (-1) 100 in
    let* replay = bool in
    let p =
      P.make
        ~flow:{ P.f_src; f_sport; f_dest; f_dport }
        ~routing ~service ~seq ~sent_at ~bytes ~tag ?auth ()
    in
    let p = if ingress >= 0 then P.with_ingress p ingress else p in
    let p = if replay then P.as_replay p else p in
    let rec bump p n = if n = 0 then p else bump (P.next_hop_copy p) (n - 1) in
    return (bump p hops))

let gen_msg =
  QCheck.Gen.(
    oneof
      [
        (let* cls = int_bound 4 in
         let* lseq = int_bound 1_000_000 in
         let* auth = opt (map Int64.of_int (int_bound 1_000_000)) in
         let* pkt = gen_packet in
         return (Msg.Data { cls; lseq; pkt; auth }));
        (let* cls = int_bound 4 in
         let* cum = int_bound 1_000_000 in
         return (Msg.Link_ack { cls; cum }));
        (let* cls = int_bound 4 in
         let* missing = list_size (int_bound 30) (int_bound 1_000_000) in
         return (Msg.Link_nack { cls; missing }));
        map (fun lseq -> Msg.Rt_request { lseq }) (int_bound 1_000_000);
        map (fun lseq -> Msg.It_ack { lseq }) (int_bound 1_000_000);
        (let* hseq = int_bound 1_000_000 in
         let* sent_at = int_bound 1_000_000_000 in
         return (Msg.Hello { hseq; sent_at }));
        (let* pseq = int_bound 1_000_000 in
         let* sent_at = int_bound 1_000_000_000 in
         return (Msg.Probe { pseq; sent_at }));
        (let* pseq = int_bound 1_000_000 in
         let* echo = int_bound 1_000_000_000 in
         return (Msg.Probe_ack { pseq; echo }));
        (let* origin = int_bound 60000 in
         let* lsu_seq = int_bound 1_000_000 in
         let* links =
           list_size (int_bound 10)
             (let* l = int_bound 1000 in
              let* li_up = bool in
              let* li_metric = int_bound 1_000_000 in
              let* li_loss = int_bound 1000 in
              return (l, { Msg.li_up; li_metric; li_loss }))
         in
         let* auth = opt (map Int64.of_int (int_bound 1_000_000)) in
         return (Msg.Lsu { origin; lsu_seq; links; auth }));
        (let* block = int_bound 1_000_000 in
         let* idx = int_bound 7 in
         let* blk_pkts = list_size (int_bound 6) gen_packet in
         let* bytes = int_bound 65536 in
         return
           (Msg.Fec_parity
              { block; idx; k = List.length blk_pkts; bytes; blk_pkts }));
        (let* origin = int_bound 60000 in
         let* gseq = int_bound 1_000_000 in
         let* memb =
           list_size (int_bound 10)
             (let* g = int_bound 100000 in
              let* m = bool in
              return (g, m))
         in
         let* auth = opt (map Int64.of_int (int_bound 1_000_000)) in
         return (Msg.Group_update { origin; gseq; memb; auth }));
      ])

let qcheck_roundtrip =
  QCheck.Test.make ~name:"arbitrary message roundtrips exactly" ~count:500
    (QCheck.make gen_msg)
    (fun msg -> Wire.decode (Wire.encode msg) = Ok msg)

let analytic_header_size =
  QCheck.Test.make ~name:"header_size matches encode length" ~count:500
    (QCheck.make gen_msg)
    (fun msg -> Wire.header_size msg = String.length (Wire.encode msg))

(* Session frames (client <-> daemon) and the UDP datagram framing the
   wall-clock runtime puts on real sockets. *)

let gen_frame =
  QCheck.Gen.(
    oneof
      [
        map (fun sport -> Wire.Session.Open { sport }) (int_bound 100000);
        (let* node = int_bound 60000 in
         let* sport = int_bound 100000 in
         return (Wire.Session.Open_ok { node; sport }));
        (let* group = int_bound 100000 in
         let* sport = int_bound 100000 in
         return (Wire.Session.Join { group; sport }));
        (let* group = int_bound 100000 in
         let* sport = int_bound 100000 in
         return (Wire.Session.Leave { group; sport }));
        (let* sport = int_bound 100000 in
         let* dest = gen_dest in
         let* dport = int_bound 100000 in
         let* service = gen_service in
         let* seq = int_bound 1_000_000 in
         let* bytes = int_bound 65536 in
         let* tag = string_size (int_bound 32) in
         return
           (Wire.Session.Send { sport; dest; dport; service; seq; bytes; tag }));
        (let* sport = int_bound 100000 in
         let* seq = int_bound 1_000_000 in
         let* accepted = bool in
         return (Wire.Session.Sent { sport; seq; accepted }));
        (let* sport = int_bound 100000 in
         let* at = int_bound 1_000_000_000 in
         let* pkt = gen_packet in
         return (Wire.Session.Deliver { sport; at; pkt }));
        map (fun what -> Wire.Session.Stats_req { what }) (int_bound 255);
        map (fun json -> Wire.Session.Stats { json })
          (string_size (int_bound 200));
        map (fun sport -> Wire.Session.Close { sport }) (int_bound 100000);
      ])

let qcheck_session_roundtrip =
  QCheck.Test.make ~name:"arbitrary session frame roundtrips exactly"
    ~count:500 (QCheck.make gen_frame) (fun f ->
      Wire.Session.decode (Wire.Session.encode f) = Ok f)

let analytic_session_size =
  QCheck.Test.make ~name:"Session.size matches encode length" ~count:500
    (QCheck.make gen_frame)
    (fun f -> Wire.Session.size f = String.length (Wire.Session.encode f))

let gen_datagram =
  QCheck.Gen.(
    oneof
      [
        (let* src = int_bound 60000 in
         let* link = int_bound 60000 in
         let* msg = gen_msg in
         return (Wire.Dg_msg { src; link; msg }));
        map (fun f -> Wire.Dg_session f) gen_frame;
      ])

let qcheck_datagram_roundtrip =
  QCheck.Test.make ~name:"arbitrary datagram roundtrips exactly" ~count:500
    (QCheck.make gen_datagram)
    (fun d -> Wire.decode_datagram (Wire.encode_datagram d) = Ok d)

let analytic_datagram_size =
  QCheck.Test.make ~name:"datagram_size matches encode length" ~count:500
    (QCheck.make gen_datagram)
    (fun d -> Wire.datagram_size d = String.length (Wire.encode_datagram d))

let truncated_datagrams_rejected =
  (* Every strict prefix of a valid datagram must decode to Error (never an
     exception): what a daemon sees when the kernel clips a read or a peer
     sends garbage. Trailing junk likewise. *)
  QCheck.Test.make ~name:"truncated datagram prefixes all rejected" ~count:200
    (QCheck.make gen_datagram)
    (fun d ->
      let s = Wire.encode_datagram d in
      let ok = ref true in
      for n = 0 to String.length s - 1 do
        match Wire.decode_datagram (String.sub s 0 n) with
        | Ok _ -> ok := false
        | Error _ -> ()
      done;
      (match Wire.decode_datagram (s ^ "\x00") with
      | Ok _ -> ok := false
      | Error _ -> ());
      !ok)

let hostile_datagrams_rejected () =
  let bad s =
    match Wire.decode_datagram s with Ok _ -> false | Error _ -> true
  in
  check_bool "empty" true (bad "");
  check_bool "bad magic" true (bad "Xo\x01\x00");
  check_bool "bad version" true (bad "So\x02\x00");
  check_bool "unknown kind" true (bad "So\x01\x07");
  check_bool "preamble only" true (bad "So\x01\x00");
  check_bool "session with unknown frame tag" true (bad "So\x01\x01\xff");
  (* A session frame where an overlay message should be, and vice versa. *)
  let open_f = Wire.Session.encode (Wire.Session.Open { sport = 9 }) in
  check_bool "kind/body mismatch" true (bad ("So\x01\x00\x00\x01\x00\x02" ^ open_f))

let () =
  Alcotest.run "strovl_wire"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "data with everything" `Quick data_roundtrip;
          Alcotest.test_case "control messages" `Quick control_roundtrips;
          Alcotest.test_case "service variants" `Quick service_variants_roundtrip;
          Alcotest.test_case "dest variants" `Quick dest_variants_roundtrip;
          Alcotest.test_case "multi-word bitmask" `Quick multiword_mask_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "size accounting" `Quick size_accounting;
          QCheck_alcotest.to_alcotest analytic_header_size;
          Alcotest.test_case "hostile inputs" `Quick hostile_inputs_rejected;
          Alcotest.test_case "corruption fuzz" `Quick corrupted_bytes_never_raise;
        ] );
      ( "session",
        [
          QCheck_alcotest.to_alcotest qcheck_session_roundtrip;
          QCheck_alcotest.to_alcotest analytic_session_size;
          QCheck_alcotest.to_alcotest qcheck_datagram_roundtrip;
          QCheck_alcotest.to_alcotest analytic_datagram_size;
          QCheck_alcotest.to_alcotest truncated_datagrams_rejected;
          Alcotest.test_case "hostile datagrams" `Quick
            hostile_datagrams_rejected;
        ] );
    ]
