(* Cross-cutting edge cases that don't belong to one component suite:
   wire-size vs analytic-size agreement, table rendering, and assorted
   boundary conditions. *)

open Strovl_sim
module P = Strovl.Packet
module Msg = Strovl.Msg
module Wire = Strovl.Wire
module Gen = Strovl_topo.Gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pkt =
  P.make
    ~flow:{ P.f_src = 1; f_sport = 2; f_dest = P.To_node 3; f_dport = 4 }
    ~routing:P.Link_state ~service:P.Best_effort ~seq:0 ~sent_at:0 ~bytes:1200 ()

(* The analytic Msg.bytes (used by the bandwidth model) must track the real
   wire encoding within a small tolerance for every message kind, or the
   simulated serialization times drift from what a deployment would see. *)
let analytic_size_tracks_wire () =
  let cases =
    [
      Msg.Data { cls = 0; lseq = 9; pkt; auth = None };
      Msg.Link_ack { cls = 1; cum = 500 };
      Msg.Link_nack { cls = 1; missing = [ 1; 2; 3; 4 ] };
      Msg.Rt_request { lseq = 7 };
      Msg.It_ack { lseq = 7 };
      Msg.Hello { hseq = 1; sent_at = 12345 };
      Msg.Hello_ack { hseq = 1; echo = 12345 };
      Msg.Lsu
        {
          origin = 2;
          lsu_seq = 3;
          links =
            List.init 4 (fun l -> (l, { Msg.li_up = true; li_metric = 10_000; li_loss = 5 }));
          auth = Some 1L;
        };
      Msg.Group_update
        { origin = 2; gseq = 3; memb = [ (7, true); (9, false) ]; auth = Some 1L };
      Msg.Fec_parity { block = 1; idx = 0; k = 4; bytes = 1200; blk_pkts = [] };
    ]
  in
  List.iter
    (fun msg ->
      let analytic = Msg.bytes msg and actual = Wire.size msg in
      check_bool
        (Format.asprintf "%a: |%d - %d| small" Msg.pp msg analytic actual)
        true
        (abs (analytic - actual) <= 40))
    cases

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let table_renders_ragged_rows () =
  let t =
    Strovl_expt.Table.make ~id:"x" ~title:"t" ~header:[ "a"; "b"; "c" ]
      ~notes:[ "n" ]
      [ [ "1" ]; [ "22"; "333" ]; [ "4"; "5"; "6" ] ]
  in
  let s = Format.asprintf "%a" Strovl_expt.Table.print t in
  check_bool "renders without raising" true (String.length s > 0);
  check_bool "contains note" true (contains s "note: n");
  check_bool "contains title" true (contains s "== x: t ==")

let cells () =
  Alcotest.(check string) "pct" "12.5%" (Strovl_expt.Table.cell_pct 0.125);
  Alcotest.(check string) "ms" "3.14ms" (Strovl_expt.Table.cell_ms 3.141);
  Alcotest.(check string) "f" "2.72" (Strovl_expt.Table.cell_f 2.718)

let transmit_pair_disconnected () =
  let engine = Engine.create () in
  let u = Strovl_net.Underlay.create engine (Gen.us_backbone ()) in
  (* ISP1 has no Phoenix presence: an off-net path terminating at PHX (3)
     on ISP1 cannot exist, and transmit on it loses the packet. *)
  Alcotest.(check (option int)) "no off-net path to PHX on isp1" None
    (Strovl_net.Underlay.path_delay_pair u ~isp_src:0 ~isp_dst:1 ~src:0 ~dst:3);
  check_bool "transmit is Lost" true
    (Strovl_net.Underlay.transmit_result_pair u ~isp_src:0 ~isp_dst:1 ~src:0
       ~dst:3
    = `Lost);
  (* Same providers degenerate to the on-net path. *)
  Alcotest.(check (option int)) "pair (0,0) = on-net"
    (Strovl_net.Underlay.path_delay u ~isp:0 ~src:0 ~dst:3)
    (Strovl_net.Underlay.path_delay_pair u ~isp_src:0 ~isp_dst:0 ~src:0 ~dst:3)

let it_priority_queue_len () =
  let engine = Engine.create () in
  let ctx =
    {
      Strovl.Lproto.engine;
      node = -1;
      link = -1;
      xmit = ignore;
      up = ignore;
      try_up = (fun _ -> true);
      bandwidth_bps = 1_000_000;
      rtt_hint = Time.ms 10;
    }
  in
  let sched = Strovl.It_priority.create ctx in
  let mk seq =
    P.make
      ~flow:{ P.f_src = 4; f_sport = 1; f_dest = P.To_node 9; f_dport = 2 }
      ~routing:P.Link_state ~service:(P.It_priority 1) ~seq ~sent_at:0
      ~bytes:1000 ()
  in
  for s = 0 to 9 do
    Strovl.It_priority.send sched (mk s)
  done;
  (* One is in service; the rest queue. *)
  check_int "queue length visible" 9 (Strovl.It_priority.queue_len sched ~source:4);
  Engine.run engine;
  check_int "drained" 0 (Strovl.It_priority.queue_len sched ~source:4)

let global_backbone_isp_reach () =
  let spec = Gen.global_backbone () in
  let engine = Engine.create () in
  let u = Strovl_net.Underlay.create engine spec in
  (* ISP0 covers everything; ISP1 misses SYD-LAX and MAD-JNB fiber but both
     sites remain reachable via detours. *)
  Alcotest.(check bool) "isp1 SYD still reachable" true
    (Strovl_net.Underlay.path_delay u ~isp:1 ~src:25 ~dst:2 <> None)

let time_negative_pp () =
  check_bool "negative time prints" true (String.length (Time.to_string (-5)) > 0)

let () =
  Alcotest.run "strovl_misc"
    [
      ( "sizes",
        [ Alcotest.test_case "analytic tracks wire" `Quick analytic_size_tracks_wire ] );
      ( "table",
        [
          Alcotest.test_case "ragged rows" `Quick table_renders_ragged_rows;
          Alcotest.test_case "cells" `Quick cells;
        ] );
      ( "edges",
        [
          Alcotest.test_case "pair disconnected" `Quick transmit_pair_disconnected;
          Alcotest.test_case "it-priority queue len" `Quick it_priority_queue_len;
          Alcotest.test_case "global isp reach" `Quick global_backbone_isp_reach;
          Alcotest.test_case "negative time pp" `Quick time_negative_pp;
        ] );
    ]
