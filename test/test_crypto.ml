(* Tests for the SipHash PRF and the node-authentication layer. *)

open Strovl_crypto

let check_bool = Alcotest.(check bool)

let siphash_reference_vectors () =
  check_bool "SipHash-2-4 reference vectors" true (Siphash.self_test ())

let siphash_key_sensitivity () =
  let k1 = Siphash.key_of_string "key-one" in
  let k2 = Siphash.key_of_string "key-two" in
  check_bool "different keys differ" true
    (Siphash.hash k1 "message" <> Siphash.hash k2 "message");
  check_bool "different messages differ" true
    (Siphash.hash k1 "message-a" <> Siphash.hash k1 "message-b");
  Alcotest.(check int64) "deterministic" (Siphash.hash k1 "m") (Siphash.hash k1 "m")

let siphash_key_padding () =
  (* Keys shorter than 16 bytes are zero padded; a 16-byte prefix match with
     different tails must produce different keys. *)
  let k_short = Siphash.key_of_string "abc" in
  let k_short' = Siphash.key_of_string "abc\000\000" in
  Alcotest.(check int64) "zero padding canonical"
    (Siphash.hash k_short "x") (Siphash.hash k_short' "x");
  let k_long1 = Siphash.key_of_string "0123456789abcdefXXX" in
  let k_long2 = Siphash.key_of_string "0123456789abcdefYYY" in
  Alcotest.(check int64) "only first 16 bytes used"
    (Siphash.hash k_long1 "x") (Siphash.hash k_long2 "x")

let siphash_bytes_variant () =
  let k = Siphash.key_of_string "k" in
  Alcotest.(check int64) "hash_bytes = hash"
    (Siphash.hash k "hello") (Siphash.hash_bytes k (Bytes.of_string "hello"))

let qcheck_siphash_distributes =
  QCheck.Test.make ~name:"distinct messages rarely collide" ~count:300
    QCheck.(pair string string)
    (fun (a, b) ->
      let k = Siphash.key_of_string "collision-test" in
      a = b || Siphash.hash k a <> Siphash.hash k b)

let auth_mac_roundtrip () =
  let r = Auth.create_registry ~master:"secret" ~nodes:5 in
  let tag = Auth.mac r ~src:1 ~dst:2 "hello" in
  check_bool "verify ok" true (Auth.verify_mac r ~src:1 ~dst:2 "hello" tag);
  check_bool "wrong msg" false (Auth.verify_mac r ~src:1 ~dst:2 "hellO" tag);
  check_bool "wrong pair" false (Auth.verify_mac r ~src:2 ~dst:1 "hello" tag)

let auth_sign_roundtrip () =
  let r = Auth.create_registry ~master:"secret" ~nodes:5 in
  let tag = Auth.sign r ~node:3 "lsu" in
  check_bool "verify ok" true (Auth.verify_sign r ~node:3 "lsu" tag);
  check_bool "wrong origin" false (Auth.verify_sign r ~node:4 "lsu" tag);
  check_bool "tampered" false (Auth.verify_sign r ~node:3 "lsu!" tag)

let auth_registry_independence () =
  let r1 = Auth.create_registry ~master:"alpha" ~nodes:3 in
  let r2 = Auth.create_registry ~master:"beta" ~nodes:3 in
  let tag = Auth.sign r1 ~node:0 "m" in
  check_bool "different master fails" false (Auth.verify_sign r2 ~node:0 "m" tag)

let auth_bounds () =
  let r = Auth.create_registry ~master:"m" ~nodes:2 in
  Alcotest.check_raises "node range" (Invalid_argument "Auth: node out of range")
    (fun () -> ignore (Auth.sign r ~node:2 "x"))

let auth_costs_ordered () =
  check_bool "mac cheapest" true (Auth.mac_cost < Auth.verify_sign_cost);
  check_bool "sign most expensive" true (Auth.verify_sign_cost < Auth.sign_cost)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "strovl_crypto"
    [
      ( "siphash",
        [
          Alcotest.test_case "reference vectors" `Quick siphash_reference_vectors;
          Alcotest.test_case "key sensitivity" `Quick siphash_key_sensitivity;
          Alcotest.test_case "key padding" `Quick siphash_key_padding;
          Alcotest.test_case "bytes variant" `Quick siphash_bytes_variant;
          q qcheck_siphash_distributes;
        ] );
      ( "auth",
        [
          Alcotest.test_case "mac roundtrip" `Quick auth_mac_roundtrip;
          Alcotest.test_case "sign roundtrip" `Quick auth_sign_roundtrip;
          Alcotest.test_case "registry independence" `Quick auth_registry_independence;
          Alcotest.test_case "bounds" `Quick auth_bounds;
          Alcotest.test_case "cost model ordered" `Quick auth_costs_ordered;
        ] );
    ]
