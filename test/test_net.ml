(* Tests for the underlay (ISP backbones, failures, BGP convergence) and
   overlay-link transport (queueing, multihoming). *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module Underlay = Strovl_net.Underlay
module Link = Strovl_net.Link

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let chain_underlay ?(convergence = Time.sec 40) ?(n = 6) () =
  let engine = Engine.create ~seed:1L () in
  let underlay = Underlay.create ~convergence engine (Gen.chain ~n ~hop_delay:(Time.ms 10)) in
  (engine, underlay)

let underlay_path_delay () =
  let _, u = chain_underlay () in
  Alcotest.(check (option int)) "5 hops x 10ms" (Some (Time.ms 50))
    (Underlay.path_delay u ~isp:0 ~src:0 ~dst:5);
  Alcotest.(check (option int)) "1 hop" (Some (Time.ms 10))
    (Underlay.path_delay u ~isp:0 ~src:2 ~dst:3);
  Alcotest.(check (option int)) "self" (Some 0) (Underlay.path_delay u ~isp:0 ~src:2 ~dst:2)

let underlay_transmit_delivers () =
  let engine, u = chain_underlay () in
  let arrived = ref (-1) in
  Underlay.transmit u ~isp:0 ~src:0 ~dst:5 ~deliver:(fun () -> arrived := Engine.now engine);
  Engine.run engine;
  check_int "arrives after 50ms" (Time.ms 50) !arrived

let underlay_fail_blackholes () =
  let engine, u = chain_underlay () in
  Underlay.fail_segment u 2;
  check_bool "segment down" false (Underlay.segment_up u 2);
  (* Routing view lags: still "routes" into the failure. *)
  Alcotest.(check (option int)) "stale route delay" (Some (Time.ms 50))
    (Underlay.path_delay u ~isp:0 ~src:0 ~dst:5);
  let delivered = ref false in
  Underlay.transmit u ~isp:0 ~src:0 ~dst:5 ~deliver:(fun () -> delivered := true);
  Engine.run ~until:(Time.sec 1) engine;
  check_bool "blackholed" false !delivered

let underlay_convergence_removes_route () =
  let engine, u = chain_underlay ~convergence:(Time.sec 5) () in
  Underlay.fail_segment u 2;
  Engine.run ~until:(Time.sec 6) engine;
  (* A chain has no alternate route: after convergence the path is gone. *)
  Alcotest.(check (option int)) "no route post-convergence" None
    (Underlay.path_delay u ~isp:0 ~src:0 ~dst:5);
  Underlay.repair_segment u 2;
  check_bool "segment back up" true (Underlay.segment_up u 2);
  Engine.run ~until:(Time.sec 12) engine;
  Alcotest.(check (option int)) "route re-adopted" (Some (Time.ms 50))
    (Underlay.path_delay u ~isp:0 ~src:0 ~dst:5)

let underlay_reroute_after_convergence () =
  (* Ring: failing one segment leaves the long way around. *)
  let engine = Engine.create ~seed:1L () in
  let u = Underlay.create ~convergence:(Time.sec 5) engine (Gen.ring ~n:6 ~hop_delay:(Time.ms 10)) in
  Alcotest.(check (option int)) "short way" (Some (Time.ms 10))
    (Underlay.path_delay u ~isp:0 ~src:0 ~dst:1);
  (match Underlay.routed_path u ~isp:0 ~src:0 ~dst:1 with
  | Some [ seg ] -> Underlay.fail_segment u seg
  | _ -> Alcotest.fail "expected single-segment path");
  Engine.run ~until:(Time.sec 6) engine;
  Alcotest.(check (option int)) "long way after convergence" (Some (Time.ms 50))
    (Underlay.path_delay u ~isp:0 ~src:0 ~dst:1)

let underlay_repair_cancels_pending_convergence () =
  let engine, u = chain_underlay ~convergence:(Time.sec 5) () in
  Underlay.fail_segment u 2;
  Engine.run ~until:(Time.sec 2) engine;
  Underlay.repair_segment u 2;
  Engine.run ~until:(Time.sec 10) engine;
  Alcotest.(check (option int)) "route never withdrawn" (Some (Time.ms 50))
    (Underlay.path_delay u ~isp:0 ~src:0 ~dst:5)

let underlay_segment_loss () =
  let engine, u = chain_underlay () in
  Underlay.set_segment_loss u 0 Loss.always;
  let delivered = ref false in
  Underlay.transmit u ~isp:0 ~src:0 ~dst:5 ~deliver:(fun () -> delivered := true);
  Engine.run engine;
  check_bool "lost on first segment" false !delivered

let underlay_segments_between () =
  let spec = Gen.us_backbone () in
  let engine = Engine.create () in
  let u = Underlay.create engine spec in
  (* SEA-SFO fiber exists on all three ISPs. *)
  check_int "3 parallel segments" 3 (List.length (Underlay.segments_between u 0 1))

let link_send_and_delay () =
  let engine, u = chain_underlay () in
  let link = Link.create u ~a:0 ~b:5 ~isp:0 in
  check_int "a" 0 (Link.a link);
  check_int "other" 5 (Link.other link 0);
  let arrived = ref (-1) in
  Link.send link ~src:0 ~bytes:1000 ~deliver:(fun () -> arrived := Engine.now engine);
  Engine.run engine;
  (* 50ms propagation + ~8.3us serialization of 1040B at 1Gbps. *)
  check_bool "arrives just after 50ms" true (!arrived >= Time.ms 50 && !arrived < Time.ms 51);
  check_int "sent" 1 (Link.sent link)

let link_queue_tail_drop () =
  let engine, u = chain_underlay () in
  let config =
    { Link.bandwidth_bps = 1_000_000; queue_cap = Time.ms 20; overhead_bytes = 0 }
  in
  let link = Link.create ~config u ~a:0 ~b:1 ~isp:0 in
  (* Each 1250B packet = 10ms serialization at 1Mbps; cap 20ms = 2 packets. *)
  let delivered = ref 0 in
  for _ = 1 to 10 do
    Link.send link ~src:0 ~bytes:1250 ~deliver:(fun () -> incr delivered)
  done;
  check_bool "backlog grew" true (Link.backlog link ~src:0 > 0);
  Engine.run engine;
  check_int "only queue-cap worth delivered" 2 !delivered;
  check_int "drops" 8 (Link.queue_drops link)

let link_multihoming () =
  let spec = Gen.us_backbone () in
  let engine = Engine.create () in
  let u = Underlay.create ~convergence:(Time.sec 1) engine spec in
  let link = Link.create u ~a:0 ~b:1 ~isp:0 in
  Alcotest.(check (list int)) "all isps available" [ 0; 1; 2 ] (Link.available_isps link);
  let d0 = Option.get (Link.probe_delay link) in
  Link.set_isp link 2;
  check_int "isp switched" 2 (Link.current_isp link);
  let d2 = Option.get (Link.probe_delay link) in
  check_bool "isp2 slightly longer (1.12x routes)" true (d2 > d0);
  (* Kill ISP2's SEA-SFO fiber: after convergence it detours or vanishes. *)
  List.iter
    (fun si ->
      if (Underlay.spec u).Gen.segments.(si).Gen.seg_isp = 2 then
        Underlay.fail_segment u si)
    (Underlay.segments_between u 0 1);
  Engine.run ~until:(Time.sec 2) engine;
  let d2' = Link.probe_delay link in
  check_bool "isp2 path changed or gone" true (d2' <> Some d2)

let link_offnet_pair () =
  let spec = Gen.us_backbone () in
  let engine = Engine.create ~seed:3L () in
  let u = Underlay.create engine spec in
  (* SEA-SFO: both ISP0 and ISP1 present at both ends. *)
  let link = Link.create u ~a:0 ~b:1 ~isp:0 in
  let on = Option.get (Link.probe_delay link) in
  Link.set_isp_pair link 0 1;
  Alcotest.(check (pair int int)) "pair recorded" (0, 1) (Link.current_isp_pair link);
  let off = Option.get (Link.probe_delay link) in
  check_bool "off-net includes peering penalty" true (off >= on + Time.ms 2);
  (* Traffic still flows, with the extra delay, in both directions. *)
  let t1 = ref (-1) and t2 = ref (-1) in
  Link.send link ~src:0 ~bytes:100 ~deliver:(fun () -> t1 := Engine.now engine);
  Link.send link ~src:1 ~bytes:100 ~deliver:(fun () -> t2 := Engine.now engine);
  Engine.run engine;
  check_bool "a->b delivered late" true (!t1 >= off);
  check_bool "b->a delivered late" true (!t2 >= off);
  (* Back on-net restores the direct path. *)
  Link.set_isp ((* same provider both ends *) link) 0;
  Alcotest.(check (option int)) "on-net again" (Some on) (Link.probe_delay link)

let underlay_peering_sites () =
  let spec = Gen.us_backbone () in
  let engine = Engine.create () in
  let u = Underlay.create engine spec in
  let sites = Underlay.peering_sites u ~isp_a:0 ~isp_b:1 in
  check_bool "plenty of peering sites" true (List.length sites >= 10);
  check_bool "isp0 everywhere" true (Underlay.isp_present u ~isp:0 0);
  (* ISP1 has no Phoenix fiber: PHX (3) is not in its footprint. *)
  check_bool "phx absent from isp1" false (Underlay.isp_present u ~isp:1 3);
  check_bool "phx not a 0/1 peering site" false (List.mem 3 sites)

let link_direction_independence () =
  let engine, u = chain_underlay () in
  let config = { Link.default_config with Link.bandwidth_bps = 1_000_000 } in
  let link = Link.create ~config u ~a:0 ~b:1 ~isp:0 in
  (* Saturate a->b; b->a must be unaffected. *)
  for _ = 1 to 5 do
    Link.send link ~src:0 ~bytes:1250 ~deliver:ignore
  done;
  let back = ref (-1) in
  Link.send link ~src:1 ~bytes:100 ~deliver:(fun () -> back := Engine.now engine);
  Engine.run engine;
  check_bool "reverse direction unqueued" true (!back < Time.ms 12)

(* Probe link protocol: the health EWMAs converge to the configured
   underlay latency / injected loss, and the k-missed-probes liveness
   verdict flips when the link fails. *)

module Health = Strovl_obs.Health
module Common = Strovl_expt.Common

let probing_sim ?(loss = 0.) ?(probe = Strovl.Probe_link.default_config)
    ~seed () =
  Health.reset ();
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        { Strovl.Node.default_config with Strovl.Node.probe = Some probe };
    }
  in
  let sim =
    Common.build ~config ~seed (Gen.chain ~n:3 ~hop_delay:(Time.ms 10))
  in
  if loss > 0. then Common.bernoulli_loss sim ~p:loss;
  sim

let probe_health_convergence () =
  (* k_missed raised: at 20% loss a 3-probe miss-run happens every few
     hundred windows, legitimately (and transiently) flipping the verdict;
     this test is about the estimators, not liveness. *)
  let probe =
    { Strovl.Probe_link.default_config with Strovl.Probe_link.k_missed = 10 }
  in
  let sim = probing_sim ~loss:0.2 ~probe ~seed:1234L () in
  Common.run_for sim (Time.sec 30);
  let entries = Health.all () in
  check_int "both ends of both chain links" 4 (List.length entries);
  List.iter
    (fun h ->
      (* One underlay hop of 10ms each way: RTT within 5% of 20ms. *)
      check_bool
        (Printf.sprintf "rtt %dus within 5%% of 20ms" h.Health.rtt_us)
        true
        (abs (h.Health.rtt_us - 20_000) <= 1_000);
      (* Injected per-traversal loss 0.2 = 200 permille per direction;
         the estimator must land within 5 points. *)
      check_bool
        (Printf.sprintf "loss %dpm within 50pm of 200" h.Health.loss_pm)
        true
        (abs (h.Health.loss_pm - 200) <= 50);
      check_bool "alive" true h.Health.alive;
      check_bool "kept probing" true (h.Health.sent > 500))
    entries

let probe_verdict_flips_on_failure () =
  let sim = probing_sim ~seed:7L () in
  Common.run_for sim (Time.sec 5);
  List.iter
    (fun h -> check_bool "alive before failure" true h.Health.alive)
    (Health.all ());
  Common.fail_link_everywhere sim ~link:0;
  (* k_missed = 3 at 50ms period: one second is ample for the verdict. *)
  Common.run_for sim (Time.sec 1);
  List.iter
    (fun h ->
      check_bool
        (Printf.sprintf "link %d node %d verdict" h.Health.h_link
           h.Health.h_node)
        (h.Health.h_link <> 0)
        h.Health.alive)
    (Health.all ())

let () =
  Alcotest.run "strovl_net"
    [
      ( "underlay",
        [
          Alcotest.test_case "path delay" `Quick underlay_path_delay;
          Alcotest.test_case "transmit delivers" `Quick underlay_transmit_delivers;
          Alcotest.test_case "failure blackholes" `Quick underlay_fail_blackholes;
          Alcotest.test_case "convergence withdraws" `Quick underlay_convergence_removes_route;
          Alcotest.test_case "reroute after convergence" `Quick underlay_reroute_after_convergence;
          Alcotest.test_case "repair cancels convergence" `Quick underlay_repair_cancels_pending_convergence;
          Alcotest.test_case "segment loss" `Quick underlay_segment_loss;
          Alcotest.test_case "segments between" `Quick underlay_segments_between;
        ] );
      ( "link",
        [
          Alcotest.test_case "send and delay" `Quick link_send_and_delay;
          Alcotest.test_case "queue tail drop" `Quick link_queue_tail_drop;
          Alcotest.test_case "multihoming" `Quick link_multihoming;
          Alcotest.test_case "off-net pair" `Quick link_offnet_pair;
          Alcotest.test_case "peering sites" `Quick underlay_peering_sites;
          Alcotest.test_case "direction independence" `Quick link_direction_independence;
        ] );
      ( "probe",
        [
          Alcotest.test_case "health converges" `Quick probe_health_convergence;
          Alcotest.test_case "k-missed verdict" `Quick probe_verdict_flips_on_failure;
        ] );
    ]
