(* State-machine tests for the link-level protocols, run over a scriptable
   loopback pipe (delay + per-message drop control) instead of the full
   overlay, so specific loss patterns can be injected deterministically. *)

open Strovl_sim
module P = Strovl.Packet
module Msg = Strovl.Msg
module Lproto = Strovl.Lproto

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let flow = { P.f_src = 0; f_sport = 1; f_dest = P.To_node 1; f_dport = 2 }

let packet ?(seq = 0) ?(service = P.Best_effort) ?(bytes = 100) engine =
  P.make ~flow ~routing:P.Link_state ~service ~seq ~sent_at:(Engine.now engine)
    ~bytes ()

(* A duplex pipe: side A's xmit delivers to a handler for B and vice versa.
   [drop_a2b i msg] may drop the i-th A->B message. *)
type pipe = {
  engine : Engine.t;
  mutable recv_a : Msg.t -> unit;
  mutable recv_b : Msg.t -> unit;
  mutable drop_a2b : int -> Msg.t -> bool;
  mutable drop_b2a : int -> Msg.t -> bool;
  mutable sent_a2b : int;
  mutable sent_b2a : int;
}

let make_pipe ?(delay = Time.ms 5) () =
  let engine = Engine.create ~seed:3L () in
  let p =
    {
      engine;
      recv_a = ignore;
      recv_b = ignore;
      drop_a2b = (fun _ _ -> false);
      drop_b2a = (fun _ _ -> false);
      sent_a2b = 0;
      sent_b2a = 0;
    }
  in
  let xmit_a msg =
    let i = p.sent_a2b in
    p.sent_a2b <- i + 1;
    if not (p.drop_a2b i msg) then
      ignore (Engine.schedule engine ~delay (fun () -> p.recv_b msg))
  in
  let xmit_b msg =
    let i = p.sent_b2a in
    p.sent_b2a <- i + 1;
    if not (p.drop_b2a i msg) then
      ignore (Engine.schedule engine ~delay (fun () -> p.recv_a msg))
  in
  let ctx xmit up try_up =
    {
      Lproto.engine;
      node = -1;
      link = -1;
      xmit;
      up;
      try_up;
      bandwidth_bps = 1_000_000_000;
      rtt_hint = 2 * delay;
    }
  in
  (p, ctx xmit_a ignore (fun _ -> true), ctx xmit_b ignore (fun _ -> true))

let drop_nth_data n =
  let data_idx = ref (-1) in
  fun _ msg ->
    match msg with
    | Msg.Data _ ->
      incr data_idx;
      !data_idx = n
    | _ -> false

(* ---------------------------- Best effort ---------------------------- *)

let best_effort_forwards () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a = Strovl.Best_effort.create ctx_a in
  let b =
    Strovl.Best_effort.create
      { ctx_b with Lproto.up = (fun pkt -> got := pkt.P.seq :: !got) }
  in
  p.recv_b <- Strovl.Best_effort.recv b;
  for s = 0 to 4 do
    Strovl.Best_effort.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  Alcotest.(check (list int)) "all through, in order" [ 0; 1; 2; 3; 4 ] (List.rev !got);
  check_int "sent" 5 (Strovl.Best_effort.sent a);
  check_int "received" 5 (Strovl.Best_effort.received b)

(* --------------------------- Reliable link --------------------------- *)

let rel_pair ?config p ctx_a ctx_b ~up =
  let a = Strovl.Reliable_link.create ?config ctx_a in
  let b = Strovl.Reliable_link.create ?config { ctx_b with Lproto.up } in
  p.recv_a <- Strovl.Reliable_link.recv a;
  p.recv_b <- Strovl.Reliable_link.recv b;
  (a, b)

let reliable_no_loss () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, b = rel_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  for s = 0 to 9 do
    Strovl.Reliable_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "all up" 10 (List.length !got);
  check_int "no retrans" 0 (Strovl.Reliable_link.retransmissions a);
  check_int "store drained by cum ack" 0 (Strovl.Reliable_link.store_size a);
  check_int "delivered_up counter" 10 (Strovl.Reliable_link.delivered_up b)

let reliable_recovers_loss_out_of_order () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, _b = rel_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  p.drop_a2b <- drop_nth_data 2;
  for s = 0 to 5 do
    Strovl.Reliable_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  Alcotest.(check (list int)) "all delivered, loss forwarded late (out of order)"
    [ 0; 1; 3; 4; 5; 2 ]
    (List.rev !got);
  check_bool "recovered via nack quickly" true (Engine.now p.engine < Time.ms 100);
  check_int "exactly one retransmission" 1 (Strovl.Reliable_link.retransmissions a)

let reliable_in_order_mode () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let config =
    { Strovl.Reliable_link.default_config with Strovl.Reliable_link.in_order_forwarding = true }
  in
  let a, _ = rel_pair ~config p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  p.drop_a2b <- drop_nth_data 2;
  for s = 0 to 5 do
    Strovl.Reliable_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  Alcotest.(check (list int)) "held until contiguous" [ 0; 1; 2; 3; 4; 5 ] (List.rev !got)

let reliable_tail_loss_rto () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, _ = rel_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  (* Drop the LAST data packet: no later packet triggers a receiver gap, so
     only the sender RTO can save it. *)
  p.drop_a2b <- drop_nth_data 2;
  for s = 0 to 2 do
    Strovl.Reliable_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "tail recovered" 3 (List.length !got);
  check_bool "used rto" true (Strovl.Reliable_link.retransmissions a >= 1)

let reliable_nack_loss_retried () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, _ = rel_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  p.drop_a2b <- drop_nth_data 1;
  (* Also drop the first NACK. *)
  let first_nack = ref true in
  p.drop_b2a <-
    (fun _ msg ->
      match msg with
      | Msg.Link_nack _ when !first_nack ->
        first_nack := false;
        true
      | _ -> false);
  for s = 0 to 3 do
    Strovl.Reliable_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "recovered despite nack loss" 4 (List.length !got)

let reliable_duplicate_suppressed () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref 0 in
  let _, b = rel_pair p ctx_a ctx_b ~up:(fun _ -> incr got) in
  let pkt = packet ~seq:0 p.engine in
  let msg = Msg.Data { cls = P.service_class P.Reliable; lseq = 1; pkt; auth = None } in
  Strovl.Reliable_link.recv b msg;
  Strovl.Reliable_link.recv b msg;
  Engine.run p.engine;
  check_int "delivered once" 1 !got

let reliable_ack_loss_recovered_by_refresh () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref 0 in
  let a, _ = rel_pair p ctx_a ctx_b ~up:(fun _ -> incr got) in
  (* Drop every ack: the sender's store must still drain eventually via the
     duplicate-triggered cum-ack refresh after RTO retransmissions. *)
  let acks_dropped = ref 0 in
  p.drop_b2a <-
    (fun _ msg ->
      match msg with
      | Msg.Link_ack _ when !acks_dropped < 3 ->
        incr acks_dropped;
        true
      | _ -> false);
  for s = 0 to 4 do
    Strovl.Reliable_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run ~until:(Time.sec 5) p.engine;
  check_int "all delivered once" 5 !got;
  check_int "store eventually drained" 0 (Strovl.Reliable_link.store_size a)

let reliable_drain_store () =
  let p, ctx_a, ctx_b = make_pipe () in
  let a, _ = rel_pair p ctx_a ctx_b ~up:ignore in
  (* Peer completely dead: everything stays in the store. *)
  p.drop_a2b <- (fun _ _ -> true);
  for s = 0 to 3 do
    Strovl.Reliable_link.send a (packet ~seq:s p.engine)
  done;
  check_int "store holds all" 4 (Strovl.Reliable_link.store_size a);
  let stranded = Strovl.Reliable_link.drain_store a in
  Alcotest.(check (list int)) "drained oldest-first" [ 0; 1; 2; 3 ]
    (List.map (fun pkt -> pkt.P.seq) stranded);
  check_int "store empty" 0 (Strovl.Reliable_link.store_size a);
  (* No RTO storms afterwards: engine drains quietly. *)
  Engine.run ~until:(Time.sec 2) p.engine;
  check_int "nothing retransmitted after drain" 0
    (Strovl.Reliable_link.retransmissions a)

let reliable_nack_gives_up_eventually () =
  let p, ctx_a, ctx_b = make_pipe () in
  let config =
    { Strovl.Reliable_link.default_config with Strovl.Reliable_link.max_nack_repeats = 5 }
  in
  let got = ref 0 in
  let _, b = rel_pair ~config p ctx_a ctx_b ~up:(fun _ -> incr got) in
  (* Feed the receiver a gap the sender will never fill (lseq 1 missing,
     no sender-side state at all). *)
  let data lseq =
    Msg.Data { cls = P.service_class P.Reliable; lseq; pkt = packet ~seq:lseq p.engine; auth = None }
  in
  Strovl.Reliable_link.recv b (data 2);
  Strovl.Reliable_link.recv b (data 3);
  Engine.run ~until:(Time.sec 10) p.engine;
  check_int "later packets forwarded" 2 !got;
  (* The abandoned gap stopped generating NACKs: count the b->a messages in
     a quiet second. *)
  let before = p.sent_b2a in
  Engine.run ~until:(Time.add (Engine.now p.engine) (Time.sec 1)) p.engine;
  check_int "no more nacks after give-up" before p.sent_b2a

(* --------------------------- Realtime link --------------------------- *)

let rt_config =
  {
    Strovl.Realtime_link.n_requests = 3;
    m_retrans = 2;
    budget = Time.ms 120;
    history = 128;
    request_spacing = None;
    retrans_spacing = None;
  }

let rt_pair ?(config = rt_config) p ctx_a ctx_b ~up =
  let a = Strovl.Realtime_link.create ~config ctx_a in
  let b = Strovl.Realtime_link.create ~config { ctx_b with Lproto.up } in
  p.recv_a <- Strovl.Realtime_link.recv a;
  p.recv_b <- Strovl.Realtime_link.recv b;
  (a, b)

let realtime_recovers_in_budget () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, b = rt_pair p ctx_a ctx_b ~up:(fun pkt -> got := (pkt.P.seq, Engine.now p.engine) :: !got) in
  p.drop_a2b <- drop_nth_data 1;
  for s = 0 to 3 do
    Strovl.Realtime_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "all delivered" 4 (List.length !got);
  let _, t1 = List.find (fun (s, _) -> s = 1) !got in
  check_bool "within budget" true (t1 <= Time.ms 120);
  (* Receiving the packet cancels pending requests: only the first request
     fired. *)
  check_int "requests cancelled after success" 1 (Strovl.Realtime_link.requests_sent b);
  check_int "M retransmissions scheduled" 2 (Strovl.Realtime_link.retransmissions a)

let realtime_duplicate_requests_single_m () =
  let p, ctx_a, ctx_b = make_pipe () in
  let a, _b = rt_pair p ctx_a ctx_b ~up:ignore in
  Strovl.Realtime_link.send a (packet ~seq:0 p.engine);
  Engine.run p.engine;
  (* Two requests for the same lseq: only the first triggers M retransmits. *)
  Strovl.Realtime_link.recv a (Msg.Rt_request { lseq = 1 });
  Strovl.Realtime_link.recv a (Msg.Rt_request { lseq = 1 });
  Engine.run p.engine;
  check_int "M once" 2 (Strovl.Realtime_link.retransmissions a)

let realtime_gives_up_after_n_requests () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref 0 in
  let a, b = rt_pair p ctx_a ctx_b ~up:(fun _ -> incr got) in
  (* Lose packet 1 and every retransmission of it. *)
  p.drop_a2b <-
    (fun _ msg ->
      match msg with
      | Msg.Data { lseq = 2; _ } -> true
      | _ -> false);
  for s = 0 to 3 do
    Strovl.Realtime_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "others delivered" 3 !got;
  check_int "exactly N requests then give up" 3 (Strovl.Realtime_link.requests_sent b);
  check_bool "overhead includes M per received request" true
    (Strovl.Realtime_link.retransmissions a >= 2)

let realtime_request_for_forgotten_packet () =
  let p, ctx_a, ctx_b = make_pipe () in
  let config = { rt_config with Strovl.Realtime_link.history = 4 } in
  let a, _ = rt_pair ~config p ctx_a ctx_b ~up:ignore in
  for s = 0 to 9 do
    Strovl.Realtime_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  (* lseq 1 has fallen out of the 4-slot history: request ignored. *)
  Strovl.Realtime_link.recv a (Msg.Rt_request { lseq = 1 });
  Engine.run p.engine;
  check_int "no retransmission of forgotten" 0 (Strovl.Realtime_link.retransmissions a)

let realtime_overhead_counter () =
  let p, ctx_a, ctx_b = make_pipe () in
  let a, _ = rt_pair p ctx_a ctx_b ~up:ignore in
  for s = 0 to 9 do
    Strovl.Realtime_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  Alcotest.(check (float 0.001)) "no loss overhead 1.0" 1.0
    (Strovl.Realtime_link.wire_overhead a)

let realtime_burst_recovery () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, b = rt_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  (* Lose three consecutive packets: each missing lseq gets its own request
     machinery and all recover. *)
  let dropped = ref 0 in
  p.drop_a2b <-
    (fun _ msg ->
      match msg with
      | Msg.Data { lseq; _ } when lseq >= 2 && lseq <= 4 && !dropped < 3 ->
        incr dropped;
        true
      | _ -> false);
  for s = 0 to 6 do
    Strovl.Realtime_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "all seven delivered" 7 (List.length !got);
  check_bool "one request per missing packet" true
    (Strovl.Realtime_link.requests_sent b >= 3)

let realtime_overhead_with_loss () =
  let p, ctx_a, ctx_b = make_pipe () in
  let a, _ = rt_pair p ctx_a ctx_b ~up:ignore in
  p.drop_a2b <- drop_nth_data 3;
  for s = 0 to 9 do
    Strovl.Realtime_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  (* One loss, M=2 retransmissions: overhead = 12/10. *)
  Alcotest.(check (float 0.001)) "overhead = 1 + M*losses/sent" 1.2
    (Strovl.Realtime_link.wire_overhead a)

(* ---------------------------- IT-Priority ---------------------------- *)

let slow_ctx ctx =
  (* 1 Mbit/s: a 1000B data message takes ~8ms to serialize, so queues
     actually build. *)
  { ctx with Lproto.bandwidth_bps = 1_000_000 }

let itp_packet ~src ~prio ~seq engine =
  P.make
    ~flow:{ P.f_src = src; f_sport = 1; f_dest = P.To_node 9; f_dport = 2 }
    ~routing:P.Link_state ~service:(P.It_priority prio) ~seq
    ~sent_at:(Engine.now engine) ~bytes:1000 ()

let itp_round_robin_fair () =
  let p, ctx_a, _ = make_pipe () in
  let sched = Strovl.It_priority.create (slow_ctx ctx_a) in
  (* Source 7 floods 100; source 8 offers 10. All of 8's packets must be
     transmitted (fair share), even though 7 enqueued first. *)
  for s = 0 to 99 do
    Strovl.It_priority.send sched (itp_packet ~src:7 ~prio:1 ~seq:s p.engine)
  done;
  for s = 0 to 9 do
    Strovl.It_priority.send sched (itp_packet ~src:8 ~prio:1 ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "all of the light source sent" 10
    (Strovl.It_priority.sent_for sched ~source:8);
  check_bool "flooder saw the drops" true
    (Strovl.It_priority.dropped_for sched ~source:7 > 0);
  check_int "flooder kept only its buffer" (64 + 36)
    (Strovl.It_priority.sent_for sched ~source:7 + Strovl.It_priority.dropped_for sched ~source:7 - 0)

let itp_priority_eviction () =
  let p, ctx_a, _ = make_pipe () in
  let config =
    { Strovl.It_priority.default_config with Strovl.It_priority.per_source_cap = 3 }
  in
  let sched = Strovl.It_priority.create ~config (slow_ctx ctx_a) in
  (* One packet is serialized immediately; then fill the 3-slot buffer with
     priorities [1;1;5] and push another 5: the OLDEST LOWEST (first prio-1)
     must be evicted. *)
  Strovl.It_priority.send sched (itp_packet ~src:7 ~prio:9 ~seq:0 p.engine);
  Strovl.It_priority.send sched (itp_packet ~src:7 ~prio:1 ~seq:1 p.engine);
  Strovl.It_priority.send sched (itp_packet ~src:7 ~prio:1 ~seq:2 p.engine);
  Strovl.It_priority.send sched (itp_packet ~src:7 ~prio:5 ~seq:3 p.engine);
  Strovl.It_priority.send sched (itp_packet ~src:7 ~prio:5 ~seq:4 p.engine);
  Engine.run p.engine;
  check_int "one drop" 1 (Strovl.It_priority.total_dropped sched);
  check_int "rest sent" 4 (Strovl.It_priority.total_sent sched)

let itp_fifo_mode_drop_tail () =
  let p, ctx_a, _ = make_pipe () in
  let config =
    { Strovl.It_priority.mode = Strovl.It_priority.Fifo; per_source_cap = 64; fifo_cap = 5 }
  in
  let sched = Strovl.It_priority.create ~config (slow_ctx ctx_a) in
  for s = 0 to 19 do
    Strovl.It_priority.send sched (itp_packet ~src:7 ~prio:1 ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_bool "drop-tail dropped" true (Strovl.It_priority.total_dropped sched > 0);
  check_bool "bounded by cap + in-service" true (Strovl.It_priority.total_sent sched <= 7)

let itp_recv_passes_up () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref 0 in
  let a = Strovl.It_priority.create ctx_a in
  let b = Strovl.It_priority.create { ctx_b with Lproto.up = (fun _ -> incr got) } in
  p.recv_b <- Strovl.It_priority.recv b;
  Strovl.It_priority.send a (itp_packet ~src:7 ~prio:1 ~seq:0 p.engine);
  Engine.run p.engine;
  check_int "delivered" 1 !got

(* ---------------------------- IT-Reliable ---------------------------- *)

let itr_packet ~dst ~seq engine =
  P.make
    ~flow:{ P.f_src = 0; f_sport = 1; f_dest = P.To_node dst; f_dport = 2 }
    ~routing:P.Link_state ~service:P.It_reliable ~seq
    ~sent_at:(Engine.now engine) ~bytes:500 ()

let itr_pair ?(config = Strovl.It_reliable.default_config) ?(accept = fun _ -> true)
    p ctx_a ctx_b =
  let a = Strovl.It_reliable.create ~config ctx_a in
  let b = Strovl.It_reliable.create ~config { ctx_b with Lproto.try_up = accept } in
  p.recv_a <- Strovl.It_reliable.recv a;
  p.recv_b <- Strovl.It_reliable.recv b;
  (a, b)

let itr_delivery_and_ack () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref 0 in
  let a, _ = itr_pair ~accept:(fun _ -> incr got; true) p ctx_a ctx_b in
  for s = 0 to 4 do
    check_bool "accepted" true (Strovl.It_reliable.offer a (itr_packet ~dst:9 ~seq:s p.engine))
  done;
  Engine.run p.engine;
  check_int "all delivered" 5 !got;
  check_int "all acked" 5 (Strovl.It_reliable.acked a);
  check_int "buffers empty" 0 (Strovl.It_reliable.total_buffered a)

let itr_flow_cap_refuses () =
  let p, ctx_a, ctx_b = make_pipe () in
  let config = { Strovl.It_reliable.default_config with Strovl.It_reliable.flow_cap = 3 } in
  (* Peer never acks (accept = false): buffer cannot drain. *)
  let a, _ = itr_pair ~config ~accept:(fun _ -> false) p ctx_a ctx_b in
  let flow9 = (itr_packet ~dst:9 ~seq:0 p.engine).P.flow in
  for s = 0 to 2 do
    check_bool "fits" true (Strovl.It_reliable.offer a (itr_packet ~dst:9 ~seq:s p.engine))
  done;
  check_bool "can_accept false at cap" false (Strovl.It_reliable.can_accept a ~flow:flow9);
  check_bool "refused at cap" false (Strovl.It_reliable.offer a (itr_packet ~dst:9 ~seq:3 p.engine));
  (* A different flow has its own buffer. *)
  check_bool "other flow unaffected" true
    (Strovl.It_reliable.offer a (itr_packet ~dst:8 ~seq:0 p.engine))

let itr_retransmits_until_acked () =
  let p, ctx_a, ctx_b = make_pipe () in
  let accepts = ref 0 in
  (* Refuse the first two attempts, accept afterwards. *)
  let a, _ =
    itr_pair
      ~accept:(fun _ ->
        incr accepts;
        !accepts > 2)
      p ctx_a ctx_b
  in
  ignore (Strovl.It_reliable.offer a (itr_packet ~dst:9 ~seq:0 p.engine));
  Engine.run ~until:(Time.sec 2) p.engine;
  check_bool "retransmitted" true (Strovl.It_reliable.retransmissions a >= 2);
  check_int "eventually acked" 1 (Strovl.It_reliable.acked a);
  check_int "buffer freed" 0 (Strovl.It_reliable.total_buffered a)

let itr_round_robin_across_flows () =
  let p, ctx_a, ctx_b = make_pipe () in
  let order = ref [] in
  let a, _ =
    itr_pair
      ~accept:(fun pkt ->
        (match pkt.P.flow.P.f_dest with
        | P.To_node d -> order := d :: !order
        | _ -> ());
        true)
      p
      (slow_ctx ctx_a) ctx_b
  in
  for s = 0 to 4 do
    ignore (Strovl.It_reliable.offer a (itr_packet ~dst:8 ~seq:s p.engine))
  done;
  for s = 0 to 4 do
    ignore (Strovl.It_reliable.offer a (itr_packet ~dst:9 ~seq:s p.engine))
  done;
  Engine.run ~until:(Time.sec 2) p.engine;
  (* Flows alternate rather than 8 draining before 9 starts. *)
  let first_four = List.filteri (fun i _ -> i < 4) (List.rev !order) in
  check_bool "interleaved" true (List.mem 9 first_four && List.mem 8 first_four)

(* ------------------------------- FEC ---------------------------------- *)

let fec_config = { Strovl.Fec_link.k = 4; r = 2; flush = Time.ms 50 }

let fec_pair ?(config = fec_config) p ctx_a ctx_b ~up =
  let a = Strovl.Fec_link.create ~config ctx_a in
  let b = Strovl.Fec_link.create ~config { ctx_b with Lproto.up } in
  p.recv_a <- Strovl.Fec_link.recv a;
  p.recv_b <- Strovl.Fec_link.recv b;
  (a, b)

let fec_no_loss () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, b = fec_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  for s = 0 to 7 do
    Strovl.Fec_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "all delivered" 8 (List.length !got);
  check_int "two full blocks of parity" 4 (Strovl.Fec_link.parity_sent a);
  check_int "nothing recovered" 0 (Strovl.Fec_link.recovered b);
  (* ~1 + r/k in bytes; headers make parity slightly cheaper than data. *)
  let oh = Strovl.Fec_link.wire_overhead a in
  check_bool "overhead ~1+r/k" true (oh > 1.3 && oh < 1.6)

let fec_recovers_within_parity_budget () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, b = fec_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  (* Lose 2 of the first block's 4 data packets: exactly r, recoverable. *)
  p.drop_a2b <-
    (fun _ msg ->
      match msg with Msg.Data { lseq = 2 | 3; _ } -> true | _ -> false);
  for s = 0 to 7 do
    Strovl.Fec_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "all delivered incl recovered" 8 (List.length !got);
  check_int "two recovered" 2 (Strovl.Fec_link.recovered b);
  (* Delivery of recovered packets happens without any b->a traffic. *)
  check_int "no reverse traffic" 0 p.sent_b2a

let fec_burst_defeats_block () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, b = fec_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  (* Lose 3 > r=2 of one block: unrecoverable; later blocks unaffected. *)
  p.drop_a2b <-
    (fun _ msg ->
      match msg with Msg.Data { lseq = 1 | 2 | 3; _ } -> true | _ -> false);
  for s = 0 to 7 do
    Strovl.Fec_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "only survivors delivered" 5 (List.length !got);
  check_int "nothing recovered" 0 (Strovl.Fec_link.recovered b)

let fec_parity_loss_tolerated () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, b = fec_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  (* One data and one parity lost: the remaining parity still decodes. *)
  let dropped_parity = ref false in
  p.drop_a2b <-
    (fun _ msg ->
      match msg with
      | Msg.Data { lseq = 2; _ } -> true
      | Msg.Fec_parity _ when not !dropped_parity ->
        dropped_parity := true;
        true
      | _ -> false);
  for s = 0 to 3 do
    Strovl.Fec_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  check_int "recovered with one parity" 4 (List.length !got);
  check_int "one recovery" 1 (Strovl.Fec_link.recovered b)

let fec_flush_partial_block () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref 0 in
  let a, b = fec_pair p ctx_a ctx_b ~up:(fun _ -> incr got) in
  (* Two packets only (block of 4 incomplete), one lost: the flush timer
     must emit parity for the partial block and recover it. *)
  p.drop_a2b <- drop_nth_data 1;
  Strovl.Fec_link.send a (packet ~seq:0 p.engine);
  Strovl.Fec_link.send a (packet ~seq:1 p.engine);
  Engine.run p.engine;
  check_int "partial block recovered after flush" 2 !got;
  check_int "recovered" 1 (Strovl.Fec_link.recovered b)

let fec_no_duplicates () =
  let p, ctx_a, ctx_b = make_pipe () in
  let got = ref [] in
  let a, b = fec_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
  ignore b;
  for s = 0 to 3 do
    Strovl.Fec_link.send a (packet ~seq:s p.engine)
  done;
  Engine.run p.engine;
  (* No loss: both parities arrive after complete data; nothing re-delivered. *)
  Alcotest.(check (list int)) "exactly once, in order" [ 0; 1; 2; 3 ] (List.rev !got)

(* ----------------------- qcheck protocol properties ------------------- *)

(* Under ANY finite pattern of losses (data, acks, nacks — both directions),
   the reliable link delivers every packet exactly once and drains its
   retransmission store. *)
let qcheck_reliable_exactly_once =
  QCheck.Test.make ~name:"reliable: exactly-once under arbitrary finite drops"
    ~count:150
    QCheck.(
      pair
        (list_of_size (Gen.int_bound 12) (int_bound 60))
        (list_of_size (Gen.int_bound 12) (int_bound 60)))
    (fun (drops_ab, drops_ba) ->
      let p, ctx_a, ctx_b = make_pipe () in
      let got = ref [] in
      let a, _b = rel_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
      p.drop_a2b <- (fun i _ -> List.mem i drops_ab);
      p.drop_b2a <- (fun i _ -> List.mem i drops_ba);
      let n = 15 in
      for s = 0 to n - 1 do
        Strovl.Reliable_link.send a (packet ~seq:s p.engine)
      done;
      Engine.run p.engine;
      List.sort compare !got = List.init n (fun i -> i)
      && Strovl.Reliable_link.store_size a = 0)

(* The realtime link never duplicates a delivery and never delivers
   something that was not sent, no matter the loss pattern. *)
let qcheck_realtime_no_duplicates =
  QCheck.Test.make ~name:"realtime: no duplicates under arbitrary drops"
    ~count:150
    QCheck.(
      pair
        (list_of_size (Gen.int_bound 15) (int_bound 80))
        (list_of_size (Gen.int_bound 15) (int_bound 80)))
    (fun (drops_ab, drops_ba) ->
      let p, ctx_a, ctx_b = make_pipe () in
      let got = ref [] in
      let a, _b = rt_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
      p.drop_a2b <- (fun i _ -> List.mem i drops_ab);
      p.drop_b2a <- (fun i _ -> List.mem i drops_ba);
      let n = 20 in
      for s = 0 to n - 1 do
        Strovl.Realtime_link.send a (packet ~seq:s p.engine)
      done;
      Engine.run p.engine;
      let sorted = List.sort compare !got in
      List.length (List.sort_uniq compare sorted) = List.length sorted
      && List.for_all (fun s -> s >= 0 && s < n) sorted)

(* FEC: never duplicates; every directly received packet is delivered; and
   with no parity losses, blocks with <= r data erasures fully recover. *)
let qcheck_fec_invariants =
  QCheck.Test.make ~name:"fec: no duplicates, erasures <= r recovered"
    ~count:150
    QCheck.(list_of_size (Gen.int_bound 6) (int_bound 15))
    (fun dropped_data ->
      let p, ctx_a, ctx_b = make_pipe () in
      let got = ref [] in
      let a, _b = fec_pair p ctx_a ctx_b ~up:(fun pkt -> got := pkt.P.seq :: !got) in
      (* Drop only data packets, by lseq (1-based), never parity. *)
      let dropped = List.sort_uniq compare (List.map (fun d -> d + 1) dropped_data) in
      p.drop_a2b <-
        (fun _ msg ->
          match msg with
          | Msg.Data { lseq; _ } -> List.mem lseq dropped
          | _ -> false);
      let n = 16 in
      for s = 0 to n - 1 do
        Strovl.Fec_link.send a (packet ~seq:s p.engine)
      done;
      Engine.run p.engine;
      let sorted = List.sort compare !got in
      let no_dups = List.sort_uniq compare sorted = sorted in
      (* Blocks are lseqs 1-4, 5-8, ...: a block with <= 2 drops recovers. *)
      let expected =
        List.filter
          (fun s ->
            let lseq = s + 1 in
            let block_first = (((lseq - 1) / 4) * 4) + 1 in
            let drops_in_block =
              List.length
                (List.filter
                   (fun d -> d >= block_first && d < block_first + 4)
                   dropped)
            in
            (not (List.mem lseq dropped)) || drops_in_block <= 2)
          (List.init n (fun i -> i))
      in
      no_dups && sorted = expected)

let () =
  Alcotest.run "strovl_protocols"
    [
      ("best_effort", [ Alcotest.test_case "forwards" `Quick best_effort_forwards ]);
      ( "reliable_link",
        [
          Alcotest.test_case "no loss" `Quick reliable_no_loss;
          Alcotest.test_case "recovers out of order" `Quick reliable_recovers_loss_out_of_order;
          Alcotest.test_case "in-order mode" `Quick reliable_in_order_mode;
          Alcotest.test_case "tail loss rto" `Quick reliable_tail_loss_rto;
          Alcotest.test_case "nack loss retried" `Quick reliable_nack_loss_retried;
          Alcotest.test_case "duplicate suppressed" `Quick reliable_duplicate_suppressed;
          Alcotest.test_case "ack loss refresh" `Quick reliable_ack_loss_recovered_by_refresh;
          Alcotest.test_case "drain store" `Quick reliable_drain_store;
          Alcotest.test_case "nack give-up" `Quick reliable_nack_gives_up_eventually;
        ] );
      ( "realtime_link",
        [
          Alcotest.test_case "recovers in budget" `Quick realtime_recovers_in_budget;
          Alcotest.test_case "duplicate requests" `Quick realtime_duplicate_requests_single_m;
          Alcotest.test_case "gives up after N" `Quick realtime_gives_up_after_n_requests;
          Alcotest.test_case "forgotten packet" `Quick realtime_request_for_forgotten_packet;
          Alcotest.test_case "overhead counter" `Quick realtime_overhead_counter;
          Alcotest.test_case "burst recovery" `Quick realtime_burst_recovery;
          Alcotest.test_case "overhead with loss" `Quick realtime_overhead_with_loss;
        ] );
      ( "it_priority",
        [
          Alcotest.test_case "round robin fair" `Quick itp_round_robin_fair;
          Alcotest.test_case "priority eviction" `Quick itp_priority_eviction;
          Alcotest.test_case "fifo drop tail" `Quick itp_fifo_mode_drop_tail;
          Alcotest.test_case "recv passes up" `Quick itp_recv_passes_up;
        ] );
      ( "it_reliable",
        [
          Alcotest.test_case "delivery and ack" `Quick itr_delivery_and_ack;
          Alcotest.test_case "flow cap refuses" `Quick itr_flow_cap_refuses;
          Alcotest.test_case "retransmits until acked" `Quick itr_retransmits_until_acked;
          Alcotest.test_case "round robin flows" `Quick itr_round_robin_across_flows;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_reliable_exactly_once;
          QCheck_alcotest.to_alcotest qcheck_realtime_no_duplicates;
          QCheck_alcotest.to_alcotest qcheck_fec_invariants;
        ] );
      ( "fec_link",
        [
          Alcotest.test_case "no loss" `Quick fec_no_loss;
          Alcotest.test_case "recovers within budget" `Quick fec_recovers_within_parity_budget;
          Alcotest.test_case "burst defeats block" `Quick fec_burst_defeats_block;
          Alcotest.test_case "parity loss tolerated" `Quick fec_parity_loss_tolerated;
          Alcotest.test_case "flush partial block" `Quick fec_flush_partial_block;
          Alcotest.test_case "no duplicates" `Quick fec_no_duplicates;
        ] );
    ]
