(* System-level stress and corner-case tests: every service class running
   simultaneously over one lossy overlay, TTL guards, signing behaviour,
   and protocol interactions that only appear under combined load. *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module P = Strovl.Packet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_ms engine ms = Engine.run ~until:(Time.add (Engine.now engine) (Time.ms ms)) engine

(* All five service classes sharing one overlay with 1% loss everywhere:
   each class must honour its own contract simultaneously. *)
let all_services_coexist () =
  let config = { Strovl.Net.default_config with Strovl.Net.authenticate = true } in
  let engine = Engine.create ~seed:101L () in
  let net = Strovl.Net.create ~config engine (Gen.us_backbone ()) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let rng = Rng.split_named (Engine.rng engine) "stress" in
  Strovl_net.Underlay.set_all_segment_loss (Strovl.Net.underlay net) (fun si _ ->
      Loss.bernoulli (Rng.split_named rng (string_of_int si)) ~p:0.01);
  let src = 0 and dst = 8 in
  let mk_flow i service =
    let tx = Strovl.Client.attach (Strovl.Net.node net src) ~port:(100 + i) in
    let rx = Strovl.Client.attach (Strovl.Net.node net dst) ~port:(200 + i) in
    let got = ref [] in
    Strovl.Client.set_receiver rx (fun pkt -> got := pkt.P.seq :: !got);
    let sender =
      Strovl.Client.sender tx ~service ~dest:(P.To_node dst) ~dport:(200 + i) ()
    in
    (sender, got)
  in
  let be, be_got = mk_flow 0 P.Best_effort in
  let rel, rel_got = mk_flow 1 P.Reliable in
  let rt, rt_got =
    mk_flow 2 (P.Realtime { deadline = Time.ms 200; n_requests = 3; m_retrans = 3 })
  in
  let itp, itp_got = mk_flow 3 (P.It_priority 5) in
  let itr, itr_got = mk_flow 4 P.It_reliable in
  let count = 300 in
  for _ = 1 to count do
    List.iter (fun s -> ignore (Strovl.Client.send s ~bytes:500 ())) [ be; rel; rt; itp; itr ];
    run_ms engine 10
  done;
  run_ms engine 5000;
  let n l = List.length !l in
  (* Best effort: loses roughly the path loss rate, nothing recovered. *)
  check_bool "best-effort lossy but mostly there" true
    (n be_got > count * 80 / 100 && n be_got < count);
  (* Reliable: complete and in order. *)
  Alcotest.(check (list int)) "reliable complete in order"
    (List.init count (fun i -> i))
    (List.rev !rel_got);
  (* Realtime: near-complete (bounded loss), in order. *)
  check_bool "realtime near complete" true (n rt_got >= count * 97 / 100);
  check_bool "realtime ordered" true
    (let l = List.rev !rt_got in
     List.sort compare l = l);
  (* IT flows complete (It_reliable ordered; It_priority may reorder). *)
  check_bool "it-priority near complete" true (n itp_got >= count * 95 / 100);
  Alcotest.(check (list int)) "it-reliable complete in order"
    (List.init count (fun i -> i))
    (List.rev !itr_got)

(* A packet that has consumed its TTL is dropped, not forwarded forever. *)
let ttl_guard () =
  let engine = Engine.create ~seed:5L () in
  let net = Strovl.Net.create engine (Gen.chain ~n:3 ~hop_delay:(Time.ms 10)) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let rx = Strovl.Client.attach (Strovl.Net.node net 2) ~port:2 in
  let got = ref 0 in
  Strovl.Client.set_receiver rx (fun _ -> incr got);
  let flow = { P.f_src = 0; f_sport = 1; f_dest = P.To_node 2; f_dport = 2 } in
  let fresh = P.make ~flow ~routing:P.Link_state ~service:P.Best_effort ~seq:0
      ~sent_at:(Engine.now engine) ~bytes:10 () in
  let rec exhaust p n = if n = 0 then p else exhaust (P.next_hop_copy p) (n - 1) in
  let stale = exhaust fresh P.max_hops in
  ignore (Strovl.Node.originate (Strovl.Net.node net 0) stale);
  run_ms engine 500;
  check_int "ttl-expired dropped" 0 !got;
  check_bool "counted" true
    ((Strovl.Node.counters (Strovl.Net.node net 0)).Strovl.Node.dropped_ttl > 0);
  ignore (Strovl.Node.originate (Strovl.Net.node net 0) { stale with P.seq = 1; hops = 0 });
  run_ms engine 500;
  check_int "fresh one delivered" 1 !got

(* Origination signs IT packets when a registry is configured; receivers
   drop an IT packet whose signature was stripped or corrupted in flight. *)
let it_signature_enforcement () =
  let config = { Strovl.Net.default_config with Strovl.Net.authenticate = true } in
  let engine = Engine.create ~seed:9L () in
  let net = Strovl.Net.create ~config engine (Gen.chain ~n:3 ~hop_delay:(Time.ms 10)) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let rx = Strovl.Client.attach (Strovl.Net.node net 2) ~port:2 in
  let got = ref 0 in
  Strovl.Client.set_receiver rx (fun _ -> incr got);
  (* Node 1 strips signatures from transiting IT data. *)
  Strovl.Net.set_wire_tap net ~node:1 (fun ~dir ~link:_ msg ->
      match (dir, msg) with
      | `Out, Strovl.Msg.Data ({ pkt; _ } as d) ->
        Strovl.Net.Replace
          (Strovl.Msg.Data { d with pkt = { pkt with P.auth = None } })
      | _ -> Strovl.Net.Pass);
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:1 in
  let s =
    Strovl.Client.sender tx ~service:(P.It_priority 1) ~dest:(P.To_node 2) ~dport:2 ()
  in
  for _ = 1 to 10 do
    ignore (Strovl.Client.send s ());
    run_ms engine 10
  done;
  run_ms engine 500;
  check_int "stripped signatures rejected" 0 !got;
  check_bool "auth drops counted" true
    ((Strovl.Node.counters (Strovl.Net.node net 2)).Strovl.Node.dropped_auth > 0);
  (* Best-effort is not signature-checked: same tamper leaves it alone. *)
  let s2 = Strovl.Client.sender tx ~dest:(P.To_node 2) ~dport:2 () in
  for _ = 1 to 10 do
    ignore (Strovl.Client.send s2 ());
    run_ms engine 10
  done;
  run_ms engine 500;
  check_int "best effort unaffected" 10 !got

(* Group churn under live multicast traffic: joins and leaves mid-stream
   never duplicate and never wedge the stream for remaining members. *)
let group_churn_under_traffic () =
  let engine = Engine.create ~seed:13L () in
  let net = Strovl.Net.create engine (Gen.us_backbone ()) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let group = 66 in
  let stable = Strovl.Client.attach (Strovl.Net.node net 8) ~port:3 in
  Strovl.Client.join stable ~group;
  let stable_got = ref [] in
  Strovl.Client.set_receiver stable (fun pkt -> stable_got := pkt.P.seq :: !stable_got);
  let churner = Strovl.Client.attach (Strovl.Net.node net 11) ~port:3 in
  let churn_got = ref 0 in
  Strovl.Client.set_receiver churner (fun _ -> incr churn_got);
  run_ms engine 500;
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:4 in
  let s = Strovl.Client.sender tx ~dest:(P.To_group group) ~dport:3 () in
  for i = 0 to 199 do
    if i = 50 then Strovl.Client.join churner ~group;
    if i = 150 then Strovl.Client.leave churner ~group;
    ignore (Strovl.Client.send s ());
    run_ms engine 10
  done;
  run_ms engine 1000;
  check_int "stable member got everything once" 200
    (List.length (List.sort_uniq compare !stable_got));
  check_int "no duplicates" 200 (List.length !stable_got);
  check_bool "churner got roughly its window" true
    (!churn_got > 60 && !churn_got < 140)

(* Saturating one service class must not starve control traffic: hellos and
   LSUs keep flowing, so a concurrent failure is still detected. *)
let control_plane_survives_data_flood () =
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.link =
        { Strovl_net.Link.default_config with Strovl_net.Link.bandwidth_bps = 5_000_000 };
    }
  in
  let engine = Engine.create ~seed:15L () in
  let net = Strovl.Net.create ~config engine (Gen.ring ~n:4 ~hop_delay:(Time.ms 10)) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:1 in
  let s = Strovl.Client.sender tx ~dest:(P.To_node 2) ~dport:2 () in
  (* ~16 Mbit/s offered into a 5 Mbit/s link. *)
  let src =
    Strovl_apps.Source.start ~engine ~sender:s ~interval:(Time.us 600) ~bytes:1200 ()
  in
  run_ms engine 2000;
  Strovl_net.Underlay.fail_segment (Strovl.Net.underlay net) 2;
  run_ms engine 2000;
  Strovl_apps.Source.stop src;
  check_bool "failure detected despite flood" true
    (not (Strovl.Conn_graph.usable (Strovl.Node.conn (Strovl.Net.node net 0)) 2))

(* IT-Priority's drop policy: when a source's buffer overflows, "the oldest
   lowest priority message for that source" is dropped, keeping the highest
   priority messages timely (SIV-B). End to end: one source overdrives a
   slow link with mixed-priority traffic; the high-priority stream must
   survive nearly intact while low-priority absorbs the loss. *)
let priority_semantics_under_congestion () =
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.link =
        { Strovl_net.Link.default_config with Strovl_net.Link.bandwidth_bps = 1_500_000 };
    }
  in
  let engine = Engine.create ~seed:19L () in
  let net = Strovl.Net.create ~config engine (Gen.chain ~n:3 ~hop_delay:(Time.ms 10)) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:1 in
  let rx = Strovl.Client.attach (Strovl.Net.node net 2) ~port:2 in
  let hi = ref 0 and lo = ref 0 in
  Strovl.Client.set_receiver rx (fun pkt ->
      match pkt.P.service with
      | P.It_priority p when p >= 9 -> incr hi
      | _ -> incr lo);
  let s_hi =
    Strovl.Client.sender tx ~service:(P.It_priority 9) ~dest:(P.To_node 2) ~dport:2 ()
  in
  let s_lo =
    Strovl.Client.sender tx ~service:(P.It_priority 1) ~dest:(P.To_node 2) ~dport:2 ()
  in
  (* Each flow offers ~0.96 Mbit/s; together 1.92 > the 1.5 Mbit/s link,
     but high priority alone fits comfortably. *)
  let n = 800 in
  for _ = 1 to n do
    ignore (Strovl.Client.send s_hi ~bytes:1200 ());
    ignore (Strovl.Client.send s_lo ~bytes:1200 ());
    run_ms engine 10
  done;
  run_ms engine 3000;
  check_bool "high priority nearly intact" true (!hi > n * 90 / 100);
  check_bool "low priority absorbed the loss" true (!lo < n * 75 / 100);
  check_bool "clear separation" true (!hi - !lo > n / 4)

(* Soak: a minute of continuous random fiber churn while a reliable flow
   runs; the flow must deliver every packet exactly once and in order, and
   the overlay must end converged (all links back up in every node's
   view). *)
let chaos_soak_reliable_exactly_once () =
  (* The invariant auditor rides along for the whole soak: continuous link
     churn is exactly where duplicate deliveries, loops or blown recovery
     budgets would slip past the end-state assertions below. *)
  Strovl_obs.Trace.enable ~capacity:(1 lsl 18) ();
  Strovl_obs.Audit.arm ();
  let engine = Engine.create ~seed:404L () in
  let net = Strovl.Net.create engine (Gen.us_backbone ()) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let rng = Rng.split_named (Engine.rng engine) "soak" in
  let chaos =
    Strovl_attack.Chaos.start ~net ~rng ~mean_interval:(Time.ms 1500)
      ~mean_outage:(Time.ms 800) ()
  in
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:1 in
  let rx = Strovl.Client.attach (Strovl.Net.node net 8) ~port:2 in
  let got = ref [] in
  Strovl.Client.set_receiver rx (fun pkt -> got := pkt.P.seq :: !got);
  let sender =
    Strovl.Client.sender tx ~service:P.Reliable ~dest:(P.To_node 8) ~dport:2 ()
  in
  let count = 3000 in
  let source =
    Strovl_apps.Source.start ~engine ~sender ~interval:(Time.ms 20) ~bytes:600
      ~count ()
  in
  run_ms engine (20 * count);
  Strovl_attack.Chaos.stop chaos;
  run_ms engine 20_000;
  check_bool "chaos actually happened" true
    (Strovl_attack.Chaos.failures_injected chaos > 10);
  check_int "sent all" count (Strovl_apps.Source.sent source);
  Alcotest.(check (list int)) "exactly once, in order"
    (List.init count (fun i -> i))
    (List.rev !got);
  (* Every node's connectivity graph ends fully converged. *)
  for v = 0 to Strovl.Net.nnodes net - 1 do
    let conn = Strovl.Node.conn (Strovl.Net.node net v) in
    for l = 0 to Strovl_topo.Graph.link_count (Strovl.Net.graph net) - 1 do
      check_bool "link back up everywhere" true (Strovl.Conn_graph.usable conn l)
    done
  done;
  let vs = Strovl_obs.Audit.finish () in
  Strovl_obs.Audit.disarm ();
  Strovl_obs.Trace.disable ();
  List.iter (fun v -> Format.eprintf "%a@." Strovl_obs.Audit.pp_violation v) vs;
  check_int "auditor clean over the chaos soak" 0 (List.length vs)

(* The flight recorder must be as deterministic as the simulation itself:
   the same seed over a chaos soak yields bit-identical event streams. A
   digest mismatch means some instrumentation site depends on wall-clock
   state or hashtable iteration order. *)
let trace_determinism () =
  let soak seed =
    Strovl_obs.Trace.enable ~capacity:(1 lsl 16) ();
    let engine = Engine.create ~seed () in
    let net = Strovl.Net.create engine (Gen.us_backbone ()) in
    Strovl.Net.start net;
    Strovl.Net.settle net;
    let rng = Rng.split_named (Engine.rng engine) "soak" in
    ignore
      (Strovl_attack.Chaos.start ~net ~rng ~mean_interval:(Time.ms 1500)
         ~mean_outage:(Time.ms 800) ());
    let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:1 in
    let rx = Strovl.Client.attach (Strovl.Net.node net 8) ~port:2 in
    Strovl.Client.set_receiver rx ignore;
    let sender =
      Strovl.Client.sender tx ~service:P.Reliable ~dest:(P.To_node 8) ~dport:2 ()
    in
    let count = 500 in
    ignore
      (Strovl_apps.Source.start ~engine ~sender ~interval:(Time.ms 20) ~bytes:600
         ~count ());
    run_ms engine (20 * count);
    run_ms engine 10_000;
    let d = Strovl_obs.Trace.digest () in
    let n = Strovl_obs.Trace.total () in
    Strovl_obs.Trace.disable ();
    (d, n)
  in
  let d1, n1 = soak 404L in
  let d2, n2 = soak 404L in
  check_bool "trace nonempty" true (n1 > 0);
  check_int "same event count" n1 n2;
  Alcotest.(check int64) "same digest" d1 d2;
  let d3, _ = soak 405L in
  check_bool "different seed, different digest" true (d1 <> d3)

(* Drain-order determinism at the engine level: stepping the event queue
   one event at a time must visit identical timestamps across two runs at
   the same seed. This pins the (time, seq) tie-break through the pooled
   wheel/heap engine, below the trace layer — a digest can stay stable by
   luck while same-time events swap, but the step-by-step clock cannot.
   The drain is bounded (periodic protocol timers reschedule themselves
   forever, so an unbounded drain never terminates). *)
let drain_order_determinism () =
  let steps = 200 in
  let trace seed =
    let engine = Engine.create ~seed () in
    let net = Strovl.Net.create engine (Gen.us_backbone ()) in
    Strovl.Net.start net;
    Strovl.Net.settle net;
    let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:1 in
    let rx = Strovl.Client.attach (Strovl.Net.node net 8) ~port:2 in
    Strovl.Client.set_receiver rx ignore;
    let sender =
      Strovl.Client.sender tx ~service:P.Reliable ~dest:(P.To_node 8) ~dport:2 ()
    in
    ignore
      (Strovl_apps.Source.start ~engine ~sender ~interval:(Time.ms 20)
         ~bytes:600 ~count:50 ());
    let times = Array.make steps (-1) in
    for i = 0 to steps - 1 do
      check_bool "events remain" true (Engine.step engine);
      times.(i) <- Engine.now engine
    done;
    times
  in
  let t1 = trace 404L in
  let t2 = trace 404L in
  check_bool "nondegenerate (clock advances)" true (t1.(0) < t1.(steps - 1));
  Alcotest.(check (array int)) "identical step-by-step clock" t1 t2

let chaos_respects_partition_guard () =
  (* On a chain every failure partitions: the guard must skip them all. *)
  let engine = Engine.create ~seed:405L () in
  let net = Strovl.Net.create engine (Gen.chain ~n:4 ~hop_delay:(Time.ms 10)) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let rng = Rng.split_named (Engine.rng engine) "guard" in
  let chaos =
    Strovl_attack.Chaos.start ~net ~rng ~mean_interval:(Time.ms 200) ()
  in
  run_ms engine 10_000;
  Strovl_attack.Chaos.stop chaos;
  check_int "nothing injected on a chain" 0
    (Strovl_attack.Chaos.failures_injected chaos);
  check_bool "skips recorded" true
    (Strovl_attack.Chaos.skipped_for_partition chaos > 10)

let () =
  Alcotest.run "strovl_stress"
    [
      ( "system",
        [
          Alcotest.test_case "all services coexist" `Slow all_services_coexist;
          Alcotest.test_case "ttl guard" `Quick ttl_guard;
          Alcotest.test_case "it signature enforcement" `Quick it_signature_enforcement;
          Alcotest.test_case "group churn under traffic" `Quick group_churn_under_traffic;
          Alcotest.test_case "control plane under flood" `Quick control_plane_survives_data_flood;
          Alcotest.test_case "priority under congestion" `Quick priority_semantics_under_congestion;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "soak: reliable exactly once" `Slow chaos_soak_reliable_exactly_once;
          Alcotest.test_case "trace determinism" `Slow trace_determinism;
          Alcotest.test_case "drain order determinism" `Quick
            drain_order_determinism;
          Alcotest.test_case "partition guard" `Quick chaos_respects_partition_guard;
        ] );
    ]
