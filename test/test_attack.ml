(* Tests for compromised-node behaviours and attack scenarios. *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module P = Strovl.Packet
module B = Strovl_attack.Behavior

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build () =
  let engine = Engine.create ~seed:55L () in
  let net = Strovl.Net.create engine (Gen.chain ~n:3 ~hop_delay:(Time.ms 10)) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  (engine, net, Rng.create 1L)

let run_ms engine ms = Engine.run ~until:(Time.add (Engine.now engine) (Time.ms ms)) engine

(* Flow 0 -> 2 passes through node 1 on a 3-node chain. *)
let flow_through_middle engine net ~count =
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:1 in
  let rx = Strovl.Client.attach (Strovl.Net.node net 2) ~port:2 in
  let n = ref 0 in
  Strovl.Client.set_receiver rx (fun _ -> incr n);
  let s = Strovl.Client.sender tx ~dest:(P.To_node 2) ~dport:2 () in
  for _ = 1 to count do
    ignore (Strovl.Client.send s ());
    run_ms engine 5
  done;
  run_ms engine 500;
  !n

let is_data_helper () =
  check_bool "data" true
    (B.is_data
       (Strovl.Msg.Data
          {
            cls = 0;
            lseq = 1;
            pkt =
              P.make
                ~flow:{ P.f_src = 0; f_sport = 0; f_dest = P.To_node 1; f_dport = 0 }
                ~routing:P.Link_state ~service:P.Best_effort ~seq:0 ~sent_at:0
                ~bytes:1 ();
            auth = None;
          }));
  check_bool "hello is not data" false (B.is_data (Strovl.Msg.Hello { hseq = 1; sent_at = 0 }))

let blackhole_eats_data_keeps_topology () =
  let engine, net, rng = build () in
  B.apply net ~rng ~node:1 B.Blackhole;
  let n = flow_through_middle engine net ~count:20 in
  check_int "all data eaten" 0 n;
  (* Hellos still flow: links stay up in everyone's view. *)
  check_bool "topology looks healthy" true
    (Strovl.Conn_graph.usable (Strovl.Node.conn (Strovl.Net.node net 0)) 0
    && Strovl.Conn_graph.usable (Strovl.Node.conn (Strovl.Net.node net 2)) 1)

let crash_takes_links_down () =
  let engine, net, rng = build () in
  B.apply net ~rng ~node:1 B.Crash;
  run_ms engine 2000;
  check_bool "neighbors declared links down" true
    (not (Strovl.Node.link_up_view (Strovl.Net.node net 0) ~link:0))

let heal_restores () =
  let engine, net, rng = build () in
  B.apply net ~rng ~node:1 B.Blackhole;
  check_int "eaten" 0 (flow_through_middle engine net ~count:5);
  B.heal net ~node:1;
  check_int "restored" 5 (flow_through_middle engine net ~count:5)

let selective_drops_matching_flow () =
  let engine, net, rng = build () in
  B.apply net ~rng ~node:1 (B.Selective (fun f -> f.P.f_sport = 1));
  let n_victim = flow_through_middle engine net ~count:10 in
  check_int "victim flow eaten" 0 n_victim;
  (* A flow from another port passes. *)
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:9 in
  let rx = Strovl.Client.attach (Strovl.Net.node net 2) ~port:8 in
  let n = ref 0 in
  Strovl.Client.set_receiver rx (fun _ -> incr n);
  let s = Strovl.Client.sender tx ~dest:(P.To_node 2) ~dport:8 () in
  for _ = 1 to 10 do
    ignore (Strovl.Client.send s ());
    run_ms engine 5
  done;
  run_ms engine 500;
  check_int "other flow untouched" 10 !n

let delay_data_defers () =
  let engine, net, rng = build () in
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:1 in
  let rx = Strovl.Client.attach (Strovl.Net.node net 2) ~port:2 in
  let lat = ref 0 in
  Strovl.Client.set_receiver rx (fun pkt ->
      lat := Time.sub (Engine.now engine) pkt.P.sent_at);
  let s = Strovl.Client.sender tx ~dest:(P.To_node 2) ~dport:2 () in
  ignore (Strovl.Client.send s ());
  run_ms engine 500;
  let base = !lat in
  B.apply net ~rng ~node:1 (B.Delay_data (Time.ms 50));
  ignore (Strovl.Client.send s ());
  run_ms engine 500;
  check_bool "50ms added" true (!lat >= base + Time.ms 50)

let drop_fraction_statistical () =
  let engine, net, rng = build () in
  B.apply net ~rng ~node:1 (B.Drop_fraction 0.5);
  let n = flow_through_middle engine net ~count:200 in
  check_bool "roughly half" true (n > 60 && n < 140)

let pick_interior_excludes_endpoints () =
  let g = Gen.overlay_graph (Gen.us_backbone ()) in
  let rng = Rng.create 2L in
  let picked = Strovl_attack.Scenario.pick_interior ~rng ~graph:g ~src:0 ~dst:8 ~k:5 in
  check_int "k picked" 5 (List.length picked);
  check_bool "excludes src/dst" true
    (not (List.mem 0 picked) && not (List.mem 8 picked));
  check_int "distinct" 5 (List.length (List.sort_uniq compare picked))

let flooder_generates_load () =
  let engine, net, _rng = build () in
  let src =
    Strovl_attack.Scenario.flooder ~net ~node:0 ~port:66 ~dest:(P.To_node 2)
      ~dport:2 ~service:(P.It_priority 1) ~rate_pps:1000 ~bytes:500
  in
  run_ms engine 1000;
  check_bool "~1000 pps" true
    (Strovl_apps.Source.sent src > 900 && Strovl_apps.Source.sent src <= 1100)

let () =
  Alcotest.run "strovl_attack"
    [
      ( "behavior",
        [
          Alcotest.test_case "is_data" `Quick is_data_helper;
          Alcotest.test_case "blackhole" `Quick blackhole_eats_data_keeps_topology;
          Alcotest.test_case "crash" `Quick crash_takes_links_down;
          Alcotest.test_case "heal" `Quick heal_restores;
          Alcotest.test_case "selective" `Quick selective_drops_matching_flow;
          Alcotest.test_case "delay" `Quick delay_data_defers;
          Alcotest.test_case "drop fraction" `Quick drop_fraction_statistical;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "pick interior" `Quick pick_interior_excludes_endpoints;
          Alcotest.test_case "flooder" `Quick flooder_generates_load;
        ] );
    ]
