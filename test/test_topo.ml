(* Tests for graphs, shortest paths, flows, disjoint paths, bitmasks,
   multicast trees, dissemination graphs, and topology generators. *)

open Strovl_topo

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small diamond with a long chord:
     0 --1-- 1 --1-- 3
     0 --2-- 2 --2-- 3
     1 --5-- 2                       *)
let diamond () =
  let g = Graph.create ~n:4 in
  let l01 = Graph.add_link g 0 1 in
  let l13 = Graph.add_link g 1 3 in
  let l02 = Graph.add_link g 0 2 in
  let l23 = Graph.add_link g 2 3 in
  let l12 = Graph.add_link g 1 2 in
  let w = [| 1; 1; 2; 2; 5 |] in
  (g, (fun l -> w.(l)), (l01, l13, l02, l23, l12))

(* ------------------------------- Graph ------------------------------ *)

let graph_basics () =
  let g, _, (l01, l13, l02, _, _) = diamond () in
  check_int "n" 4 (Graph.n g);
  check_int "links" 5 (Graph.link_count g);
  Alcotest.(check (pair int int)) "endpoints" (0, 1) (Graph.endpoints g l01);
  check_int "other_end" 0 (Graph.other_end g l01 1);
  check_int "degree 0" 2 (Graph.degree g 0);
  check_int "degree 1" 3 (Graph.degree g 1);
  Alcotest.(check (list int)) "incident 0" [ l01; l02 ] (Graph.incident g 0);
  Alcotest.(check (option int)) "find_link" (Some l13) (Graph.find_link g 3 1);
  Alcotest.(check (option int)) "find_link absent" None (Graph.find_link g 0 3);
  check_bool "connected" true (Graph.connected g)

let graph_errors () =
  let g = Graph.create ~n:3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_link: self-loop")
    (fun () -> ignore (Graph.add_link g 1 1));
  Alcotest.check_raises "node range" (Invalid_argument "Graph: node out of range")
    (fun () -> ignore (Graph.add_link g 0 3));
  let l = Graph.add_link g 0 1 in
  Alcotest.check_raises "other_end wrong node"
    (Invalid_argument "Graph.other_end: node not an endpoint") (fun () ->
      ignore (Graph.other_end g l 2))

let graph_usable_reachability () =
  let g, _, (l01, l13, l02, l23, _) = diamond () in
  ignore (l01, l13);
  let usable l = l <> l02 && l <> l23 in
  let seen = Graph.reachable ~usable g 2 in
  check_bool "2 reaches 1 via chord" true seen.(1);
  let usable l = l = l02 in
  check_bool "partitioned" false (Graph.connected ~usable g);
  let seen = Graph.reachable ~usable g 0 in
  check_bool "0 reaches 2" true seen.(2);
  check_bool "0 cannot reach 3" false seen.(3)

(* ------------------------------ Dijkstra ----------------------------- *)

let dijkstra_distances () =
  let g, w, (l01, l13, _, _, _) = diamond () in
  let r = Dijkstra.run ~weight:w g 0 in
  Alcotest.(check (array int)) "dist" [| 0; 1; 2; 2 |] r.Dijkstra.dist;
  Alcotest.(check (option (list int))) "path 0->3" (Some [ l01; l13 ])
    (Dijkstra.path_to r 3);
  Alcotest.(check (option (list int))) "node path" (Some [ 0; 1; 3 ])
    (Dijkstra.node_path_to r 3)

let dijkstra_next_hops () =
  let g, w, (l01, _, l02, _, _) = diamond () in
  let r = Dijkstra.run ~weight:w g 0 in
  let hops = Dijkstra.next_hops g r in
  Alcotest.(check (option (pair int int))) "to 3 via 1" (Some (1, l01)) hops.(3);
  Alcotest.(check (option (pair int int))) "to 2 direct" (Some (2, l02)) hops.(2);
  Alcotest.(check (option (pair int int))) "self" None hops.(0)

let dijkstra_unreachable () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_link g 0 1);
  let r = Dijkstra.run ~weight:(fun _ -> 1) g 0 in
  check_int "unreachable dist" max_int r.Dijkstra.dist.(2);
  Alcotest.(check (option (list int))) "no path" None (Dijkstra.path_to r 2);
  Alcotest.(check (option int)) "distance none" None
    (Dijkstra.distance ~weight:(fun _ -> 1) g 0 2)

let dijkstra_usable_reroute () =
  let g, w, (l01, l13, _, _, _) = diamond () in
  ignore l13;
  let usable l = l <> l01 in
  let r = Dijkstra.run ~usable ~weight:w g 0 in
  check_int "rerouted via 2" 4 r.Dijkstra.dist.(3)

let dijkstra_diameter () =
  let g, w, _ = diamond () in
  check_int "diameter" 3 (Dijkstra.diameter ~weight:w g);
  check_int "ecc of 0" 2 (Dijkstra.eccentricity ~weight:w g 0)

let qcheck_dijkstra_next_hop_consistent =
  QCheck.Test.make ~name:"following next hops decreases distance" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Strovl_sim.Rng.create (Int64.of_int seed) in
      let spec = Gen.random_geometric rng ~n:14 ~radius:0.45 ~nisps:1 in
      let g = Gen.overlay_graph spec in
      let w l = max 1 l in
      let r = Dijkstra.run ~weight:w g 0 in
      let hops = Dijkstra.next_hops g r in
      let ok = ref true in
      for v = 1 to Graph.n g - 1 do
        match hops.(v) with
        | None -> if r.Dijkstra.dist.(v) <> max_int then ok := false
        | Some (nbr, l) ->
          let a, b = Graph.endpoints g l in
          if not ((a = 0 && b = nbr) || (b = 0 && a = nbr)) then ok := false;
          if r.Dijkstra.dist.(nbr) >= r.Dijkstra.dist.(v) && v <> nbr then
            if r.Dijkstra.dist.(v) <> max_int then ok := false
      done;
      !ok)

(* ------------------------------ Maxflow ------------------------------ *)

let maxflow_basic () =
  (* Two parallel unit paths plus a cross edge: classic flow of 2. *)
  let f = Maxflow.create ~n:4 in
  let a1 = Maxflow.add_arc f ~src:0 ~dst:1 ~cap:1 in
  let _ = Maxflow.add_arc f ~src:0 ~dst:2 ~cap:1 in
  let _ = Maxflow.add_arc f ~src:1 ~dst:3 ~cap:1 in
  let _ = Maxflow.add_arc f ~src:2 ~dst:3 ~cap:1 in
  let _ = Maxflow.add_arc f ~src:1 ~dst:2 ~cap:1 in
  check_int "max flow" 2 (Maxflow.max_flow f ~src:0 ~dst:3);
  check_int "arc flow" 1 (Maxflow.flow_on f a1);
  let cut = Maxflow.min_cut_reachable f ~src:0 in
  check_bool "src side" true cut.(0);
  check_bool "sink not reachable" false cut.(3)

let maxflow_capacities () =
  let f = Maxflow.create ~n:3 in
  let _ = Maxflow.add_arc f ~src:0 ~dst:1 ~cap:5 in
  let _ = Maxflow.add_arc f ~src:1 ~dst:2 ~cap:3 in
  check_int "bottleneck" 3 (Maxflow.max_flow f ~src:0 ~dst:2)

(* ------------------------------ Disjoint ----------------------------- *)

let disjoint_diamond () =
  let g, w, _ = diamond () in
  check_int "two disjoint paths" 2 (Disjoint.max_disjoint g 0 3);
  let ps = Disjoint.paths ~weight:w ~k:2 g 0 3 in
  check_int "got 2" 2 (List.length ps);
  check_bool "verified" true (Disjoint.verify_disjoint g 0 3 ps);
  let ps3 = Disjoint.paths ~weight:w ~k:3 g 0 3 in
  check_int "only 2 exist" 2 (List.length ps3)

let disjoint_chain () =
  let spec = Gen.chain ~n:5 ~hop_delay:10 in
  let g = Gen.overlay_graph spec in
  check_int "chain has 1" 1 (Disjoint.max_disjoint g 0 4);
  let ps = Disjoint.paths ~weight:(fun _ -> 1) ~k:2 g 0 4 in
  check_int "one path" 1 (List.length ps);
  Alcotest.(check (list int)) "path nodes" [ 0; 1; 2; 3; 4 ]
    (Disjoint.path_nodes g 0 (List.hd ps))

let disjoint_circulant () =
  let spec = Gen.circulant ~n:8 ~jumps:[ 1; 2 ] ~hop_delay:10 in
  let g = Gen.overlay_graph spec in
  check_int "C8(1,2) connectivity 4" 4 (Disjoint.max_disjoint g 0 4);
  let ps = Disjoint.paths ~weight:(fun _ -> 10) ~k:4 g 0 4 in
  check_int "4 paths" 4 (List.length ps);
  check_bool "disjoint" true (Disjoint.verify_disjoint g 0 4 ps)

let disjoint_min_total_weight () =
  let g, w, (l01, l13, l02, l23, l12) = diamond () in
  ignore l12;
  let ps = Disjoint.paths ~weight:w ~k:2 g 0 3 in
  let total =
    List.fold_left
      (fun acc p -> acc + List.fold_left (fun a l -> a + w l) 0 p)
      0 ps
  in
  (* Optimal pair: (0-1-3)=2 and (0-2-3)=4, total 6. *)
  check_int "min total weight" 6 total;
  check_bool "uses both sides" true
    (List.exists (fun p -> List.mem l01 p && List.mem l13 p) ps
    && List.exists (fun p -> List.mem l02 p && List.mem l23 p) ps)

let qcheck_disjoint_valid =
  QCheck.Test.make ~name:"disjoint paths are valid and disjoint" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Strovl_sim.Rng.create (Int64.of_int seed) in
      let spec = Gen.random_geometric rng ~n:12 ~radius:0.5 ~nisps:1 in
      let g = Gen.overlay_graph spec in
      let src = 0 and dst = Graph.n g - 1 in
      let ps = Disjoint.paths ~weight:(fun _ -> 1) ~k:3 g src dst in
      ps = [] || Disjoint.verify_disjoint g src dst ps)

let qcheck_disjoint_count_matches_mincut =
  QCheck.Test.make ~name:"paths count = max_disjoint when k large" ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Strovl_sim.Rng.create (Int64.of_int seed) in
      let spec = Gen.random_geometric rng ~n:10 ~radius:0.5 ~nisps:1 in
      let g = Gen.overlay_graph spec in
      let src = 0 and dst = Graph.n g - 1 in
      let k = Disjoint.max_disjoint g src dst in
      let ps = Disjoint.paths ~weight:(fun _ -> 1) ~k:99 g src dst in
      List.length ps = k)

(* ------------------------------ Bitmask ------------------------------ *)

let bitmask_basics () =
  let m = Bitmask.create ~nlinks:130 in
  check_bool "empty" true (Bitmask.is_empty m);
  Bitmask.set m 0;
  Bitmask.set m 64;
  Bitmask.set m 129;
  check_int "count" 3 (Bitmask.count m);
  check_bool "mem 64" true (Bitmask.mem m 64);
  check_bool "not mem 1" false (Bitmask.mem m 1);
  Bitmask.clear m 64;
  check_bool "cleared" false (Bitmask.mem m 64);
  Alcotest.(check (list int)) "to_links" [ 0; 129 ] (Bitmask.to_links m);
  check_int "bytes (3 words)" 24 (Bitmask.byte_size m)

let bitmask_setops () =
  let a = Bitmask.of_links ~nlinks:70 [ 1; 2; 3 ] in
  let b = Bitmask.of_links ~nlinks:70 [ 3; 4; 69 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 69 ]
    (Bitmask.to_links (Bitmask.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitmask.to_links (Bitmask.inter a b));
  check_bool "equal copy" true (Bitmask.equal a (Bitmask.copy a));
  let f = Bitmask.full ~nlinks:70 in
  check_int "full count" 70 (Bitmask.count f);
  Alcotest.check_raises "range" (Invalid_argument "Bitmask: link out of range")
    (fun () -> ignore (Bitmask.mem a 70))

let qcheck_bitmask_roundtrip =
  QCheck.Test.make ~name:"of_links/to_links roundtrip" ~count:300
    QCheck.(list (int_bound 199))
    (fun links ->
      let m = Bitmask.of_links ~nlinks:200 links in
      Bitmask.to_links m = List.sort_uniq compare links)

(* ------------------------------- Mcast ------------------------------- *)

let mcast_tree_covers () =
  let spec = Gen.us_backbone () in
  let g = Gen.overlay_graph spec in
  let w _ = 1 in
  let members = [ 8; 11; 2 ] in
  let tree = Mcast.shortest_path_tree ~weight:w g ~source:0 ~members in
  List.iter (fun m -> check_bool "covers member" true (Mcast.covers tree m)) members;
  check_bool "tree smaller than unicast" true
    (Mcast.link_cost tree <= Mcast.unicast_link_cost ~weight:w g ~source:0 ~members);
  (* out_links partition the tree links *)
  let out_total = Array.fold_left (fun acc l -> acc + List.length l) 0 tree.Mcast.out_links in
  check_int "out links = tree links" (Mcast.link_cost tree) out_total

let mcast_unreachable_member () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_link g 0 1);
  let tree = Mcast.shortest_path_tree ~weight:(fun _ -> 1) g ~source:0 ~members:[ 1; 2 ] in
  check_bool "reachable covered" true (Mcast.covers tree 1);
  check_bool "unreachable dropped" false (Mcast.covers tree 2)

let qcheck_mcast_tree_size =
  QCheck.Test.make ~name:"tree links <= unicast links" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Strovl_sim.Rng.create (Int64.of_int seed) in
      let spec = Gen.random_geometric rng ~n:12 ~radius:0.5 ~nisps:1 in
      let g = Gen.overlay_graph spec in
      let members = [ Graph.n g - 1; Graph.n g / 2 ] in
      let w _ = 1 in
      let tree = Mcast.shortest_path_tree ~weight:w g ~source:0 ~members in
      Mcast.link_cost tree <= Mcast.unicast_link_cost ~weight:w g ~source:0 ~members)

(* ------------------------------- Dissem ------------------------------ *)

let dissem_single_is_shortest () =
  let g, w, (l01, l13, _, _, _) = diamond () in
  let m = Dissem.build ~weight:w g ~src:0 ~dst:3 Dissem.Single_path in
  Alcotest.(check (list int)) "shortest path links" [ l01; l13 ] (Bitmask.to_links m)

let dissem_flooding_all () =
  let g, w, _ = diamond () in
  let m = Dissem.build ~weight:w g ~src:0 ~dst:3 Dissem.Flooding in
  check_int "all links" 5 (Bitmask.count m)

let dissem_two_disjoint_survives () =
  let g, w, _ = diamond () in
  let m = Dissem.build ~weight:w g ~src:0 ~dst:3 Dissem.Two_disjoint in
  check_bool "connects" true (Dissem.connects g m ~src:0 ~dst:3);
  (* Removing any single interior node leaves a path. *)
  List.iter
    (fun victim ->
      let down l =
        let a, b = Graph.endpoints g l in
        a = victim || b = victim
      in
      check_bool "survives one node" true (Dissem.connects ~down g m ~src:0 ~dst:3))
    [ 1; 2 ]

let dissem_cost_ordering () =
  let spec = Gen.us_backbone () in
  let g = Gen.overlay_graph spec in
  let w _ = 1 in
  let c s = Dissem.cost (Dissem.build ~weight:w g ~src:5 ~dst:11 s) in
  check_bool "single <= 2disjoint" true (c Dissem.Single_path <= c Dissem.Two_disjoint);
  check_bool "2disjoint <= src-problem" true (c Dissem.Two_disjoint <= c Dissem.Source_problem);
  check_bool "src-problem <= flooding" true (c Dissem.Source_problem <= c Dissem.Flooding);
  check_bool "robust >= src-problem" true (c Dissem.Robust_both >= c Dissem.Source_problem)

let dissem_scheme_names () =
  Alcotest.(check string) "name" "3-disjoint" (Dissem.scheme_name (Dissem.K_disjoint 3));
  Alcotest.(check string) "name" "flooding" (Dissem.scheme_name Dissem.Flooding)

(* -------------------------------- Gen -------------------------------- *)

let gen_us_backbone () =
  let spec = Gen.us_backbone () in
  let g = Gen.overlay_graph spec in
  check_int "12 sites" 12 (Graph.n g);
  check_bool "connected" true (Graph.connected g);
  check_int "3 isps" 3 spec.Gen.nisps;
  (* Overlay links should be shortish: most under ~15ms. *)
  let delays =
    Array.to_list
      (Array.map
         (fun (a, b) -> Gen.geo_delay_us spec.Gen.sites.(a) spec.Gen.sites.(b))
         spec.Gen.overlay_links)
  in
  let sorted = List.sort compare delays in
  let median = List.nth sorted (List.length sorted / 2) in
  check_bool "median link ~<=10ms" true (median <= Strovl_sim.Time.ms 11)

let gen_isp_paths () =
  let spec = Gen.us_backbone () in
  (* ISP 0 covers everything directly. *)
  Alcotest.(check bool) "isp0 SEA-SFO" true
    (Gen.overlay_link_delay spec ~isp:0 0 1 <> None);
  (* ISP 1 has no Phoenix fiber at all: PHX (site 3) is unreachable there. *)
  Alcotest.(check (option int)) "phx off-net on isp1" None
    (Gen.overlay_link_delay spec ~isp:1 2 3);
  (* ISP 2 lacks MIA-WAS fiber but detours via Atlanta. *)
  (match Gen.overlay_link_delay spec ~isp:2 8 9 with
  | Some d ->
    check_bool "mia-was on isp2 is indirect" true
      (d > Gen.geo_delay_us spec.Gen.sites.(8) spec.Gen.sites.(9))
  | None -> Alcotest.fail "isp2 should connect MIA-WAS via detour")

let gen_global_coverage () =
  let spec = Gen.global_backbone () in
  let g = Gen.overlay_graph spec in
  check_bool "a few tens of nodes" true (Graph.n g >= 20 && Graph.n g <= 40);
  check_bool "connected" true (Graph.connected g)

let gen_chain_ring_circulant () =
  let c = Gen.chain ~n:6 ~hop_delay:10_000 in
  check_int "chain links" 5 (Array.length c.Gen.overlay_links);
  let r = Gen.ring ~n:6 ~hop_delay:10_000 in
  check_int "ring links" 6 (Array.length r.Gen.overlay_links);
  let g = Gen.overlay_graph (Gen.circulant ~n:8 ~jumps:[ 1; 2 ] ~hop_delay:10_000) in
  for v = 0 to 7 do
    check_int "4-regular" 4 (Graph.degree g v)
  done

let gen_geo_delay_sane () =
  let ny = { Gen.name = "NYC"; lat = 40.71; lon = -74.01 } in
  let la = { Gen.name = "LAX"; lat = 34.05; lon = -118.25 } in
  let d = Gen.geo_delay_us ny la in
  (* ~3940 km great circle -> ~25.6ms with the 1.3 factor. *)
  check_bool "NYC-LAX ~25ms" true (d > 20_000 && d < 32_000);
  check_int "zero distance" 0 (Gen.geo_delay_us ny ny)

let qcheck_random_geometric_connected =
  QCheck.Test.make ~name:"random_geometric always connected" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Strovl_sim.Rng.create (Int64.of_int seed) in
      let spec = Gen.random_geometric rng ~n:15 ~radius:0.3 ~nisps:2 in
      Graph.connected (Gen.overlay_graph spec))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "strovl_topo"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick graph_basics;
          Alcotest.test_case "errors" `Quick graph_errors;
          Alcotest.test_case "usable reachability" `Quick graph_usable_reachability;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "distances" `Quick dijkstra_distances;
          Alcotest.test_case "next hops" `Quick dijkstra_next_hops;
          Alcotest.test_case "unreachable" `Quick dijkstra_unreachable;
          Alcotest.test_case "usable reroute" `Quick dijkstra_usable_reroute;
          Alcotest.test_case "diameter" `Quick dijkstra_diameter;
          q qcheck_dijkstra_next_hop_consistent;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "basic" `Quick maxflow_basic;
          Alcotest.test_case "capacities" `Quick maxflow_capacities;
        ] );
      ( "disjoint",
        [
          Alcotest.test_case "diamond" `Quick disjoint_diamond;
          Alcotest.test_case "chain" `Quick disjoint_chain;
          Alcotest.test_case "circulant" `Quick disjoint_circulant;
          Alcotest.test_case "min total weight" `Quick disjoint_min_total_weight;
          q qcheck_disjoint_valid;
          q qcheck_disjoint_count_matches_mincut;
        ] );
      ( "bitmask",
        [
          Alcotest.test_case "basics" `Quick bitmask_basics;
          Alcotest.test_case "set ops" `Quick bitmask_setops;
          q qcheck_bitmask_roundtrip;
        ] );
      ( "mcast",
        [
          Alcotest.test_case "tree covers" `Quick mcast_tree_covers;
          Alcotest.test_case "unreachable member" `Quick mcast_unreachable_member;
          q qcheck_mcast_tree_size;
        ] );
      ( "dissem",
        [
          Alcotest.test_case "single is shortest" `Quick dissem_single_is_shortest;
          Alcotest.test_case "flooding all" `Quick dissem_flooding_all;
          Alcotest.test_case "2-disjoint survives" `Quick dissem_two_disjoint_survives;
          Alcotest.test_case "cost ordering" `Quick dissem_cost_ordering;
          Alcotest.test_case "scheme names" `Quick dissem_scheme_names;
        ] );
      ( "gen",
        [
          Alcotest.test_case "us backbone" `Quick gen_us_backbone;
          Alcotest.test_case "isp paths" `Quick gen_isp_paths;
          Alcotest.test_case "global coverage" `Quick gen_global_coverage;
          Alcotest.test_case "chain/ring/circulant" `Quick gen_chain_ring_circulant;
          Alcotest.test_case "geo delay" `Quick gen_geo_delay_sane;
          q qcheck_random_geometric_connected;
        ] );
    ]
