(* Tests for the workload/measurement library. *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module P = Strovl.Packet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let flow = { P.f_src = 0; f_sport = 1; f_dest = P.To_node 1; f_dport = 2 }

let fake_packet engine ~seq ~sent_at =
  P.make ~flow ~routing:P.Link_state ~service:P.Best_effort ~seq ~sent_at
    ~bytes:100 ()
  |> fun p ->
  ignore engine;
  p

(* ------------------------------ Collect ------------------------------ *)

let collect_latency_and_deadline () =
  let engine = Engine.create () in
  let c = Strovl_apps.Collect.create ~deadline:(Time.ms 50) engine () in
  (* Packet sent at 0, "received" when clock = 30ms: on time. *)
  ignore (Engine.schedule engine ~delay:(Time.ms 30) (fun () ->
      Strovl_apps.Collect.receiver c (fake_packet engine ~seq:0 ~sent_at:0)));
  ignore (Engine.schedule engine ~delay:(Time.ms 100) (fun () ->
      Strovl_apps.Collect.receiver c (fake_packet engine ~seq:1 ~sent_at:0)));
  Engine.run engine;
  check_int "received" 2 (Strovl_apps.Collect.received c);
  check_int "on time" 1 (Strovl_apps.Collect.on_time c);
  check_int "late" 1 (Strovl_apps.Collect.late c);
  check_float "mean ms" 65. (Strovl_apps.Collect.mean_ms c);
  check_float "max gap = 70ms" 70. (Strovl_apps.Collect.max_gap_ms c);
  check_float "on-time fraction vs sent" 0.25
    (Strovl_apps.Collect.on_time_fraction c ~sent:4);
  check_float "delivery rate" 0.5 (Strovl_apps.Collect.delivery_rate c ~sent:4)

let collect_holes () =
  let engine = Engine.create () in
  let c = Strovl_apps.Collect.create engine () in
  List.iter
    (fun s -> Strovl_apps.Collect.receiver c (fake_packet engine ~seq:s ~sent_at:0))
    [ 0; 1; 4; 5 ];
  check_int "two holes (2,3)" 2 (Strovl_apps.Collect.holes c)

let collect_reset_window () =
  let engine = Engine.create () in
  let c = Strovl_apps.Collect.create engine () in
  Strovl_apps.Collect.receiver c (fake_packet engine ~seq:0 ~sent_at:0);
  Strovl_apps.Collect.reset_window c;
  check_int "counters cleared" 0 (Strovl_apps.Collect.received c);
  check_int "series cleared" 0 (Stats.Series.count (Strovl_apps.Collect.latencies_ms c))

(* ------------------------------ Source ------------------------------- *)

let net_fixture () =
  let engine = Engine.create ~seed:33L () in
  let net = Strovl.Net.create engine (Gen.chain ~n:3 ~hop_delay:(Time.ms 10)) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  (engine, net)

let source_count_and_rate () =
  let engine, net = net_fixture () in
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:1 in
  let rx = Strovl.Client.attach (Strovl.Net.node net 2) ~port:2 in
  let n = ref 0 in
  Strovl.Client.set_receiver rx (fun _ -> incr n);
  let sender = Strovl.Client.sender tx ~dest:(P.To_node 2) ~dport:2 () in
  let src =
    Strovl_apps.Source.start ~engine ~sender ~interval:(Time.ms 10) ~bytes:100
      ~count:25 ()
  in
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 2)) engine;
  check_int "sent exactly count" 25 (Strovl_apps.Source.sent src);
  check_int "all delivered" 25 !n;
  check_int "no refusals" 0 (Strovl_apps.Source.refused src)

let source_stop () =
  let engine, net = net_fixture () in
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:3 in
  let sender = Strovl.Client.sender tx ~dest:(P.To_node 2) ~dport:2 () in
  let src =
    Strovl_apps.Source.start ~engine ~sender ~interval:(Time.ms 10) ~bytes:100 ()
  in
  Engine.run ~until:(Time.add (Engine.now engine) (Time.ms 105)) engine;
  Strovl_apps.Source.stop src;
  let sent = Strovl_apps.Source.sent src in
  check_bool "ran at rate" true (sent >= 10 && sent <= 12);
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 1)) engine;
  check_int "stopped" sent (Strovl_apps.Source.sent src)

let source_presets () =
  let engine, net = net_fixture () in
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:4 in
  let sender = Strovl.Client.sender tx ~dest:(P.To_node 2) ~dport:2 () in
  let v = Strovl_apps.Source.video ~engine ~sender ~mbps:8.0 ~count:1 () in
  let h = Strovl_apps.Source.haptic ~engine ~sender ~rate_hz:1000 ~count:1 () in
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 1)) engine;
  check_int "video sent" 1 (Strovl_apps.Source.sent v);
  check_int "haptic sent" 1 (Strovl_apps.Source.sent h)

(* ----------------------------- Transcode ----------------------------- *)

let transcode_compound_flow () =
  let engine = Engine.create ~seed:44L () in
  let net = Strovl.Net.create engine (Gen.ring ~n:5 ~hop_delay:(Time.ms 10)) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let t =
    Strovl_apps.Transcode.create ~net ~node:2 ~port:10 ~ingest_group:1
      ~out_group:2 ~delay:(Time.ms 5) ~out_scale:0.5 ()
  in
  let rx = Strovl.Client.attach (Strovl.Net.node net 4) ~port:11 in
  Strovl.Client.join rx ~group:2;
  let got = ref [] in
  Strovl.Client.set_receiver rx (fun pkt ->
      got := (pkt.P.seq, pkt.P.sent_at, pkt.P.bytes) :: !got);
  Engine.run ~until:(Time.add (Engine.now engine) (Time.ms 500)) engine;
  let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port:12 in
  let s = Strovl.Client.sender tx ~dest:(P.Any_of_group 1) ~dport:10 () in
  let t0 = Engine.now engine in
  ignore (Strovl.Client.send s ~bytes:1000 ());
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 1)) engine;
  check_int "processed" 1 (Strovl_apps.Transcode.processed t);
  (match !got with
  | [ (seq, sent_at, bytes) ] ->
    check_int "seq preserved" 0 seq;
    check_int "origin timestamp preserved" t0 sent_at;
    check_int "bitrate halved" 500 bytes
  | _ -> Alcotest.fail "expected exactly one transcoded delivery");
  Strovl_apps.Transcode.shutdown t;
  ignore (Strovl.Client.send s ~bytes:1000 ());
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 1)) engine;
  check_int "offline facility processes nothing more" 1
    (Strovl_apps.Transcode.processed t)

let () =
  Alcotest.run "strovl_apps"
    [
      ( "collect",
        [
          Alcotest.test_case "latency/deadline" `Quick collect_latency_and_deadline;
          Alcotest.test_case "holes" `Quick collect_holes;
          Alcotest.test_case "reset window" `Quick collect_reset_window;
        ] );
      ( "source",
        [
          Alcotest.test_case "count and rate" `Quick source_count_and_rate;
          Alcotest.test_case "stop" `Quick source_stop;
          Alcotest.test_case "presets" `Quick source_presets;
        ] );
      ("transcode", [ Alcotest.test_case "compound flow" `Quick transcode_compound_flow ]);
    ]
