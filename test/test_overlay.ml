(* Integration tests: whole overlays built with Net over the simulated
   underlay — routing, failure reaction, group state propagation, source
   routing, sessions, authentication, and the end-to-end baseline. *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module P = Strovl.Packet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build ?config ?(spec = Gen.us_backbone ()) () =
  let engine = Engine.create ~seed:21L () in
  let net = Strovl.Net.create ?config engine spec in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  (engine, net)

let run_ms engine ms = Engine.run ~until:(Time.add (Engine.now engine) (Time.ms ms)) engine

let attach net ~node ~port = Strovl.Client.attach (Strovl.Net.node net node) ~port

(* ----------------------------- basic flows --------------------------- *)

let unicast_latency_matches_path () =
  let engine, net = build () in
  let tx = attach net ~node:0 ~port:1 in
  let rx = attach net ~node:8 ~port:2 in
  let lat = ref [] in
  Strovl.Client.set_receiver rx (fun pkt ->
      lat := Time.sub (Engine.now engine) pkt.P.sent_at :: !lat);
  let s = Strovl.Client.sender tx ~dest:(P.To_node 8) ~dport:2 () in
  for _ = 1 to 20 do
    ignore (Strovl.Client.send s ());
    run_ms engine 10
  done;
  run_ms engine 500;
  check_int "all arrived" 20 (List.length !lat);
  let expected =
    Option.get
      (Strovl.Route.distance (Strovl.Node.route (Strovl.Net.node net 0)) ~dst:8)
  in
  List.iter
    (fun l ->
      check_bool "latency ~ path delay (+proc)" true
        (l >= expected && l < expected + Time.ms 2))
    !lat

let reliable_full_delivery_under_loss () =
  let engine, net = build () in
  let rng = Rng.create 5L in
  Strovl_net.Underlay.set_all_segment_loss (Strovl.Net.underlay net) (fun si _ ->
      Loss.bernoulli (Rng.split_named rng (string_of_int si)) ~p:0.03);
  let tx = attach net ~node:0 ~port:1 in
  let rx = attach net ~node:8 ~port:2 in
  let got = ref [] in
  Strovl.Client.set_receiver rx (fun pkt -> got := pkt.P.seq :: !got);
  let s = Strovl.Client.sender tx ~service:P.Reliable ~dest:(P.To_node 8) ~dport:2 () in
  for _ = 1 to 100 do
    ignore (Strovl.Client.send s ());
    run_ms engine 5
  done;
  run_ms engine 3000;
  Alcotest.(check (list int)) "complete and in order"
    (List.init 100 (fun i -> i))
    (List.rev !got)

let multicast_and_group_propagation () =
  let engine, net = build () in
  let members = [ 2; 8; 11 ] in
  let rxs =
    List.map
      (fun m ->
        let c = attach net ~node:m ~port:3 in
        Strovl.Client.join c ~group:9;
        let n = ref 0 in
        Strovl.Client.set_receiver c (fun _ -> incr n);
        (c, n))
      members
  in
  run_ms engine 500;
  (* Every node must have learned the membership by flooding. *)
  List.iter
    (fun i ->
      Alcotest.(check (list int))
        (Printf.sprintf "node %d sees members" i)
        members
        (Strovl.Group.member_nodes (Strovl.Node.group (Strovl.Net.node net i)) ~group:9))
    [ 0; 5; 6 ];
  let tx = attach net ~node:0 ~port:4 in
  let s = Strovl.Client.sender tx ~dest:(P.To_group 9) ~dport:3 () in
  for _ = 1 to 30 do
    ignore (Strovl.Client.send s ());
    run_ms engine 5
  done;
  run_ms engine 500;
  List.iter (fun (_, n) -> check_int "each member got all" 30 !n) rxs;
  (* Leaving stops delivery. *)
  let c0, n0 = List.hd rxs in
  Strovl.Client.leave c0 ~group:9;
  run_ms engine 500;
  let before = !n0 in
  for _ = 1 to 10 do
    ignore (Strovl.Client.send s ());
    run_ms engine 5
  done;
  run_ms engine 500;
  check_int "no delivery after leave" before !n0

let anycast_picks_nearest () =
  let engine, net = build () in
  (* Members at CHI(6) and BOS(11); sender at SEA(0): CHI is nearer. *)
  let c_chi = attach net ~node:6 ~port:5 in
  let c_bos = attach net ~node:11 ~port:5 in
  Strovl.Client.join c_chi ~group:12;
  Strovl.Client.join c_bos ~group:12;
  let n_chi = ref 0 and n_bos = ref 0 in
  Strovl.Client.set_receiver c_chi (fun _ -> incr n_chi);
  Strovl.Client.set_receiver c_bos (fun _ -> incr n_bos);
  run_ms engine 500;
  let tx = attach net ~node:0 ~port:6 in
  let s = Strovl.Client.sender tx ~dest:(P.Any_of_group 12) ~dport:5 () in
  for _ = 1 to 20 do
    ignore (Strovl.Client.send s ());
    run_ms engine 5
  done;
  run_ms engine 500;
  check_int "nearest got all" 20 !n_chi;
  check_int "exactly-one semantics" 0 !n_bos

let anycast_fails_over_to_next_nearest () =
  let engine, net = build () in
  let c_chi = attach net ~node:6 ~port:5 in
  let c_bos = attach net ~node:11 ~port:5 in
  Strovl.Client.join c_chi ~group:13;
  Strovl.Client.join c_bos ~group:13;
  let n_chi = ref 0 and n_bos = ref 0 in
  Strovl.Client.set_receiver c_chi (fun _ -> incr n_chi);
  Strovl.Client.set_receiver c_bos (fun _ -> incr n_bos);
  run_ms engine 500;
  let tx = attach net ~node:0 ~port:6 in
  let s = Strovl.Client.sender tx ~dest:(P.Any_of_group 13) ~dport:5 () in
  for _ = 1 to 10 do
    ignore (Strovl.Client.send s ());
    run_ms engine 5
  done;
  run_ms engine 500;
  check_int "nearest (CHI) serves" 10 !n_chi;
  (* The nearest member's node crashes: anycast must fail over to BOS once
     the hello protocol declares CHI unreachable. *)
  Strovl.Net.set_wire_tap net ~node:6 (fun ~dir:_ ~link:_ _ -> Strovl.Net.Drop);
  run_ms engine 1500;
  for _ = 1 to 10 do
    ignore (Strovl.Client.send s ());
    run_ms engine 5
  done;
  run_ms engine 500;
  check_int "failed node got nothing more" 10 !n_chi;
  check_int "next nearest took over" 10 !n_bos

let source_flooding_delivers_once () =
  let engine, net = build () in
  let tx = attach net ~node:0 ~port:7 in
  let rx = attach net ~node:8 ~port:8 in
  let got = ref 0 in
  Strovl.Client.set_receiver rx ~reorder:false (fun _ -> incr got);
  let s =
    Strovl.Client.sender tx ~route:(Strovl.Client.Scheme Strovl_topo.Dissem.Flooding)
      ~dest:(P.To_node 8) ~dport:8 ()
  in
  for _ = 1 to 10 do
    ignore (Strovl.Client.send s ());
    run_ms engine 10
  done;
  run_ms engine 500;
  check_int "de-dup: exactly once each" 10 !got

(* ------------------------- failure reaction -------------------------- *)

let reroute_subsecond () =
  let engine, net = build () in
  let tx = attach net ~node:0 ~port:1 in
  let rx = attach net ~node:8 ~port:2 in
  let last = ref Time.zero and max_gap = ref 0 in
  Strovl.Client.set_receiver rx (fun _ ->
      let now = Engine.now engine in
      if !last > Time.zero then max_gap := max !max_gap (Time.sub now !last);
      last := now);
  let s = Strovl.Client.sender tx ~dest:(P.To_node 8) ~dport:2 () in
  let rec pump n =
    if n > 0 then begin
      ignore (Strovl.Client.send s ());
      run_ms engine 5;
      pump (n - 1)
    end
  in
  pump 200;
  (* Kill the first link of the current path on every ISP. *)
  let path =
    Option.get (Strovl.Route.path (Strovl.Node.route (Strovl.Net.node net 0)) ~dst:8)
  in
  let victim = List.hd path in
  let a, b = Strovl_topo.Graph.endpoints (Strovl.Net.graph net) victim in
  List.iter
    (fun si -> Strovl_net.Underlay.fail_segment (Strovl.Net.underlay net) si)
    (Strovl_net.Underlay.segments_between (Strovl.Net.underlay net) a b);
  pump 600;
  check_bool "sub-second service interruption" true (!max_gap < Time.sec 1);
  check_bool "an actual interruption happened" true (!max_gap > Time.ms 100)

let hello_detects_and_recovers () =
  let engine, net = build ~spec:(Gen.ring ~n:4 ~hop_delay:(Time.ms 10)) () in
  let node0 = Strovl.Net.node net 0 in
  (* Fail link 0 (between 0 and 1). *)
  Strovl_net.Underlay.fail_segment (Strovl.Net.underlay net) 0;
  run_ms engine 1000;
  check_bool "declared down" false (Strovl.Node.link_up_view node0 ~link:0);
  check_bool "neighbors see it too" false
    (Strovl.Conn_graph.usable (Strovl.Node.conn (Strovl.Net.node net 2)) 0);
  Strovl_net.Underlay.repair_segment (Strovl.Net.underlay net) 0;
  run_ms engine 1000;
  check_bool "declared up again" true (Strovl.Node.link_up_view node0 ~link:0)

(* --------------------------- authentication -------------------------- *)

let forged_lsu_rejected_with_auth () =
  let config = { Strovl.Net.default_config with Strovl.Net.authenticate = true } in
  let engine, net = build ~config () in
  let before =
    Strovl.Conn_graph.highest_seq
      (Strovl.Node.conn (Strovl.Net.node net 8))
      9
  in
  ignore (Strovl_attack.Scenario.forge_lsu ~net ~attacker:4 ~victim:9 ());
  run_ms engine 500;
  (* The forged LSU claimed victim 9's links were down with seq 1_000_000:
     with auth on, nobody applies it. *)
  check_int "victim's seq untouched" before
    (Strovl.Conn_graph.highest_seq (Strovl.Node.conn (Strovl.Net.node net 8)) 9);
  check_bool "victim's links still usable" true
    (Strovl.Conn_graph.usable
       (Strovl.Node.conn (Strovl.Net.node net 8))
       (List.hd (Strovl_topo.Graph.incident (Strovl.Net.graph net) 9)));
  check_bool "drops counted" true
    ((Strovl.Node.counters (Strovl.Net.node net 4)).Strovl.Node.dropped_auth > 0
    || (Strovl.Node.counters (Strovl.Net.node net 9)).Strovl.Node.dropped_auth > 0
    || (Strovl.Node.counters (Strovl.Net.node net 5)).Strovl.Node.dropped_auth > 0)

let forged_lsu_poisons_without_auth () =
  let engine, net = build () in
  ignore (Strovl_attack.Scenario.forge_lsu ~net ~attacker:4 ~victim:9 ());
  run_ms engine 500;
  (* Without authentication the forgery propagates — the vulnerability the
     paper's signed link-state updates close. *)
  check_bool "victim link believed down somewhere" true
    (not
       (Strovl.Conn_graph.usable
          (Strovl.Node.conn (Strovl.Net.node net 8))
          (List.hd (Strovl_topo.Graph.incident (Strovl.Net.graph net) 9))))

(* ------------------------------ sessions ----------------------------- *)

let session_detach_stops_delivery () =
  let engine, net = build () in
  let tx = attach net ~node:0 ~port:1 in
  let rx = attach net ~node:8 ~port:2 in
  let n = ref 0 in
  Strovl.Client.set_receiver rx (fun _ -> incr n);
  let s = Strovl.Client.sender tx ~dest:(P.To_node 8) ~dport:2 () in
  ignore (Strovl.Client.send s ());
  run_ms engine 200;
  check_int "delivered" 1 !n;
  Strovl.Client.detach rx;
  ignore (Strovl.Client.send s ());
  run_ms engine 200;
  check_int "stopped" 1 !n;
  check_int "client received counter" 1 (Strovl.Client.received rx)

let proc_delay_charged_per_hop () =
  let mk proc =
    let config =
      {
        Strovl.Net.default_config with
        Strovl.Net.node = { Strovl.Node.default_config with Strovl.Node.proc_delay = proc };
      }
    in
    let engine, net = build ~config ~spec:(Gen.chain ~n:6 ~hop_delay:(Time.ms 10)) () in
    let tx = attach net ~node:0 ~port:1 in
    let rx = attach net ~node:5 ~port:2 in
    let lat = ref 0 in
    Strovl.Client.set_receiver rx (fun pkt ->
        lat := Time.sub (Engine.now engine) pkt.P.sent_at);
    let s = Strovl.Client.sender tx ~dest:(P.To_node 5) ~dport:2 () in
    ignore (Strovl.Client.send s ());
    run_ms engine 500;
    !lat
  in
  let fast = mk Time.zero and slow = mk (Time.ms 1) in
  (* 4 intermediate forwards charged 1ms each (delivery-side processing at
     the destination is also charged). *)
  let diff = Time.sub slow fast in
  check_bool "per-hop cost visible" true (diff >= Time.ms 4 && diff <= Time.ms 6)

(* ------------------------------- e2e --------------------------------- *)

let cpu_overload_and_cluster () =
  let mk cluster =
    let config =
      {
        Strovl.Net.default_config with
        Strovl.Net.node =
          {
            Strovl.Node.default_config with
            Strovl.Node.proc_rate_pps = Some 1000;
            cluster_size = cluster;
          };
      }
    in
    let engine, net = build ~config ~spec:(Gen.chain ~n:3 ~hop_delay:(Time.ms 10)) () in
    let tx = attach net ~node:0 ~port:1 in
    let rx = attach net ~node:2 ~port:2 in
    let n = ref 0 in
    Strovl.Client.set_receiver rx (fun _ -> incr n);
    let s = Strovl.Client.sender tx ~dest:(P.To_node 2) ~dport:2 () in
    (* Offer 2000 pps for 1 second through the 1000-pps relay. *)
    for _ = 1 to 2000 do
      ignore (Strovl.Client.send s ());
      Engine.run ~until:(Time.add (Engine.now engine) (Time.us 500)) engine
    done;
    run_ms engine 1000;
    (!n, (Strovl.Node.counters (Strovl.Net.node net 1)).Strovl.Node.dropped_overload)
  in
  let got1, drops1 = mk 1 in
  let got2, drops2 = mk 2 in
  check_bool "single computer saturates ~50%" true (got1 > 800 && got1 < 1300);
  check_bool "overload drops counted" true (drops1 > 500);
  check_bool "cluster of 2 absorbs" true (got2 > 1900);
  check_int "no drops with cluster" 0 drops2

let parallel_overlays_share_underlay () =
  let engine = Engine.create ~seed:77L () in
  let spec = Gen.us_backbone () in
  let underlay = Strovl_net.Underlay.create engine spec in
  (* Two independent overlays — different configs — over one Internet. *)
  let net_a = Strovl.Net.create ~underlay engine spec in
  let auth_cfg = { Strovl.Net.default_config with Strovl.Net.authenticate = true } in
  let net_b = Strovl.Net.create ~config:auth_cfg ~underlay engine spec in
  Strovl.Net.start net_a;
  Strovl.Net.start net_b;
  Engine.run ~until:(Time.sec 2) engine;
  let flow net port =
    let tx = Strovl.Client.attach (Strovl.Net.node net 0) ~port in
    let rx = Strovl.Client.attach (Strovl.Net.node net 8) ~port in
    let n = ref 0 in
    Strovl.Client.set_receiver rx (fun _ -> incr n);
    let s = Strovl.Client.sender tx ~dest:(P.To_node 8) ~dport:port () in
    for _ = 1 to 10 do
      ignore (Strovl.Client.send s ());
      Engine.run ~until:(Time.add (Engine.now engine) (Time.ms 10)) engine
    done;
    Engine.run ~until:(Time.add (Engine.now engine) (Time.ms 500)) engine;
    !n
  in
  check_int "overlay A delivers" 10 (flow net_a 10);
  check_int "overlay B delivers" 10 (flow net_b 20);
  (* A failure in the shared Internet hits both overlays' links; each
     overlay independently reroutes (and may revive the link via another
     provider's indirect route), so both keep delivering. *)
  List.iter
    (fun si -> Strovl_net.Underlay.fail_segment underlay si)
    (Strovl_net.Underlay.segments_between underlay 0 4);
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 2)) engine;
  check_int "overlay A survives" 10 (flow net_a 11);
  check_int "overlay B survives" 10 (flow net_b 21)

let e2e_reliable_over_lossy_path () =
  let engine = Engine.create ~seed:9L () in
  let underlay = Strovl_net.Underlay.create engine (Gen.chain ~n:6 ~hop_delay:(Time.ms 10)) in
  let rng = Rng.create 4L in
  Strovl_net.Underlay.set_all_segment_loss underlay (fun si _ ->
      Loss.bernoulli (Rng.split_named rng (string_of_int si)) ~p:0.02);
  let link = Strovl_net.Link.create underlay ~a:0 ~b:5 ~isp:0 in
  let got = ref [] in
  let e2e =
    Strovl.E2e.create engine link
      ~service:(Strovl.E2e.Reliable Strovl.Reliable_link.default_config)
      ~deliver:(fun pkt -> got := pkt.P.seq :: !got)
  in
  for _ = 1 to 200 do
    Strovl.E2e.send e2e ();
    Engine.run ~until:(Time.add (Engine.now engine) (Time.ms 5)) engine
  done;
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 5)) engine;
  Alcotest.(check (list int)) "complete in order" (List.init 200 (fun i -> i)) (List.rev !got);
  check_bool "losses actually recovered" true (Strovl.E2e.retransmissions e2e > 0)

let () =
  Alcotest.run "strovl_overlay"
    [
      ( "flows",
        [
          Alcotest.test_case "unicast latency" `Quick unicast_latency_matches_path;
          Alcotest.test_case "reliable under loss" `Quick reliable_full_delivery_under_loss;
          Alcotest.test_case "multicast + groups" `Quick multicast_and_group_propagation;
          Alcotest.test_case "anycast nearest" `Quick anycast_picks_nearest;
          Alcotest.test_case "anycast failover" `Quick anycast_fails_over_to_next_nearest;
          Alcotest.test_case "flooding dedup" `Quick source_flooding_delivers_once;
        ] );
      ( "failure",
        [
          Alcotest.test_case "sub-second reroute" `Quick reroute_subsecond;
          Alcotest.test_case "hello detect/recover" `Quick hello_detects_and_recovers;
        ] );
      ( "auth",
        [
          Alcotest.test_case "forged lsu rejected" `Quick forged_lsu_rejected_with_auth;
          Alcotest.test_case "unauthenticated poisoned" `Quick forged_lsu_poisons_without_auth;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "detach" `Quick session_detach_stops_delivery;
          Alcotest.test_case "per-hop processing" `Quick proc_delay_charged_per_hop;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "cpu overload + cluster" `Quick cpu_overload_and_cluster;
          Alcotest.test_case "parallel overlays" `Quick parallel_overlays_share_underlay;
        ] );
      ("e2e", [ Alcotest.test_case "reliable lossy path" `Quick e2e_reliable_over_lossy_path ]);
    ]
