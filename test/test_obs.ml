(* Unit tests for the strovl_obs flight recorder, metrics registry and
   export layer, independent of the overlay stack. *)

module M = Strovl_obs.Metrics
module T = Strovl_obs.Trace
module E = Strovl_obs.Export

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let flow = { T.fi_src = 1; fi_sport = 10; fi_dst = 2; fi_dport = 20 }

let metrics_counters_and_labels () =
  M.reset ();
  let c = M.counter "obs_test_total" in
  let c' = M.counter "obs_test_total" in
  M.Counter.incr c;
  M.Counter.add c' 4;
  check_int "same handle" 5 (M.Counter.value c);
  check_int "find_counter" 5 (M.find_counter "obs_test_total");
  let la = M.counter ~labels:[ ("x", "a") ] "obs_test_labelled" in
  let lb = M.counter ~labels:[ ("x", "b") ] "obs_test_labelled" in
  M.Counter.incr la;
  check_int "labels separate" 0 (M.Counter.value lb);
  check_int "labelled lookup" 1 (M.find_counter ~labels:[ ("x", "a") ] "obs_test_labelled");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: obs_test_total already registered with another kind")
    (fun () -> ignore (M.gauge "obs_test_total"))

let metrics_disabled_is_noop () =
  M.reset ();
  let c = M.counter "obs_test_gate" in
  M.enabled := false;
  M.Counter.incr c;
  M.enabled := true;
  check_int "no update while disabled" 0 (M.Counter.value c);
  M.Counter.incr c;
  check_int "updates resume" 1 (M.Counter.value c)

let metrics_histogram_quantiles () =
  M.reset ();
  let h = M.histogram "obs_test_hist" in
  for i = 1 to 1000 do
    M.Histogram.observe h i
  done;
  check_int "count" 1000 (M.Histogram.count h);
  check_int "sum" 500_500 (M.Histogram.sum h);
  check_int "max" 1000 (M.Histogram.max h);
  (* Log-bucket estimates: within one power-of-two bucket of the truth. *)
  let p50 = M.Histogram.quantile h 0.5 in
  check_bool "p50 in bucket range" true (p50 >= 256. && p50 <= 1024.);
  let p99 = M.Histogram.quantile h 0.99 in
  check_bool "p99 in bucket range" true (p99 >= 512. && p99 <= 2048.)

let trace_off_by_default () =
  T.disable ();
  check_bool "off" false !T.on;
  T.emit ~node:0 T.Lsu_flood;
  check_int "no events recorded" 0 (T.total ())

let trace_ring_wraps () =
  T.enable ~capacity:8 ();
  T.set_clock (fun () -> 42);
  for i = 0 to 19 do
    T.emit ~flow ~seq:i ~node:3 T.Enqueue
  done;
  check_int "retains capacity" 8 (T.length ());
  check_int "counts all" 20 (T.total ());
  let seqs = List.map (fun r -> r.T.seq) (T.records ()) in
  Alcotest.(check (list int)) "chronological, newest kept"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    seqs;
  T.disable ()

let trace_digest_sensitivity () =
  let run evs =
    T.enable ~capacity:64 ();
    T.set_clock (fun () -> 7);
    List.iter (fun ev -> T.emit ~flow ~seq:0 ~node:1 ev) evs;
    let d = T.digest () in
    T.disable ();
    d
  in
  let d1 = run [ T.Enqueue; T.Forward 2; T.Deliver ] in
  let d2 = run [ T.Enqueue; T.Forward 2; T.Deliver ] in
  let d3 = run [ T.Enqueue; T.Forward 3; T.Deliver ] in
  Alcotest.(check int64) "same events same digest" d1 d2;
  check_bool "different events differ" true (d1 <> d3)

let export_path_and_drops () =
  M.reset ();
  T.enable ~capacity:64 ();
  T.set_clock (fun () -> 100);
  T.emit ~flow ~seq:5 ~node:1 T.Enqueue;
  T.emit ~flow ~seq:5 ~node:1 (T.Forward 0);
  T.emit ~flow ~seq:5 ~node:2 (T.Retransmit 0);
  T.emit ~flow ~seq:6 ~node:1 T.Enqueue;
  T.emit ~flow ~seq:6 ~node:1 (T.Drop T.No_route);
  T.emit ~flow ~seq:5 ~node:2 T.Deliver;
  let path = E.path_of ~flow ~seq:5 in
  check_int "path events for seq 5" 4 (List.length path);
  (match E.drop_counts () with
  | [ ("no-route", 1) ] -> ()
  | other ->
    Alcotest.failf "unexpected drops: %s"
      (String.concat ";" (List.map (fun (r, n) -> Printf.sprintf "%s=%d" r n) other)));
  check_int "retransmits" 1 (E.retransmit_count ());
  (match E.sample_packet () with
  | Some (f, seq) ->
    check_bool "samples the delivered+retransmitted packet" true
      (f = flow && seq = 5)
  | None -> Alcotest.fail "expected a sample");
  let json = E.record_json (List.hd path) in
  check_bool "record json has event" true
    (String.length json > 0 && json.[0] = '{');
  T.disable ()

let () =
  Alcotest.run "strovl_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and labels" `Quick metrics_counters_and_labels;
          Alcotest.test_case "disabled is no-op" `Quick metrics_disabled_is_noop;
          Alcotest.test_case "histogram quantiles" `Quick metrics_histogram_quantiles;
        ] );
      ( "trace",
        [
          Alcotest.test_case "off by default" `Quick trace_off_by_default;
          Alcotest.test_case "ring wraps" `Quick trace_ring_wraps;
          Alcotest.test_case "digest sensitivity" `Quick trace_digest_sensitivity;
        ] );
      ( "export",
        [ Alcotest.test_case "path and drops" `Quick export_path_and_drops ] );
    ]
