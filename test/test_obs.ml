(* Unit tests for the strovl_obs flight recorder, metrics registry and
   export layer, independent of the overlay stack. *)

module M = Strovl_obs.Metrics
module T = Strovl_obs.Trace
module E = Strovl_obs.Export

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let flow = { T.fi_src = 1; fi_sport = 10; fi_dst = 2; fi_dport = 20 }

let metrics_counters_and_labels () =
  M.reset ();
  let c = M.counter "obs_test_total" in
  let c' = M.counter "obs_test_total" in
  M.Counter.incr c;
  M.Counter.add c' 4;
  check_int "same handle" 5 (M.Counter.value c);
  check_int "find_counter" 5 (M.find_counter "obs_test_total");
  let la = M.counter ~labels:[ ("x", "a") ] "obs_test_labelled" in
  let lb = M.counter ~labels:[ ("x", "b") ] "obs_test_labelled" in
  M.Counter.incr la;
  check_int "labels separate" 0 (M.Counter.value lb);
  check_int "labelled lookup" 1 (M.find_counter ~labels:[ ("x", "a") ] "obs_test_labelled");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: obs_test_total already registered with another kind")
    (fun () -> ignore (M.gauge "obs_test_total"))

let metrics_disabled_is_noop () =
  M.reset ();
  let c = M.counter "obs_test_gate" in
  M.set_enabled false;
  M.Counter.incr c;
  M.set_enabled true;
  check_int "no update while disabled" 0 (M.Counter.value c);
  M.Counter.incr c;
  check_int "updates resume" 1 (M.Counter.value c)

let metrics_histogram_quantiles () =
  M.reset ();
  let h = M.histogram "obs_test_hist" in
  for i = 1 to 1000 do
    M.Histogram.observe h i
  done;
  check_int "count" 1000 (M.Histogram.count h);
  check_int "sum" 500_500 (M.Histogram.sum h);
  check_int "max" 1000 (M.Histogram.max h);
  (* Log-bucket estimates: within one power-of-two bucket of the truth. *)
  let p50 = M.Histogram.quantile h 0.5 in
  check_bool "p50 in bucket range" true (p50 >= 256. && p50 <= 1024.);
  let p99 = M.Histogram.quantile h 0.99 in
  check_bool "p99 in bucket range" true (p99 >= 512. && p99 <= 2048.)

let trace_off_by_default () =
  T.disable ();
  check_bool "off" false (T.armed ());
  T.emit ~node:0 T.Lsu_flood;
  check_int "no events recorded" 0 (T.total ())

let trace_ring_wraps () =
  T.enable ~capacity:8 ();
  T.set_clock (fun () -> 42);
  for i = 0 to 19 do
    T.emit ~flow ~seq:i ~node:3 T.Enqueue
  done;
  check_int "retains capacity" 8 (T.length ());
  check_int "counts all" 20 (T.total ());
  let seqs = List.map (fun r -> r.T.seq) (T.records ()) in
  Alcotest.(check (list int)) "chronological, newest kept"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    seqs;
  T.disable ()

let trace_digest_sensitivity () =
  let run evs =
    T.enable ~capacity:64 ();
    T.set_clock (fun () -> 7);
    List.iter (fun ev -> T.emit ~flow ~seq:0 ~node:1 ev) evs;
    let d = T.digest () in
    T.disable ();
    d
  in
  let d1 = run [ T.Enqueue; T.Forward 2; T.Deliver ] in
  let d2 = run [ T.Enqueue; T.Forward 2; T.Deliver ] in
  let d3 = run [ T.Enqueue; T.Forward 3; T.Deliver ] in
  Alcotest.(check int64) "same events same digest" d1 d2;
  check_bool "different events differ" true (d1 <> d3)

let export_path_and_drops () =
  M.reset ();
  T.enable ~capacity:64 ();
  T.set_clock (fun () -> 100);
  T.emit ~flow ~seq:5 ~node:1 T.Enqueue;
  T.emit ~flow ~seq:5 ~node:1 (T.Forward 0);
  T.emit ~flow ~seq:5 ~node:2 (T.Retransmit 0);
  T.emit ~flow ~seq:6 ~node:1 T.Enqueue;
  T.emit ~flow ~seq:6 ~node:1 (T.Drop T.No_route);
  T.emit ~flow ~seq:5 ~node:2 T.Deliver;
  let path = E.path_of ~flow ~seq:5 in
  check_int "path events for seq 5" 4 (List.length path);
  (match E.drop_counts () with
  | [ ("no-route", 1) ] -> ()
  | other ->
    Alcotest.failf "unexpected drops: %s"
      (String.concat ";" (List.map (fun (r, n) -> Printf.sprintf "%s=%d" r n) other)));
  check_int "retransmits" 1 (E.retransmit_count ());
  (match E.sample_packet () with
  | Some (f, seq) ->
    check_bool "samples the delivered+retransmitted packet" true
      (f = flow && seq = 5)
  | None -> Alcotest.fail "expected a sample");
  let json = E.record_json (List.hd path) in
  check_bool "record json has event" true
    (String.length json > 0 && json.[0] = '{');
  T.disable ()

(* ------------- Export summary goldens on a hand-built trace ------------ *)

module S = Strovl_obs.Series
module A = Strovl_obs.Audit

let clock = ref 0

let set_manual_clock () =
  clock := 0;
  T.set_clock (fun () -> !clock)

(* Two packets crossing a two-hop path 1 -> 2 -> 3 (links 0, 1), each hop
   5 ms; plus assorted drops, one retransmission, and per-link counters as
   Link.create would register them. Every summary is checked against the
   exact values this little world implies. *)
let export_golden_summaries () =
  M.reset ();
  T.enable ~capacity:256 ();
  set_manual_clock ();
  let gflow = { T.fi_src = 1; fi_sport = 10; fi_dst = 3; fi_dport = 20 } in
  let pkt seq t0 =
    clock := t0;
    T.emit ~flow:gflow ~seq ~node:1 T.Enqueue;
    T.emit ~flow:gflow ~seq ~node:1 (T.Forward 0);
    clock := t0 + 5000;
    T.emit ~flow:gflow ~seq ~node:2 (T.Forward 1);
    clock := t0 + 10000;
    T.emit ~flow:gflow ~seq ~node:3 T.Deliver
  in
  pkt 0 1000;
  pkt 1 2000;
  clock := 13_000;
  T.emit ~flow:gflow ~seq:2 ~node:2 (T.Drop T.Queue_full);
  T.emit ~flow:gflow ~seq:3 ~node:2 (T.Drop T.Queue_full);
  T.emit ~flow:gflow ~seq:4 ~node:1 (T.Drop T.Auth);
  T.emit ~flow:gflow ~seq:1 ~node:1 (T.Retransmit 0);
  (* drop-reason golden: most frequent first *)
  (match E.drop_counts () with
  | [ ("queue-full", 2); ("auth", 1) ] -> ()
  | other ->
    Alcotest.failf "drop_counts: %s"
      (String.concat ";"
         (List.map (fun (r, n) -> Printf.sprintf "%s=%d" r n) other)));
  (* per-flow golden: 2 enqueued, 4 forwards, 2 delivered, 1 retransmit;
     per-packet hop deltas are 0 (enqueue->first forward), 5000, 5000 *)
  (match E.flow_summaries () with
  | [ (f, (enq, fwd, dlv, rtx, mean_hop)) ] ->
    check_bool "flow id" true (f = gflow);
    check_int "enqueued" 2 enq;
    check_int "forwards" 4 fwd;
    check_int "delivered" 2 dlv;
    check_int "retransmits" 1 rtx;
    Alcotest.(check (float 0.01)) "mean hop us" (20_000. /. 6.) mean_hop
  | l -> Alcotest.failf "expected one flow, got %d" (List.length l));
  (* per-link utilization golden, from the metrics registry *)
  let reg name link v =
    M.Counter.add (M.counter ~labels:[ ("link", link) ] name) v
  in
  reg "strovl_link_tx_packets_total" "1-2" 6;
  reg "strovl_link_tx_bytes_total" "1-2" 2640;
  reg "strovl_link_queue_drops_total" "1-2" 2;
  reg "strovl_link_tx_packets_total" "2-3" 2;
  reg "strovl_link_tx_bytes_total" "2-3" 880;
  (match E.links_table () with
  | [ ("1-2", 6, 2640, 2); ("2-3", 2, 880, 0) ] -> ()
  | other ->
    Alcotest.failf "links_table: %s"
      (String.concat ";"
         (List.map
            (fun (l, p, b, d) -> Printf.sprintf "%s:%d:%d:%d" l p b d)
            other)));
  T.disable ()

(* ------------------------- Series bucketing -------------------------- *)

let series_bucketing () =
  S.reset ();
  set_manual_clock ();
  S.enable ~window:1000 ~capacity:4 ();
  let ch = S.channel ~labels:[ ("k", "v") ] "obs_test_series" in
  (* same channel identity regardless of label order *)
  check_bool "identity" true (ch == S.channel ~labels:[ ("k", "v") ] "obs_test_series");
  clock := 100;
  S.add ch 5;
  S.add ch 7;
  clock := 1100;
  S.add ch 1;
  clock := 6500;
  S.incr ch;
  (match S.points ch with
  | [ p0; p1; p2 ] ->
    check_int "bucket 0 aligned" 0 p0.S.p_t0;
    check_int "bucket 0 n" 2 p0.S.p_n;
    check_int "bucket 0 sum" 12 p0.S.p_sum;
    check_int "bucket 0 max" 7 p0.S.p_max;
    check_int "bucket 1 aligned" 1000 p1.S.p_t0;
    check_int "open bucket aligned" 6000 p2.S.p_t0;
    Alcotest.(check (float 0.001)) "mean" 6. (S.mean p0)
  | l -> Alcotest.failf "expected 3 points, got %d" (List.length l));
  (* ring bound: many buckets, only [capacity] closed ones retained *)
  for i = 10 to 30 do
    clock := i * 1000;
    S.add ch i
  done;
  check_bool "bounded" true (List.length (S.points ch) <= 5);
  (* off = no-op *)
  S.disable ();
  let before = List.length (S.points ch) in
  S.add ch 99;
  check_int "disabled is no-op" before (List.length (S.points ch));
  let json = S.point_json ch (List.hd (S.points ch)) in
  check_bool "point json shape" true
    (String.length json > 0 && json.[0] = '{');
  S.reset ()

(* ---------------------- Audit: clean and broken ----------------------- *)

let mk ?(flow = T.no_flow) ?(seq = -1) ts node ev =
  { T.ts; node; flow; seq; ev }

let audit_clean_stream () =
  T.enable ~capacity:256 ();
  set_manual_clock ();
  A.arm ();
  let f = { T.fi_src = 0; fi_sport = 1; fi_dst = 2; fi_dport = 2 } in
  (* a normal packet life, a recovered gap, and an overlay-wide reroute *)
  A.feed (mk ~flow:f ~seq:0 1000 0 T.Enqueue);
  A.feed (mk ~flow:f ~seq:0 1000 0 (T.Forward 0));
  A.feed (mk ~flow:f ~seq:0 6000 1 (T.Forward 1));
  A.feed (mk ~flow:f ~seq:0 11_000 2 T.Deliver);
  A.feed (mk ~seq:7 20_000 1 (T.Nack (0, 7)));
  A.feed (mk ~flow:f ~seq:1 30_000 0 (T.Retransmit 0));
  A.feed (mk 40_000 0 (T.Reroute (3, false)));
  A.feed (mk 45_000 1 (T.Lsu_apply 0));
  A.feed (mk 50_000 2 (T.Lsu_apply 0));
  A.feed (mk 60_000 0 (T.Reroute (3, true)));
  let vs = A.finish () in
  A.disarm ();
  T.disable ();
  List.iter (fun v -> Format.eprintf "%a@." A.pp_violation v) vs;
  check_int "clean stream" 0 (List.length vs);
  (match A.reroute_latencies () with
  | [ lat ] -> check_int "reroute latency" 10_000 lat
  | l -> Alcotest.failf "expected one reroute latency, got %d" (List.length l))

(* A deliberately broken protocol variant: duplicates a delivery, loops a
   forward, ghost-recovers via FEC, ignores a nack, and loses a link-down
   flood — the auditor must flag all five rules. *)
let audit_broken_variant () =
  T.enable ~capacity:256 ();
  set_manual_clock ();
  A.arm ();
  let f = { T.fi_src = 0; fi_sport = 1; fi_dst = 3; fi_dport = 2 } in
  (* dup-deliver: same (flow, seq) handed to sessions twice *)
  A.feed (mk ~flow:f ~seq:0 1000 3 T.Deliver);
  A.feed (mk ~flow:f ~seq:0 2000 3 T.Deliver);
  (* fwd-loop: the packet comes back to node 1 and leaves on link 0 again *)
  A.feed (mk ~flow:f ~seq:1 3000 1 (T.Forward 0));
  A.feed (mk ~flow:f ~seq:1 9000 1 (T.Forward 0));
  (* fec-ghost: node 2 already forwarded seq 2, then "recovers" it *)
  A.feed (mk ~flow:f ~seq:2 4000 2 (T.Forward 1));
  A.feed (mk ~flow:f ~seq:2 8000 2 (T.Fec_recover 1));
  (* recovery-budget: a nack on link 5 never answered (and no retransmit
     activity on that link at all) *)
  A.feed (mk ~seq:9 10_000 2 (T.Nack (5, 9)));
  (* reroute-budget: node 0 reports link 7 down; node 1 hears it but node 2
     keeps applying other floods without ever applying node 0's *)
  A.feed (mk 11_000 0 (T.Reroute (7, false)));
  A.feed (mk 12_000 1 (T.Lsu_apply 0));
  A.feed (mk 13_000 2 (T.Lsu_apply 1));
  A.feed (mk 14_000 2 (T.Lsu_apply 1));
  (* let every budget lapse *)
  A.feed (mk 5_000_000 0 T.Lsu_flood);
  let vs = A.finish () in
  let rules = A.distinct_rules () in
  A.disarm ();
  T.disable ();
  check_int "five violations" 5 (List.length vs);
  Alcotest.(check (list string))
    "all five rules fire"
    [ "dup-deliver"; "fec-ghost"; "fwd-loop"; "recovery-budget";
      "reroute-budget" ]
    rules;
  check_bool "counter advanced" true
    (M.find_counter "strovl_audit_violations_total" >= 5)

(* Replays after a reroute are exempt from dup/loop rules; an epoch change
   (sim-time regression = new run) clears packet identity. *)
let audit_exemptions () =
  T.enable ~capacity:256 ();
  set_manual_clock ();
  A.arm ();
  let f = { T.fi_src = 0; fi_sport = 1; fi_dst = 3; fi_dport = 2 } in
  A.feed (mk ~flow:f ~seq:0 1000 1 (T.Forward 0));
  A.feed (mk ~flow:f ~seq:0 5000 3 T.Deliver);
  (* replayed copy of the same packet: legal *)
  A.feed (mk ~flow:f ~seq:0 6000 1 (T.Forward_replay 0));
  A.feed (mk ~flow:f ~seq:0 9000 3 T.Deliver_replay);
  (* new epoch: the same (flow, seq) delivered again must NOT flag *)
  A.feed (mk ~flow:f ~seq:0 500 1 (T.Forward 0));
  A.feed (mk ~flow:f ~seq:0 900 3 T.Deliver);
  let vs = A.finish () in
  A.disarm ();
  T.disable ();
  List.iter (fun v -> Format.eprintf "%a@." A.pp_violation v) vs;
  check_int "no violations" 0 (List.length vs)

let () =
  Alcotest.run "strovl_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and labels" `Quick metrics_counters_and_labels;
          Alcotest.test_case "disabled is no-op" `Quick metrics_disabled_is_noop;
          Alcotest.test_case "histogram quantiles" `Quick metrics_histogram_quantiles;
        ] );
      ( "trace",
        [
          Alcotest.test_case "off by default" `Quick trace_off_by_default;
          Alcotest.test_case "ring wraps" `Quick trace_ring_wraps;
          Alcotest.test_case "digest sensitivity" `Quick trace_digest_sensitivity;
        ] );
      ( "export",
        [
          Alcotest.test_case "path and drops" `Quick export_path_and_drops;
          Alcotest.test_case "summary goldens" `Quick export_golden_summaries;
        ] );
      ( "series",
        [ Alcotest.test_case "bucketing and ring" `Quick series_bucketing ] );
      ( "audit",
        [
          Alcotest.test_case "clean stream" `Quick audit_clean_stream;
          Alcotest.test_case "broken variant flags all rules" `Quick
            audit_broken_variant;
          Alcotest.test_case "replay and epoch exemptions" `Quick
            audit_exemptions;
        ] );
    ]
