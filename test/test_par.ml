(* Tests for the domain pool (Strovl_par.Pool) and its determinism
   contract: pool-scheduled experiment runs must produce byte-identical
   tables and trace digests to a sequential run. *)

module Pool = Strovl_par.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------ pool basics ---------------------------- *)

let pool_ordering () =
  (* Results land in input order regardless of the worker count. *)
  let input = Array.init 37 Fun.id in
  List.iter
    (fun jobs ->
      let out = Pool.map ~jobs (fun i x -> (i, x * x)) input in
      check_int "length" 37 (Array.length out);
      Array.iteri
        (fun i o ->
          match o with
          | Pool.Done (j, sq) ->
            check_int "index passed through" i j;
            check_int "slot order" (i * i) sq
          | Pool.Failed _ -> Alcotest.fail "job failed")
        out)
    [ 1; 2; 4; 64 ]

let pool_empty_and_singleton () =
  check_int "empty" 0 (Array.length (Pool.map ~jobs:4 (fun _ x -> x) [||]));
  match Pool.map ~jobs:4 (fun _ x -> x + 1) [| 41 |] with
  | [| Pool.Done 42 |] -> ()
  | _ -> Alcotest.fail "singleton"

let pool_failure_isolation () =
  (* A raising job is captured in its own slot; every sibling still runs
     and completes, on every worker count. *)
  let input = Array.init 20 Fun.id in
  List.iter
    (fun jobs ->
      let out =
        Pool.map ~jobs
          (fun _ x ->
            if x = 7 then failwith "job seven exploded";
            x * 10)
          input
      in
      Array.iteri
        (fun i o ->
          match (i, o) with
          | 7, Pool.Failed { exn; _ } ->
            check_bool "message preserved" true
              (let needle = "job seven exploded" in
               let n = String.length exn and m = String.length needle in
               let rec go k =
                 k + m <= n && (String.sub exn k m = needle || go (k + 1))
               in
               go 0)
          | 7, Pool.Done _ -> Alcotest.fail "job 7 should have failed"
          | i, Pool.Done v -> check_int "sibling unaffected" (i * 10) v
          | _, Pool.Failed { exn; _ } -> Alcotest.fail ("sibling failed: " ^ exn))
        out)
    [ 1; 2; 4 ]

let pool_outcome_exn () =
  check_int "done unwraps" 3 (Pool.outcome_exn (Pool.Done 3));
  Alcotest.check_raises "failed raises" (Failure "boom") (fun () ->
      ignore (Pool.outcome_exn (Pool.Failed { exn = "boom"; backtrace = "" })))

(* --------------------- parallel determinism contract -------------------- *)

(* `run all -j 4` must produce bit-identical tables AND trace digests to
   `-j 1` with the same seed: per-run contexts make a run's output
   independent of which domain executed it and what ran there before. *)
let parallel_determinism () =
  let seed = 3L in
  let render outcomes =
    Array.to_list outcomes
    |> List.map (fun o ->
           let table, digest = Pool.outcome_exn o in
           Printf.sprintf "%s digest=%Lx" (Strovl_expt.Table.to_json table)
             (Option.value ~default:0L digest))
  in
  let seq =
    render (Strovl_expt.run_many ~jobs:1 ~quick:true ~traced:true ~seed Strovl_expt.all)
  in
  let par =
    render (Strovl_expt.run_many ~jobs:4 ~quick:true ~traced:true ~seed Strovl_expt.all)
  in
  check_int "same experiment count" (List.length seq) (List.length par);
  List.iteri
    (fun i (s, p) -> check_string (Printf.sprintf "experiment %d" i) s p)
    (List.combine seq par);
  (* The digests must be real fingerprints, not all-empty rings. *)
  check_bool "some experiment produced trace events" true
    (List.exists (fun s -> not (String.length s = 0)) seq
    && List.exists
         (fun s ->
           match String.rindex_opt s '=' with
           | Some i -> String.sub s (i + 1) (String.length s - i - 1) <> "0"
           | None -> false)
         seq)

(* Two runs scheduled one after the other on the same domain see fresh
   observability state: handles created by the first are gone, counts do
   not leak into the second. *)
let same_domain_isolation () =
  let counts =
    Pool.map ~jobs:1
      (fun _ () ->
        Strovl_obs.Ctx.isolate (fun () ->
            let c = Strovl_obs.Metrics.counter "par_test_leak" in
            Strovl_obs.Metrics.Counter.add c 5;
            Strovl_obs.Metrics.find_counter "par_test_leak"))
      [| (); (); () |]
  in
  Array.iter
    (fun o -> check_int "each run counts only itself" 5 (Pool.outcome_exn o))
    counts;
  check_int "nothing leaked to the caller" 0
    (Strovl_obs.Metrics.find_counter "par_test_leak")

let () =
  Alcotest.run "strovl_par"
    [
      ( "pool",
        [
          Alcotest.test_case "deterministic ordering" `Quick pool_ordering;
          Alcotest.test_case "empty and singleton" `Quick pool_empty_and_singleton;
          Alcotest.test_case "per-job failure isolation" `Quick
            pool_failure_isolation;
          Alcotest.test_case "outcome_exn" `Quick pool_outcome_exn;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "run all -j 4 == -j 1 (tables + digests)" `Slow
            parallel_determinism;
          Alcotest.test_case "same-domain run isolation" `Quick
            same_domain_isolation;
        ] );
    ]
