(* Smoke + invariant tests over the experiment suite: every experiment must
   run in quick mode and its table must carry the paper's qualitative
   shape. These are the repository's "does the reproduction reproduce"
   checks; the bench binary prints the full-size versions. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let seed = 1234L

let pct cell = Scanf.sscanf cell "%f%%" (fun f -> f)
let ms cell = Scanf.sscanf cell "%fms" (fun f -> f)

let find_row table ~prefix =
  match
    List.find_opt
      (fun row ->
        match row with
        | c0 :: rest ->
          List.exists (fun c -> c = prefix) (c0 :: rest)
          && List.mem prefix (List.filteri (fun i _ -> i < 2) (c0 :: rest))
        | [] -> false)
      table.Strovl_expt.Table.rows
  with
  | Some r -> r
  | None -> Alcotest.failf "row %s not found" prefix

let registry_complete () =
  check_int "14 experiments" 14 (List.length Strovl_expt.all);
  List.iter
    (fun (e : Strovl_expt.experiment) ->
      check_bool "find works" true (Strovl_expt.find e.Strovl_expt.id <> None))
    Strovl_expt.all;
  check_bool "unknown id" true (Strovl_expt.find "nope" = None)

let coverage_claims () =
  let t = Strovl_expt.Coverage.run ~quick:true ~seed () in
  let row p = find_row t ~prefix:p in
  check_bool "a few tens of nodes" true
    (int_of_string (List.nth (row "overlay nodes") 1) <= 40);
  check_bool "median link ~10ms" true (ms (List.nth (row "median link latency") 1) <= 12.);
  check_bool "most pairs within 150ms" true
    (pct (List.nth (row "pairs reachable <=150ms") 1) >= 95.)

let multicast_saves () =
  let t = Strovl_expt.Multicast.run ~quick:true ~seed () in
  match t.Strovl_expt.Table.rows with
  | [ row ] ->
    check_bool "savings > 1" true (float_of_string (List.nth row 4) > 1.0);
    check_bool "full delivery" true (pct (List.nth row 5) >= 99.9);
    (* measured tx/pkt matches analytic tree size *)
    check_bool "measured = analytic" true
      (Float.abs (float_of_string (List.nth row 1) -. float_of_string (List.nth row 2))
      < 0.01)
  | _ -> Alcotest.fail "expected one quick row"

let backpressure_isolates () =
  let t = Strovl_expt.Backpressure.run ~quick:true ~seed () in
  let blocked = find_row t ~prefix:"SEA->MIA (dst compromised)" in
  let healthy = find_row t ~prefix:"SEA->BOS (healthy)" in
  check_bool "blocked flow starved" true (pct (List.nth blocked 3) < 10.);
  check_bool "blocked flow refused at source" true (int_of_string (List.nth blocked 2) > 0);
  check_bool "healthy flow fine" true (pct (List.nth healthy 3) > 95.);
  check_int "healthy never refused" 0 (int_of_string (List.nth healthy 2))

let disjoint_bound_tight () =
  let t = Strovl_expt.Disjoint.run ~quick:true ~seed () in
  let get scheme c =
    let row =
      List.find
        (fun r -> List.nth r 0 = scheme && List.nth r 1 = string_of_int c)
        t.Strovl_expt.Table.rows
    in
    pct (List.nth row 2)
  in
  check_bool "single c0 ok" true (get "single-path" 0 > 99.);
  check_bool "single c1 dead" true (get "single-path" 1 < 1.);
  check_bool "2-disjoint c1 ok" true (get "2-disjoint" 1 > 99.);
  check_bool "2-disjoint c2 dead" true (get "2-disjoint" 2 < 1.);
  check_bool "3-disjoint c2 ok" true (get "3-disjoint" 2 > 99.);
  check_bool "flooding c2 ok" true (get "flooding" 2 > 99.)

let scada_crypto_wall () =
  let t = Strovl_expt.Scada.run ~quick:true ~seed () in
  let total auth n =
    let row =
      List.find
        (fun r -> List.nth r 0 = string_of_int n && List.nth r 1 = auth)
        t.Strovl_expt.Table.rows
    in
    ms (List.nth row 2)
  in
  check_bool "small system fits with rsa" true (total "rsa-style" 100 <= 200.);
  check_bool "mac scales further" true (total "mac-based" 1000 < total "rsa-style" 1000)

let lossy_link_detour () =
  let t = Strovl_expt.Lossy_link.run ~quick:true ~seed () in
  let latency_only = find_row t ~prefix:"latency-only metric" in
  let loss_aware = find_row t ~prefix:"loss-aware metric" in
  check_bool "latency-only suffers the loss" true (pct (List.nth latency_only 1) < 95.);
  Alcotest.(check string) "latency-only stays" "no" (List.nth latency_only 3);
  check_bool "loss-aware restores delivery" true (pct (List.nth loss_aware 1) > 98.);
  Alcotest.(check string) "loss-aware detours" "yes" (List.nth loss_aware 3)

let capacity_cluster_scaling () =
  let t = Strovl_expt.Capacity.run ~quick:true ~seed () in
  let get pps cluster =
    let row =
      List.find
        (fun r -> List.nth r 0 = string_of_int pps && List.nth r 1 = string_of_int cluster)
        t.Strovl_expt.Table.rows
    in
    pct (List.nth row 2)
  in
  check_bool "under capacity ok" true (get 4_000 1 > 99.);
  check_bool "overload sheds ~ rate/offered" true
    (let d = get 12_000 1 in
     d > 30. && d < 55.);
  check_bool "cluster absorbs" true (get 12_000 4 > 99.)

let onnet_beats_offnet () =
  let t = Strovl_expt.Onnet.run ~quick:true ~seed () in
  let on = find_row t ~prefix:"all links on-net" in
  let off = find_row t ~prefix:"all links off-net (ISP0|ISP1)" in
  check_bool "on-net full delivery" true (pct (List.nth on 1) > 99.);
  check_bool "off-net loses at peering" true (pct (List.nth off 1) < pct (List.nth on 1));
  check_bool "off-net slower" true (ms (List.nth off 2) > ms (List.nth on 2))

let reroute_vs_bgp () =
  let t = Strovl_expt.Reroute.run ~quick:true ~seed () in
  match t.Strovl_expt.Table.rows with
  | [ [ _; ov_mh ]; [ _; ov_rr ]; [ _; bgp ] ] ->
    check_bool "overlay multihoming sub-second" true (ms ov_mh < 1000.);
    check_bool "overlay reroute sub-second" true (ms ov_rr < 1000.);
    check_bool "bgp orders of magnitude worse" true (ms bgp > 10. *. ms ov_rr)
  | _ -> Alcotest.fail "expected 3 rows"

let () =
  Alcotest.run "strovl_expt"
    [
      ( "registry",
        [ Alcotest.test_case "complete" `Quick registry_complete ] );
      ( "claims",
        [
          Alcotest.test_case "coverage" `Quick coverage_claims;
          Alcotest.test_case "multicast" `Slow multicast_saves;
          Alcotest.test_case "backpressure" `Slow backpressure_isolates;
          Alcotest.test_case "disjoint bound" `Slow disjoint_bound_tight;
          Alcotest.test_case "scada wall" `Slow scada_crypto_wall;
          Alcotest.test_case "lossy link detour" `Slow lossy_link_detour;
          Alcotest.test_case "capacity clusters" `Slow capacity_cluster_scaling;
          Alcotest.test_case "on-net beats off-net" `Slow onnet_beats_offnet;
          Alcotest.test_case "reroute vs bgp" `Slow reroute_vs_bgp;
        ] );
    ]
