(* Quickstart: bring up a structured overlay on the 12-site US backbone,
   connect two clients, and exchange packets with two different per-flow
   services (best-effort and hop-by-hop reliable) over a lossy Internet.

   Run with: dune exec examples/quickstart.exe *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module P = Strovl.Packet

let () =
  (* 1. A deterministic simulated Internet + the overlay on top of it. *)
  let engine = Engine.create ~seed:2026L () in
  let spec = Gen.us_backbone () in
  let net = Strovl.Net.create engine spec in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  Printf.printf "overlay up: %d nodes, %d links (settled at %s)\n"
    (Strovl.Net.nnodes net)
    (Strovl_topo.Graph.link_count (Strovl.Net.graph net))
    (Time.to_string (Engine.now engine));

  (* Give every fiber segment 1%% random loss. *)
  let rng = Rng.split_named (Engine.rng engine) "loss" in
  Strovl_net.Underlay.set_all_segment_loss (Strovl.Net.underlay net)
    (fun si _ -> Loss.bernoulli (Rng.split_named rng (string_of_int si)) ~p:0.01);

  (* 2. Clients connect to their nearest overlay node (SEA and MIA) and are
     addressed by (node, virtual port), like IP address + port. *)
  let sea = Strovl.Client.attach (Strovl.Net.node net 0) ~port:5000 in
  let mia = Strovl.Client.attach (Strovl.Net.node net 8) ~port:5001 in

  let stats = Strovl_apps.Collect.create engine () in
  Strovl_apps.Collect.attach stats mia ();

  (* 3. Open one flow per service class and send. *)
  let run_flow name service =
    Strovl_apps.Collect.reset_window stats;
    let sender =
      Strovl.Client.sender sea ~service ~dest:(P.To_node 8) ~dport:5001 ()
    in
    let source =
      Strovl_apps.Source.start ~engine ~sender ~interval:(Time.ms 10)
        ~bytes:1200 ~count:500 ()
    in
    Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 8)) engine;
    Printf.printf
      "%-12s sent=%d delivered=%.1f%%  mean=%.2fms  p99=%.2fms  jitter=%.2fms\n"
      name
      (Strovl_apps.Source.sent source)
      (100.
      *. Strovl_apps.Collect.delivery_rate stats
           ~sent:(Strovl_apps.Source.sent source))
      (Strovl_apps.Collect.mean_ms stats)
      (Strovl_apps.Collect.p99_ms stats)
      (Strovl_apps.Collect.jitter_ms stats)
  in
  run_flow "best-effort" P.Best_effort;
  run_flow "reliable" P.Reliable;
  print_endline
    "reliable recovers every loss within ~one short-link RTT (hop-by-hop ARQ)"
