(* Resilient monitoring and control of a global cloud (paper §III-B):
   many monitored endpoints publish telemetry into a multicast group that
   displays, loggers and an analysis engine subscribe to; operators send
   control commands over the fully reliable service. Monitoring favors
   timeliness (Best Effort + overlay rerouting); control favors complete
   reliability (hop-by-hop Reliable Data Link).

   Run with: dune exec examples/cloud_monitoring.exe *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module P = Strovl.Packet

let telemetry_group = 200
let command_port = 7100

let () =
  let engine = Engine.create ~seed:11L () in
  let net = Strovl.Net.create engine (Gen.global_backbone ()) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let rng = Rng.split_named (Engine.rng engine) "monitoring" in

  (* Consumers: NOC display in NYC, logger in FRA, ML analytics in SIN.
     Each makes ONE connection to its local overlay node — the overlay
     provides the mesh (paper: no n x m connection problem). *)
  let consumers =
    List.map
      (fun (name, node) ->
        let c = Strovl.Client.attach (Strovl.Net.node net node) ~port:7000 in
        Strovl.Client.join c ~group:telemetry_group;
        let n = ref 0 in
        Strovl.Client.set_receiver c (fun _ -> incr n);
        (name, n))
      [ ("noc-display@NYC", 9); ("logger@FRA", 14); ("analytics@SIN", 21) ]
  in
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 1)) engine;

  (* Monitored endpoints: 12 cloud sites, each publishing 10 reports/s.
     Senders do NOT join the group (only receivers join). *)
  let sources =
    List.map
      (fun node ->
        let c = Strovl.Client.attach (Strovl.Net.node net node) ~port:7001 in
        let sender =
          Strovl.Client.sender c ~dest:(P.To_group telemetry_group) ~dport:7000 ()
        in
        Strovl_apps.Source.monitoring ~engine ~sender ~interval:(Time.ms 100)
          ~rng:(Rng.split_named rng (string_of_int node))
          ())
      [ 0; 2; 4; 6; 8; 11; 13; 16; 19; 21; 23; 25 ]
  in

  (* An operator at NYC reconfigures the SIN site: commands must arrive,
     in order, exactly once -> Reliable service, unicast. *)
  let operator = Strovl.Client.attach (Strovl.Net.node net 9) ~port:7002 in
  let sin_agent = Strovl.Client.attach (Strovl.Net.node net 21) ~port:command_port in
  let commands_applied = ref [] in
  Strovl.Client.set_receiver sin_agent (fun pkt ->
      commands_applied := pkt.P.seq :: !commands_applied);
  let cmd =
    Strovl.Client.sender operator ~service:P.Reliable ~dest:(P.To_node 21)
      ~dport:command_port ()
  in
  for _ = 1 to 25 do
    ignore (Strovl.Client.send cmd ~bytes:300 ());
    Engine.run ~until:(Time.add (Engine.now engine) (Time.ms 200)) engine
  done;

  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 10)) engine;
  List.iter Strovl_apps.Source.stop sources;
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 2)) engine;

  let published =
    List.fold_left (fun acc s -> acc + Strovl_apps.Source.sent s) 0 sources
  in
  Printf.printf "%d telemetry reports published by 12 sites\n" published;
  List.iter
    (fun (name, n) ->
      Printf.printf "%-18s received %d (%.1f%%)\n" name !n
        (100. *. float_of_int !n /. float_of_int published))
    consumers;
  Printf.printf "control: 25 commands sent, applied in order = %b\n"
    (List.rev !commands_applied = List.init 25 (fun i -> i))
