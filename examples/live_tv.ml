(* Live broadcast-quality TV (paper §IV-A): a cross-country interview link
   must deliver every frame within ~200ms one-way so the conversation feels
   natural. Internet loss is bursty, so the NM-Strikes real-time protocol
   spaces its N retransmission requests (and the M responses) across the
   recovery budget to escape the correlation window.

   Run with: dune exec examples/live_tv.exe *)

open Strovl_sim
module Gen = Strovl_topo.Gen

let deadline = Time.ms 200

let run_protocol name service =
  let engine = Engine.create ~seed:17L () in
  (* A 40ms studio-to-studio path with bursty loss (1.5% long-run, ~80ms
     bursts dropping half the packets). *)
  let underlay = Strovl_net.Underlay.create engine (Gen.chain ~n:2 ~hop_delay:(Time.ms 40)) in
  let rng = Rng.split_named (Engine.rng engine) "bursts" in
  Strovl_net.Underlay.set_all_segment_loss underlay (fun si _ ->
      Loss.gilbert_elliott
        (Rng.split_named rng (string_of_int si))
        ~p_good_loss:0. ~p_bad_loss:0.5 ~mean_good:(Time.of_ms_float 2586.7)
        ~mean_bad:(Time.ms 80));
  let link = Strovl_net.Link.create underlay ~a:0 ~b:1 ~isp:0 in
  let collect = Strovl_apps.Collect.create ~deadline engine () in
  let e2e =
    Strovl.E2e.create engine link ~service
      ~deliver:(Strovl_apps.Collect.receiver collect)
  in
  (* 30 seconds of 8 Mbit/s video in 1316-byte TS bundles. *)
  let count = 25_000 in
  let sent = ref 0 in
  let rec pump () =
    if !sent < count then begin
      Strovl.E2e.send e2e ();
      incr sent;
      ignore (Engine.schedule engine ~delay:(Time.us 1316) pump)
    end
  in
  pump ();
  Engine.run engine;
  Printf.printf "%-18s on-time(200ms)=%.3f%%  late/lost=%d  wire overhead=%.3f\n"
    name
    (100. *. Strovl_apps.Collect.on_time_fraction collect ~sent:!sent)
    (!sent - Strovl_apps.Collect.on_time collect)
    (1.
    +. float_of_int (Strovl.E2e.retransmissions e2e) /. float_of_int !sent)

let rt n m =
  Strovl.E2e.Realtime
    {
      Strovl.Realtime_link.n_requests = n;
      m_retrans = m;
      budget = Time.ms 160;
      history = 65536;
      request_spacing = None;
      retrans_spacing = None;
    }

let () =
  print_endline "live interview, 40ms path, 200ms one-way budget, bursty loss:";
  run_protocol "raw (best effort)" Strovl.E2e.Best_effort;
  run_protocol "FEC (8,2)"
    (Strovl.E2e.Fec { Strovl.Fec_link.k = 8; r = 2; flush = Time.ms 20 });
  run_protocol "single strike" (rt 1 1);
  run_protocol "NM-strikes (3,3)" (rt 3 3);
  print_endline
    "NM-Strikes trades ~1+Mp bandwidth for near-complete timeliness \
     (paper SIV-A)"
