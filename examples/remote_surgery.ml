(* Real-time remote manipulation (paper §V-A): robotic surgery across the
   country. The 130ms round-trip budget leaves ~20-25ms of slack over
   propagation — too tight for multi-round recovery — so the haptic flow
   combines single-strike recovery with a *dissemination graph* that adds
   targeted redundancy around the troubled area of the network.

   Run with: dune exec examples/remote_surgery.exe *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module P = Strovl.Packet
module Dissem = Strovl_topo.Dissem

let one_way_deadline = Time.ms 65 (* 130ms round trip / 2 *)

let () =
  let surgeon = 5 (* DFW *) and patient = 11 (* BOS *) in
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.node =
        {
          Strovl.Node.default_config with
          Strovl.Node.realtime =
            {
              Strovl.Realtime_link.n_requests = 1;
              m_retrans = 1;
              budget = Time.ms 20;
              history = 8192;
              request_spacing = None;
              retrans_spacing = None;
            };
        };
    }
  in
  let engine = Engine.create ~seed:31L () in
  let net = Strovl.Net.create ~config engine (Gen.us_backbone ()) in
  Strovl.Net.start net;
  Strovl.Net.settle net;

  (* A thunderstorm over Texas: every fiber touching DFW suffers bursty
     loss (total outage bursts of ~40ms, ~20% of the time). *)
  let rng = Rng.split_named (Engine.rng engine) "storm" in
  Strovl_net.Underlay.set_all_segment_loss (Strovl.Net.underlay net)
    (fun si s ->
      if s.Gen.seg_a = surgeon || s.Gen.seg_b = surgeon then
        Loss.gilbert_elliott
          (Rng.split_named rng (string_of_int si))
          ~p_good_loss:0. ~p_bad_loss:1. ~mean_good:(Time.ms 160)
          ~mean_bad:(Time.ms 40)
      else Loss.perfect);

  (* Each attempt is a fresh flow (new virtual ports): a flow's sequence
     space is never reused. *)
  let next_port = ref 9000 in
  let attempt label route =
    let sport = !next_port and dport = !next_port + 1 in
    next_port := !next_port + 2;
    let console = Strovl.Client.attach (Strovl.Net.node net surgeon) ~port:sport in
    let robot = Strovl.Client.attach (Strovl.Net.node net patient) ~port:dport in
    let stats = Strovl_apps.Collect.create ~deadline:one_way_deadline engine () in
    Strovl_apps.Collect.attach stats robot ();
    let sender =
      Strovl.Client.sender console
        ~service:
          (P.Realtime { deadline = one_way_deadline; n_requests = 1; m_retrans = 1 })
        ~route ~dest:(P.To_node patient) ~dport ()
    in
    let src =
      Strovl_apps.Source.haptic ~engine ~sender ~rate_hz:500 ~count:5000 ()
    in
    Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 12)) engine;
    let sent = Strovl_apps.Source.sent src in
    Printf.printf "  %-26s on-time(65ms)=%.2f%%  p99=%.1fms\n" label
      (100. *. Strovl_apps.Collect.on_time_fraction stats ~sent)
      (Strovl_apps.Collect.p99_ms stats);
    Strovl.Client.detach console;
    Strovl.Client.detach robot
  in
  Printf.printf "haptic control DFW->BOS through the storm (500Hz, 10s each):\n";
  attempt "single path" Strovl.Client.Table;
  attempt "2 disjoint paths" (Strovl.Client.Scheme Dissem.Two_disjoint);
  attempt "dissemination graph" (Strovl.Client.Scheme Dissem.Source_problem);
  attempt "constrained flooding" (Strovl.Client.Scheme Dissem.Flooding);
  print_endline
    "the source-problem dissemination graph matches flooding's timeliness \
     at a fraction of its bandwidth (paper SV-A)"
