(* Broadcast-quality video transport (paper §III-A): an 8 Mbit/s MPEG-TS
   style stream from a SEA uplink to receivers across the country, using
   overlay multicast plus the hop-by-hop Reliable Data Link — and a fiber
   cut mid-stream that the overlay routes around in under a second while
   the stream keeps playing.

   Run with: dune exec examples/video_broadcast.exe *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module P = Strovl.Packet

let () =
  let engine = Engine.create ~seed:7L () in
  let net = Strovl.Net.create engine (Gen.us_backbone ()) in
  Strovl.Net.start net;
  Strovl.Net.settle net;

  (* Light random loss everywhere: broadcast video cannot tolerate it raw. *)
  let rng = Rng.split_named (Engine.rng engine) "loss" in
  Strovl_net.Underlay.set_all_segment_loss (Strovl.Net.underlay net)
    (fun si _ -> Loss.bernoulli (Rng.split_named rng (string_of_int si)) ~p:0.005);

  (* Affiliate stations join the distribution group; only receivers join. *)
  let group = 100 in
  let stations =
    List.map
      (fun (name, node) ->
        let c = Strovl.Client.attach (Strovl.Net.node net node) ~port:6000 in
        Strovl.Client.join c ~group;
        let stats = Strovl_apps.Collect.create engine () in
        Strovl_apps.Collect.attach stats c ();
        (name, stats))
      [ ("NYC", 10); ("MIA", 8); ("CHI", 6); ("LAX", 2) ]
  in
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 1)) engine;

  (* The stadium uplink at SEA: send *to the group*, reliable service. *)
  let uplink = Strovl.Client.attach (Strovl.Net.node net 0) ~port:6001 in
  let sender =
    Strovl.Client.sender uplink ~service:P.Reliable ~dest:(P.To_group group)
      ~dport:6000 ()
  in
  let source = Strovl_apps.Source.video ~engine ~sender ~mbps:8.0 () in

  (* 5 seconds in, a backhoe finds the SEA-DEN fiber on every provider. *)
  ignore
    (Engine.schedule engine ~delay:(Time.sec 5) (fun () ->
         let u = Strovl.Net.underlay net in
         List.iter
           (fun si -> Strovl_net.Underlay.fail_segment u si)
           (Strovl_net.Underlay.segments_between u 0 4);
         print_endline "t=5s: SEA-DEN fiber cut on all providers"));

  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 12)) engine;
  Strovl_apps.Source.stop source;
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 3)) engine;

  let sent = Strovl_apps.Source.sent source in
  Printf.printf "uplink sent %d packets (8 Mbit/s for 12s)\n" sent;
  List.iter
    (fun (name, stats) ->
      Printf.printf
        "%s: delivered=%.2f%% mean=%.1fms p99=%.1fms max-freeze=%.0fms\n" name
        (100. *. Strovl_apps.Collect.delivery_rate stats ~sent)
        (Strovl_apps.Collect.mean_ms stats)
        (Strovl_apps.Collect.p99_ms stats)
        (Strovl_apps.Collect.max_gap_ms stats))
    stations;
  print_endline
    "every station kept 100% delivery; the fiber cut shows only as a \
     sub-second freeze (vs ~40s of BGP convergence)"
