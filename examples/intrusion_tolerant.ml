(* Intrusion-tolerant monitoring and control (paper §IV-B): the overlay
   itself is under attack. A compromised overlay router blackholes data
   while keeping the topology looking healthy, and a compromised source
   floods the network to starve others. Authentication, source-routed
   redundant dissemination, and fair round-robin scheduling keep the
   correct traffic flowing.

   Run with: dune exec examples/intrusion_tolerant.exe *)

open Strovl_sim
module Gen = Strovl_topo.Gen
module P = Strovl.Packet
module Dissem = Strovl_topo.Dissem

let () =
  let engine = Engine.create ~seed:23L () in
  let config =
    {
      Strovl.Net.default_config with
      Strovl.Net.authenticate = true;
      link =
        { Strovl_net.Link.default_config with Strovl_net.Link.bandwidth_bps = 50_000_000 };
    }
  in
  (* A deliberately well-connected topology (vertex connectivity 4). *)
  let net = Strovl.Net.create ~config engine (Gen.circulant ~n:12 ~jumps:[ 1; 2 ] ~hop_delay:(Time.ms 10)) in
  Strovl.Net.start net;
  Strovl.Net.settle net;
  let rng = Rng.split_named (Engine.rng engine) "attack" in

  (* SCADA-style: the control center at node 6 watches a substation at 0.
     Each measurement opens a fresh flow (new virtual ports): a flow's
     sequence space is never reused. *)
  let next_port = ref 8000 in
  let measure route label =
    let sport = !next_port and dport = !next_port + 1 in
    next_port := !next_port + 2;
    let substation = Strovl.Client.attach (Strovl.Net.node net 0) ~port:sport in
    let control = Strovl.Client.attach (Strovl.Net.node net 6) ~port:dport in
    let stats = Strovl_apps.Collect.create engine () in
    Strovl_apps.Collect.attach stats control ();
    let sender =
      Strovl.Client.sender substation ~service:(P.It_priority 5) ~route
        ~dest:(P.To_node 6) ~dport ()
    in
    let src =
      Strovl_apps.Source.start ~engine ~sender ~interval:(Time.ms 20) ~bytes:400
        ~count:250 ()
    in
    Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 8)) engine;
    Printf.printf "  %-28s delivered=%.1f%%\n" label
      (100.
      *. Strovl_apps.Collect.delivery_rate stats ~sent:(Strovl_apps.Source.sent src));
    Strovl.Client.detach substation;
    Strovl.Client.detach control
  in

  print_endline "baseline (no compromise):";
  measure Strovl.Client.Table "link-state single path";

  (* Two overlay routers are compromised: they blackhole data but answer
     hellos, so the connectivity graph never notices. *)
  let victims = [ 2; 10 ] in
  List.iter
    (fun node ->
      Strovl_attack.Behavior.apply net ~rng ~node Strovl_attack.Behavior.Blackhole)
    victims;
  Printf.printf "routers %s compromised (blackholing, topology looks fine):\n"
    (String.concat "," (List.map string_of_int victims));
  measure Strovl.Client.Table "link-state single path";
  measure (Strovl.Client.Scheme (Dissem.K_disjoint 3)) "3 node-disjoint paths";
  measure (Strovl.Client.Scheme Dissem.Flooding) "constrained flooding";

  (* Resource-consumption attack: a compromised source floods the control
     center; fair per-source round robin keeps the substation's share. *)
  print_endline "plus a flooding compromised source at node 4:";
  ignore
    (Strovl_attack.Scenario.flooder ~net ~node:4 ~port:8002 ~dest:(P.To_node 6)
       ~dport:8999 ~service:(P.It_priority 9) ~rate_pps:20_000 ~bytes:1200);
  measure (Strovl.Client.Scheme (Dissem.K_disjoint 3)) "3 disjoint + fair scheduling";

  (* And a forgery attempt: node 4 injects an LSU in node 0's name claiming
     its links are dead. Signed link-state updates reject it. *)
  let before =
    Strovl.Conn_graph.usable (Strovl.Node.conn (Strovl.Net.node net 6)) 0
  in
  ignore (Strovl_attack.Scenario.forge_lsu ~net ~attacker:4 ~victim:0 ());
  Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 1)) engine;
  let after =
    Strovl.Conn_graph.usable (Strovl.Node.conn (Strovl.Net.node net 6)) 0
  in
  Printf.printf "forged 'node 0 is down' LSU rejected by signatures: %b\n"
    (before && after)
